"""Benchmark: regenerate Figure 3 (idle time-slot availability)."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig3_idle_fractions(benchmark):
    report = run_experiment_benchmark(
        benchmark, "fig3", scale=0.02, duration_s=600.0
    )
    table = report.get_table("Fig 3: duty fractions")
    assert table is not None
    # Paper shape: idleness dominates at every intensity and decreases
    # with IOPS.
    idle = table.column("primary_idle")
    assert all(f > 0.5 for f in idle)
    assert idle == sorted(idle, reverse=True)
