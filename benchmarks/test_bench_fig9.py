"""Benchmark: regenerate Figure 9 (MTTDL vs MTTR)."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig9_mttdl_sweep(benchmark):
    report = run_experiment_benchmark(benchmark, "fig9")
    table = report.get_table("Fig 9: MTTDL (years, closed forms)")
    assert table is not None and len(table.rows) == 7
    # Paper ordering at every MTTR point.
    for row in table.rows:
        _, rolo_r, raid10, rolo_p, graid = row
        assert rolo_r > raid10 > rolo_p > graid
