"""Ablation benchmarks for RoLo's design choices (DESIGN.md §6).

Each ablation isolates one mechanism the paper credits for RoLo's wins:

* decentralized vs centralized destaging at equal logging capacity;
* the idle-grace threshold of the destage pump;
* the rotation threshold;
* the number of simultaneously on-duty loggers;
* RoLo-E's popular-block read cache.
"""

import dataclasses

from repro.core import ArrayConfig, build_controller, run_trace
from repro.sim import Simulator
from repro.traces import build_workload_trace

KB = 1024

SCALE = 0.02
PAIRS = 8


def run_once(scheme, trace, config):
    sim = Simulator()
    controller = build_controller(scheme, sim, config)
    metrics = run_trace(controller, trace)
    controller.assert_consistent()
    return metrics


def base_config(**overrides):
    config = ArrayConfig(n_pairs=PAIRS).scaled(SCALE)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return config


def test_ablation_decentralized_vs_centralized_destage(benchmark):
    """RoLo-P vs GRAID given the SAME total log capacity.

    GRAID's dedicated disk holds the whole budget; RoLo spreads it across
    mirrors.  The rotated design should spin far fewer disks.
    """
    trace = build_workload_trace("src2_2", scale=SCALE)

    def target():
        cfg = base_config()
        total_log = cfg.free_space_bytes  # one on-duty region at a time
        graid_cfg = dataclasses.replace(
            cfg, graid_log_capacity_bytes=total_log
        )
        return (
            run_once("rolo-p", trace, cfg),
            run_once("graid", trace, graid_cfg),
        )

    rolo, graid = benchmark.pedantic(target, rounds=1, iterations=1)
    print(
        f"\nequal-capacity logs: rolo-p spins={rolo.spin_cycle_count} "
        f"energy={rolo.total_energy_j / 1e3:.1f}kJ vs graid "
        f"spins={graid.spin_cycle_count} "
        f"energy={graid.total_energy_j / 1e3:.1f}kJ"
    )
    assert rolo.spin_cycle_count < graid.spin_cycle_count


def test_ablation_idle_grace(benchmark):
    """Destage pump grace: 0 (eager) vs 50ms vs 1s (timid)."""
    trace = build_workload_trace("src2_2", scale=SCALE)

    def target():
        return {
            grace: run_once(
                "rolo-p", trace, base_config(idle_grace_s=grace)
            )
            for grace in (0.0, 0.05, 1.0)
        }

    results = benchmark.pedantic(target, rounds=1, iterations=1)
    print()
    for grace, metrics in results.items():
        print(
            f"grace={grace:5.2f}s rt={metrics.mean_response_time_ms:7.3f}ms "
            f"energy={metrics.total_energy_j / 1e3:8.1f}kJ"
        )
    # All variants complete the same work.
    counts = {m.requests for m in results.values()}
    assert len(counts) == 1


def test_ablation_rotate_threshold(benchmark):
    """Earlier rotation => more rotations, same consistency."""
    trace = build_workload_trace("src2_2", scale=SCALE)

    def target():
        out = {}
        for threshold in (0.5, 0.8, 0.95):
            sim = Simulator()
            controller = build_controller(
                "rolo-p",
                sim,
                base_config(rotate_threshold=threshold),
            )
            run_trace(controller, trace)
            controller.assert_consistent()
            out[threshold] = controller.metrics.rotations
        return out

    rotations = benchmark.pedantic(target, rounds=1, iterations=1)
    print(f"\nrotations by threshold: {rotations}")
    assert rotations[0.5] >= rotations[0.95]


def test_ablation_multiple_on_duty_loggers(benchmark):
    """n_on_duty=2 spreads the append stream over two mirrors."""
    trace = build_workload_trace("src2_2", scale=SCALE)

    def target():
        return {
            n: run_once("rolo-p", trace, base_config(n_on_duty=n))
            for n in (1, 2)
        }

    results = benchmark.pedantic(target, rounds=1, iterations=1)
    print()
    for n, metrics in results.items():
        print(
            f"on_duty={n} rt={metrics.mean_response_time_ms:7.3f}ms "
            f"power={metrics.mean_power_w:6.1f}W"
        )
    # A second spinning logger must cost energy.
    assert (
        results[2].total_energy_j > results[1].total_energy_j * 0.99
    )


def test_ablation_rolo_e_read_cache(benchmark):
    """RoLo-E with vs without the popular-block cache on a ready trace."""
    trace = build_workload_trace("proj_0", scale=0.005)

    def target():
        return {
            enabled: run_once(
                "rolo-e", trace, base_config(read_cache=enabled)
            )
            for enabled in (True, False)
        }

    results = benchmark.pedantic(target, rounds=1, iterations=1)
    print()
    for enabled, metrics in results.items():
        print(
            f"cache={enabled!s:5} hit_rate={metrics.read_hit_rate:.2%} "
            f"rt={metrics.mean_response_time_ms:8.2f}ms"
        )
    assert results[True].read_hit_rate >= results[False].read_hit_rate
