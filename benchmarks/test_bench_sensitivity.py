"""Benchmark: regenerate the §V-C sensitivity studies."""

from benchmarks.conftest import run_experiment_benchmark


def test_stripe_unit_sensitivity(benchmark):
    report = run_experiment_benchmark(
        benchmark,
        "sens-stripe",
        scale=0.01,
        n_pairs=6,
        stripe_units_kb=(16, 64),
        workloads=("src2_2",),
    )
    table = report.tables[0]
    # Paper finding: RoLo-P/R energy saving insensitive to stripe unit.
    by_scheme = {}
    for row in table.rows:
        values = dict(zip(table.headers, row))
        by_scheme.setdefault("rolo-p", []).append(values["rolo-p"])
    savings = by_scheme["rolo-p"]
    assert max(savings) - min(savings) < 0.1


def test_disk_size_sensitivity(benchmark):
    report = run_experiment_benchmark(
        benchmark,
        "sens-disksize",
        scale=0.01,
        n_pairs=6,
        rolo_free_gb=(8, 4),
        workloads=("src2_2",),
    )
    table = report.tables[0]
    # Paper finding: saving over GRAID steady at a fixed free ratio.
    savings = table.column("rolo-p")
    assert max(savings) - min(savings) < 0.15
