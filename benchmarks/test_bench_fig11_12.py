"""Benchmark: regenerate Figures 11 and 12 (array-size sensitivity)."""

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import get_experiment


def test_fig11_energy_vs_disks(benchmark):
    report = run_experiment_benchmark(
        benchmark,
        "fig11",
        scale=0.01,
        pair_counts=(4, 6, 10),
        workloads=("src2_2",),
    )
    table = report.tables[0]
    # Paper shape: savings grow with the number of disks for RoLo-P/R.
    # (RoLo-E's trend needs larger scales — its per-cycle spin-up cost is
    # physics that does not shrink with the bench's time scale; the fig10
    # benchmark covers it.)
    rolo_p = table.column("rolo-p")
    assert rolo_p[-1] > rolo_p[0]
    for row in table.rows:
        values = dict(zip(table.headers, row))
        assert values["rolo-p"] > 0
        assert values["rolo-r"] > 0


def test_fig12_response_time_vs_disks(benchmark):
    def target():
        # Shares the memoized runs with fig11 when run in one session.
        return get_experiment("fig12").run(
            scale=0.01, pair_counts=(4, 6, 10), workloads=("src2_2",)
        )

    report = benchmark.pedantic(target, rounds=1, iterations=1)
    print()
    print(report.to_text())
    table = report.tables[0]
    # Paper shape: response time shrinks as the array widens (more
    # parallelism) for the in-place schemes.
    raid10 = table.column("raid10")
    assert raid10[-1] <= raid10[0] * 1.05
