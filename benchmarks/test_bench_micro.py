"""Microbenchmarks of the simulator's hot paths.

Thin pytest-benchmark wrappers around the kernels in :mod:`repro.bench` —
the same module `rolo bench` uses — so there is a single source of perf
truth: changing a kernel changes both the CI smoke numbers and the pinned
suite, never one without the other.
"""

from repro import bench


def test_engine_event_throughput(benchmark):
    """Schedule + dispatch cost of the event heap."""
    assert benchmark(bench.engine_event_kernel, 10_000) == 10_000


def test_engine_timer_event_throughput(benchmark):
    """Events/sec through ``Simulator.run`` with ~1e5 timer-style events.

    Mirrors the idle-detection pattern the controllers lean on: every
    event re-arms a :class:`~repro.sim.engine.Timer`, so cancelled heap
    entries accumulate and the lazy-deletion skip path plus automatic
    compaction are exercised alongside plain dispatch.
    """
    N = 100_000
    total, peak_heap = benchmark(bench.timer_rearm_kernel, N)
    assert total == N + 1  # only the last armed timer fires
    # Compaction must keep the heap bounded despite N cancelled entries.
    assert peak_heap < 5_000


def test_disk_random_io_throughput(benchmark):
    """Full service path of random 64K writes on one disk."""
    assert benchmark(bench.disk_random_io_kernel, 2_000) == 2_000


def test_layout_mapping_throughput(benchmark):
    assert benchmark(bench.layout_mapping_kernel, 5_000) > 0


def test_logspace_append_reclaim_throughput(benchmark):
    assert benchmark(bench.logspace_kernel) == 0
