"""Microbenchmarks of the simulator's hot paths.

These are conventional pytest-benchmark kernels (many iterations) covering
the engine, the disk server, the layout math and the log-space manager —
the four components every simulated I/O touches.
"""

import random

from repro.core.logspace import LogRegion
from repro.disk.disk import Disk, DiskOp, OpKind
from repro.disk.models import ULTRASTAR_36Z15
from repro.raid.layout import Raid10Layout
from repro.sim import Simulator
from repro.sim.engine import Timer

KB = 1024
MB = 1024 * KB


def test_engine_event_throughput(benchmark):
    """Schedule + dispatch cost of the event heap."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 10_000


def test_engine_timer_event_throughput(benchmark):
    """Events/sec through ``Simulator.run`` with ~1e5 timer-style events.

    Mirrors the idle-detection pattern the controllers lean on: every
    event re-arms a :class:`Timer`, so the heap carries a cancelled entry
    per live one and the run loop's lazy-deletion skip path is exercised
    alongside plain dispatch.
    """

    N = 100_000

    def run():
        sim = Simulator()
        count = 0
        fired = 0

        def on_expire():
            nonlocal fired
            fired += 1

        timer = Timer(sim, 1.0, on_expire)

        def tick():
            nonlocal count
            count += 1
            timer.arm()  # cancels the previous expiry, schedules a new one
            if count < N:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count + fired

    assert benchmark(run) == N + 1  # only the last armed timer fires


def test_disk_random_io_throughput(benchmark):
    """Full service path of random 64K writes on one disk."""
    rng = random.Random(1)
    sectors = ULTRASTAR_36Z15.capacity_sectors
    offsets = [rng.randrange(sectors - 200) for _ in range(2_000)]

    def run():
        sim = Simulator()
        disk = Disk(sim, ULTRASTAR_36Z15, "D")
        for sector in offsets:
            disk.submit(DiskOp(OpKind.WRITE, sector, 64 * KB))
        sim.run()
        return disk.ops_completed

    assert benchmark(run) == 2_000


def test_layout_mapping_throughput(benchmark):
    layout = Raid10Layout(20, 64 * KB, 512 * MB, spread=True)
    rng = random.Random(2)
    extents = [
        (rng.randrange(layout.logical_capacity - MB), rng.randrange(1, MB))
        for _ in range(5_000)
    ]

    def run():
        total = 0
        for offset, nbytes in extents:
            total += len(layout.map_extent(offset, nbytes))
        return total

    assert benchmark(run) > 0


def test_logspace_append_reclaim_throughput(benchmark):
    def run():
        region = LogRegion("bench", 0, 64 * MB)
        for epoch in range(8):
            for i in range(200):
                region.append(32 * KB, {i % 4: 32 * KB}, epoch)
            for pair in range(4):
                region.reclaim(pair, epoch)
        region.reclaim_all()
        return region.used

    assert benchmark(run) == 0
