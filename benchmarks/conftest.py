"""Shared benchmark helpers.

Every benchmark regenerates one paper artifact at a reduced scale and
prints the resulting rows, so a benchmark log doubles as a reproduction
log.  ``benchmark.pedantic`` with a single round is used because each
"iteration" is a full trace-driven simulation, not a microsecond kernel
(the micro-benchmarks in test_bench_micro.py cover the hot paths).
"""

from __future__ import annotations

from repro.experiments import clear_cache, get_experiment


def run_experiment_benchmark(benchmark, experiment_id, **kwargs):
    """Benchmark one experiment end-to-end and print its report."""

    def target():
        clear_cache()
        return get_experiment(experiment_id).run(**kwargs)

    report = benchmark.pedantic(target, rounds=1, iterations=1)
    print()
    print(report.to_text())
    return report
