"""Benchmark: regenerate Figure 14 (non-write-intensive traces)."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig14_non_write_intensive(benchmark):
    report = run_experiment_benchmark(
        benchmark,
        "fig14",
        scale=0.01,
        n_pairs=6,
        workloads=("mds_0", "hm_1", "web_1"),
    )
    energy = report.get_table("Fig 14(a): energy (normalized to RAID10)")
    response = report.get_table(
        "Fig 14(b): mean response time (normalized to RAID10)"
    )
    for row in energy.rows:
        values = dict(zip(energy.headers, row))
        # Paper claim: RoLo-P/R match GRAID's energy on these traces.
        assert values["rolo-p"] <= values["graid"] * 1.1
        assert values["rolo-p"] < 1.0
    for row in response.rows:
        values = dict(zip(response.headers, row))
        # Paper claim: negligible impact for RoLo-P vs RAID10.
        assert values["rolo-p"] < 1.6
        # RoLo-E's read-miss spin-ups blow up on read-heavy traces.
        if row[0] in ("hm_1", "web_1"):
            assert values["rolo-e"] > values["rolo-p"]
