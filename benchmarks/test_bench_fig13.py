"""Benchmark: regenerate Figure 13 (free-space sensitivity)."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig13_free_space_sensitivity(benchmark):
    report = run_experiment_benchmark(
        benchmark,
        "fig13",
        scale=0.02,
        n_pairs=6,
        free_space_gb=(8, 6, 4),
        workloads=("src2_2",),
    )
    table = report.tables[0]
    rotations = report.get_table(
        "rotations per run (the paper's explanation)"
    )
    # Paper explanation: less free space => more rotations.
    rp = rotations.column("rolo-p")
    assert rp[-1] >= rp[0]
    # Paper shape: savings over GRAID decline as free space shrinks (more
    # frequent rotations = more spin activity), and are positive at the
    # full 8 GB setting.
    savings = table.column("rolo-p")
    assert savings == sorted(savings, reverse=True)
    assert savings[0] > 0
