"""Benchmark: regenerate Figure 10 and Tables I/IV/V (main comparison).

The three tables are projections of the same memoized runs, so they are
generated in one benchmark to mirror how the paper derives them.
"""

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import clear_cache, get_experiment

SCALE = {"src2_2": 0.03, "proj_0": 0.01}


def test_fig10_main_comparison(benchmark):
    def target():
        clear_cache()
        reports = {}
        for workload, scale in SCALE.items():
            reports[workload] = get_experiment("fig10").run(
                scale=scale, n_pairs=10, workloads=(workload,)
            )
        return reports

    reports = benchmark.pedantic(target, rounds=1, iterations=1)
    for workload, report in reports.items():
        print()
        print(report.to_text())
        energy = report.get_table(
            "Fig 10(a): energy consumption (normalized to RAID10)"
        )
        headers = energy.headers
        row = dict(zip(headers, energy.rows[0]))
        # Paper shape: every logging scheme saves energy; RoLo-E saves most.
        assert row["graid"] < 1.0
        assert row["rolo-p"] < 1.0
        assert row["rolo-e"] == min(
            row[s] for s in ("graid", "rolo-p", "rolo-r", "rolo-e")
        )
        # RoLo-P no worse than GRAID.
        assert row["rolo-p"] <= row["graid"] * 1.02

        rt = report.get_table(
            "Fig 10(b): average response time (normalized to RAID10)"
        )
        rt_row = dict(zip(rt.headers, rt.rows[0]))
        # GRAID and RoLo-P track RAID10 within ~15% at benchmark scale.
        assert rt_row["graid"] < 1.2
        assert rt_row["rolo-p"] < 1.2


def test_table1_spin_counts(benchmark):
    def target():
        # Reuses the fig10 cache when run in the same session; standalone
        # it recomputes.
        return {
            workload: get_experiment("table1").run(
                scale=scale, n_pairs=10, workloads=(workload,)
            )
            for workload, scale in SCALE.items()
        }

    reports = benchmark.pedantic(target, rounds=1, iterations=1)
    for workload, report in reports.items():
        print()
        print(report.to_text())
        table = report.tables[0]
        row = dict(zip(table.headers, table.rows[0]))
        # Table I ordering: RAID10 = 0 < RoLo-P/R < GRAID < RoLo-E.
        assert row["raid10"] == 0
        assert 0 < row["rolo-p"] < row["graid"]
        assert row["rolo-r"] < row["graid"]
        assert row["rolo-e"] > row["graid"]


def test_table4_table5_summaries(benchmark):
    def target():
        # table4/table5 pull from the same memoized run set.
        t4 = get_experiment("table4").run(scale=0.01, n_pairs=10)
        t5 = get_experiment("table5").run(scale=0.01, n_pairs=10)
        return t4, t5

    t4, t5 = benchmark.pedantic(target, rounds=1, iterations=1)
    print()
    print(t4.to_text())
    print()
    print(t5.to_text())
    summary = t4.tables[0]
    for row in summary.rows:
        scheme, workload = row[0], row[1]
        saved_vs_raid10 = row[2]
        assert saved_vs_raid10 > 0, f"{scheme} must save energy vs RAID10"
