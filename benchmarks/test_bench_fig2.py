"""Benchmark: regenerate Figure 2 (logger capacity study, GRAID)."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig2_logger_capacity_study(benchmark):
    report = run_experiment_benchmark(
        benchmark,
        "fig2",
        scale=0.02,
        iops_levels=(10, 50, 100, 200),
        capacities_gb=(8, 12, 16),
        target_cycles=2,
    )
    intervals = report.get_table("Fig 2(a): mean interval lengths (s)")
    assert intervals is not None and intervals.rows
    # Paper shape: logging interval grows roughly with logger capacity for
    # a fixed intensity.
    by_iops = {}
    for iops, cap, logging, _ in intervals.rows:
        by_iops.setdefault(iops, []).append((cap, logging))
    for iops, points in by_iops.items():
        points.sort()
        values = [v for _, v in points]
        assert values == sorted(values), f"iops={iops}: {values}"
