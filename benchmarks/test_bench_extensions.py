"""Benchmarks for the extension experiments (recovery, idle slots, RAID5)."""

from benchmarks.conftest import run_experiment_benchmark


def test_recovery_drill(benchmark):
    report = run_experiment_benchmark(
        benchmark, "ext-recovery", scale=0.01, n_pairs=6
    )
    table = report.tables[0]
    rows = {
        (row[0], row[1]): row for row in table.rows
    }
    # The §III-C claims.
    assert rows[("graid", "primary")][2] == 6  # all mirrors woken
    assert rows[("rolo-p", "primary")][2] < rows[("graid", "primary")][2]
    assert rows[("rolo-r", "primary")][2] <= 1
    assert rows[("raid10", "primary")][2] == 0
    assert all(row[4] for row in table.rows)  # logging never stops


def test_idle_slot_analysis(benchmark):
    report = run_experiment_benchmark(
        benchmark,
        "ext-idleslots",
        scale=0.01,
        iops_levels=(10, 100),
        duration_s=400.0,
    )
    table = report.tables[0]
    # The §II claim: the overwhelming majority of idle slots are shorter
    # than the break-even time.
    below = table.column("below_break_even")
    assert all(fraction > 0.9 for fraction in below)


def test_raid5_small_write_study(benchmark):
    report = run_experiment_benchmark(
        benchmark,
        "ext-raid5",
        scale=0.01,
        n_disks=6,
        iops_levels=(20, 50),
        request_kb=(8,),
        duration_s=120.0,
    )
    table = report.tables[0]
    speedups = table.column("speedup")
    # RoLo-5 must beat plain RAID5 on small writes at every intensity.
    assert all(s > 1.0 for s in speedups)
    # And its advantage grows as the array gets busier.
    assert speedups[-1] >= speedups[0]
