"""Parallel-vs-serial determinism of the experiment runner.

These tests pin the PR's core invariant: running cells on a process pool
(or reading them back from a warm persistent cache) produces bit-for-bit
the same ``RunMetrics`` as the serial in-process path.
"""

import os

import pytest

from repro.experiments import cache as result_cache
from repro.experiments import clear_cache, get_experiment
from repro.experiments.parallel import default_jobs, execute_cells
from repro.experiments.runner import (
    reset_run_stats,
    run_scheme_set_seeds,
    run_stats,
    workload_cell,
)

SCHEMES = ("raid10", "rolo-p")
SEEDS = (42, 43)
SCALE = 0.004
N_PAIRS = 2
WORKLOAD = "rsrch_2"


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_cache()
    reset_run_stats()
    result_cache.configure(enabled=False)
    yield
    result_cache.configure(enabled=False)
    clear_cache()
    reset_run_stats()


def _as_dicts(results):
    return {
        scheme: [m.to_dict() for m in metrics_list]
        for scheme, metrics_list in results.items()
    }


class TestParallelDeterminism:
    def test_jobs2_identical_to_serial(self):
        serial = run_scheme_set_seeds(
            WORKLOAD, SCHEMES, SEEDS, jobs=1, scale=SCALE, n_pairs=N_PAIRS
        )
        serial_dicts = _as_dicts(serial)
        clear_cache()
        reset_run_stats()
        parallel = run_scheme_set_seeds(
            WORKLOAD, SCHEMES, SEEDS, jobs=2, scale=SCALE, n_pairs=N_PAIRS
        )
        # Every cell was computed by a worker; the assembly loop only read
        # the memo back.
        assert run_stats()["computed"] == 0
        assert run_stats()["memory_hits"] == len(SCHEMES) * len(SEEDS)
        assert _as_dicts(parallel) == serial_dicts

    def test_execute_cells_counts_and_dedupes(self):
        cells = [
            workload_cell(s, WORKLOAD, scale=SCALE, n_pairs=N_PAIRS)
            for s in SCHEMES
        ]
        stats = execute_cells(cells + cells, jobs=2)
        assert stats.total == 4
        assert stats.unique == 2
        assert stats.cached == 0
        assert stats.computed == 2
        again = execute_cells(cells, jobs=2)
        assert again.cached == 2
        assert again.computed == 0

    def test_jobs1_defers_to_serial_path(self):
        cells = [
            workload_cell(s, WORKLOAD, scale=SCALE, n_pairs=N_PAIRS)
            for s in SCHEMES
        ]
        stats = execute_cells(cells, jobs=1)
        assert stats.computed == 0  # nothing runs on the pool
        assert run_stats()["computed"] == 0


class TestDefaultJobs:
    def test_respects_cpu_affinity_mask(self, monkeypatch):
        # A container pinned to 2 of 64 cores must start 2 workers.
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 5}, raising=False
        )
        assert default_jobs() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert default_jobs() == 6

    def test_never_returns_zero(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert default_jobs() == 1


class TestWarmCacheDeterminism:
    def test_warm_persistent_cache_equals_cold_run(self, tmp_path):
        result_cache.configure(str(tmp_path / "cache"))
        cold = run_scheme_set_seeds(
            WORKLOAD, SCHEMES, SEEDS, scale=SCALE, n_pairs=N_PAIRS
        )
        cold_dicts = _as_dicts(cold)
        assert run_stats()["computed"] == len(SCHEMES) * len(SEEDS)
        clear_cache()
        reset_run_stats()
        warm = run_scheme_set_seeds(
            WORKLOAD, SCHEMES, SEEDS, scale=SCALE, n_pairs=N_PAIRS
        )
        stats = run_stats()
        assert stats["computed"] == 0
        assert stats["disk_hits"] == len(SCHEMES) * len(SEEDS)
        assert _as_dicts(warm) == cold_dicts


class TestCellEnumeration:
    def test_fig10_cells_cover_the_run(self):
        cells = get_experiment("fig10").cells(
            scale=SCALE, n_pairs=N_PAIRS, workloads=(WORKLOAD,), seed=42
        )
        assert len(cells) == 5  # all five schemes on one workload
        keys = {c.key() for c in cells}
        assert len(keys) == 5
        # Prewarm, then the experiment itself must not simulate anything.
        execute_cells(cells, jobs=2)
        reset_run_stats()
        report = get_experiment("fig10").run(
            scale=SCALE, n_pairs=N_PAIRS, workloads=(WORKLOAD,), seed=42
        )
        assert run_stats()["computed"] == 0
        assert report.tables[0].rows

    def test_tables_share_fig10_cells(self):
        fig10_keys = {
            c.key()
            for c in get_experiment("fig10").cells(scale=SCALE, seed=42)
        }
        for table_id in ("table1", "table4", "table5"):
            table_keys = {
                c.key()
                for c in get_experiment(table_id).cells(
                    scale=SCALE, seed=42
                )
            }
            assert table_keys <= fig10_keys

    def test_analytical_experiment_has_no_cells(self):
        assert get_experiment("fig9").cells(seed=42) == []

    def test_every_enumerator_accepts_cli_kwargs(self):
        """cells(seed=..., scale=...) must never raise for any experiment."""
        from repro.experiments import list_experiments

        for exp in list_experiments():
            cells = exp.cells(seed=42, scale=0.01)
            assert isinstance(cells, list)


class TestProfiledExecution:
    def _cells(self):
        return [
            workload_cell(
                scheme, WORKLOAD, scale=SCALE, n_pairs=N_PAIRS, seed=42
            )
            for scheme in SCHEMES
        ]

    def test_profiled_pool_metrics_identical(self):
        cells = self._cells()
        baseline = [c.execute().to_dict() for c in cells]
        clear_cache()
        stats = execute_cells(cells, jobs=2, collect_profiles=True)
        from repro.experiments.runner import lookup_cached

        assert stats.computed == len(cells)
        assert [
            lookup_cached(c.key()).to_dict() for c in cells
        ] == baseline
        report = stats.profiles
        assert report is not None
        assert len(report.cells) == len(cells)
        assert all(p.source == "computed" for p in report.cells)
        assert all(p.events > 0 and p.wall_s > 0 for p in report.cells)
        # Deterministic ordering regardless of pool completion order.
        assert [p.label for p in report.cells] == sorted(
            p.label for p in report.cells
        )

    def test_profiled_serial_computes_in_process(self):
        cells = self._cells()
        stats = execute_cells(cells, jobs=1, collect_profiles=True)
        assert stats.computed == len(cells)
        assert len(stats.profiles.computed) == len(cells)
        # Results were installed: a second pass sees only cached cells.
        again = execute_cells(cells, jobs=1, collect_profiles=True)
        assert again.computed == 0
        assert again.cached == len(cells)
        assert all(p.source == "cached" for p in again.profiles.cells)

    def test_no_profiles_without_flag(self):
        stats = execute_cells(self._cells(), jobs=1)
        assert stats.profiles is None

    def test_merged_combines_profiles(self):
        cells = self._cells()
        first = execute_cells(cells[:1], jobs=1, collect_profiles=True)
        second = execute_cells(cells[1:], jobs=1, collect_profiles=True)
        merged = first.merged(second)
        assert len(merged.profiles.cells) == len(cells)
        plain = first.merged(execute_cells(cells[1:], jobs=1))
        assert len(plain.profiles.cells) == 1
