"""Unit tests for the event-driven disk server."""

import pytest

from repro.disk.disk import Disk, DiskOp, OpKind, Priority
from repro.disk.models import ULTRASTAR_36Z15
from repro.disk.power import PowerState
from repro.sim import Simulator

KB = 1024


def make_disk(sim, standby=False):
    state = PowerState.STANDBY if standby else PowerState.IDLE
    return Disk(sim, ULTRASTAR_36Z15, "D0", initial_state=state)


def op(sector=0, nbytes=64 * KB, kind=OpKind.WRITE, **kwargs):
    return DiskOp(kind, sector, nbytes, **kwargs)


class TestBasicService:
    def test_single_op_completes(self, sim):
        disk = make_disk(sim)
        done = []
        disk.submit(op(on_complete=done.append))
        sim.run()
        assert len(done) == 1
        assert done[0].finish_time > 0
        assert disk.ops_completed == 1
        assert disk.bytes_transferred == 64 * KB

    def test_sequential_hint_costs_transfer_only(self, sim):
        disk = make_disk(sim)
        done = []
        disk.submit(
            op(sector=10_000, sequential_hint=True, on_complete=done.append)
        )
        sim.run()
        assert done[0].latency == pytest.approx(
            ULTRASTAR_36Z15.transfer_time(64 * KB)
        )

    def test_back_to_back_sequential_detected(self, sim):
        disk = make_disk(sim)
        done = []
        disk.submit(op(sector=0, nbytes=64 * KB, on_complete=done.append))
        disk.submit(op(sector=128, nbytes=64 * KB, on_complete=done.append))
        sim.run()
        # Second op starts where the head landed: transfer-only.
        service2 = done[1].finish_time - done[1].start_time
        assert service2 == pytest.approx(
            ULTRASTAR_36Z15.transfer_time(64 * KB)
        )

    def test_ops_serialize(self, sim):
        disk = make_disk(sim)
        done = []
        disk.submit(op(on_complete=done.append))
        disk.submit(op(sector=1_000_000, on_complete=done.append))
        sim.run()
        assert done[1].start_time >= done[0].finish_time

    def test_fifo_within_priority(self, sim):
        disk = make_disk(sim)
        order = []
        for i in range(5):
            disk.submit(
                op(sector=i * 1000, on_complete=lambda o, i=i: order.append(i))
            )
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_active_while_busy_idle_after(self, sim):
        disk = make_disk(sim)
        states = []
        disk.submit(op(on_complete=lambda o: states.append(disk.state)))
        sim.run()
        # During the completion callback the disk is still ACTIVE.
        assert states == [PowerState.ACTIVE]
        assert disk.state is PowerState.IDLE

    def test_invalid_ops_rejected(self):
        with pytest.raises(ValueError):
            DiskOp(OpKind.WRITE, -1, 10)
        with pytest.raises(ValueError):
            DiskOp(OpKind.WRITE, 0, 0)


class TestPriorities:
    def test_foreground_overtakes_queued_background(self, sim):
        disk = make_disk(sim)
        order = []
        # One op in service, then queue a background and a foreground op.
        disk.submit(op(on_complete=lambda o: order.append("first")))
        disk.submit(
            op(
                priority=Priority.BACKGROUND,
                on_complete=lambda o: order.append("bg"),
            )
        )
        disk.submit(op(on_complete=lambda o: order.append("fg")))
        sim.run()
        assert order == ["first", "fg", "bg"]

    def test_pending_foreground_counts_in_service(self, sim):
        disk = make_disk(sim)
        seen = []
        disk.submit(op(on_complete=lambda o: seen.append(disk.pending_foreground)))
        assert disk.pending_foreground == 1
        sim.run()
        # During its own completion callback the op no longer counts.
        assert seen == [0]

    def test_background_does_not_count_as_pending_foreground(self, sim):
        disk = make_disk(sim)
        disk.submit(op(priority=Priority.BACKGROUND))
        # Immediately enters service on an idle disk but still must not
        # count as pending foreground work.
        assert disk.pending_foreground == 0
        assert disk.busy
        sim.run()


class TestPowerManagement:
    def test_standby_disk_wakes_on_submit(self, sim):
        disk = make_disk(sim, standby=True)
        done = []
        disk.submit(op(on_complete=done.append))
        sim.run()
        assert done[0].latency >= ULTRASTAR_36Z15.spin_up_time
        assert disk.power.spin_up_count == 1

    def test_spin_down_when_quiet(self, sim):
        disk = make_disk(sim)
        assert disk.request_spin_down() is True
        sim.run()
        assert disk.state is PowerState.STANDBY
        assert disk.power.spin_down_count == 1

    def test_spin_down_refused_while_busy(self, sim):
        disk = make_disk(sim)
        disk.submit(op())
        assert disk.request_spin_down() is False
        sim.run()

    def test_spin_down_refused_when_already_down(self, sim):
        disk = make_disk(sim, standby=True)
        assert disk.request_spin_down() is False

    def test_spin_up_idempotent(self, sim):
        disk = make_disk(sim, standby=True)
        disk.request_spin_up()
        disk.request_spin_up()
        sim.run()
        assert disk.state is PowerState.IDLE
        assert disk.power.spin_up_count == 1

    def test_spin_up_while_spinning_down_waits_then_rises(self, sim):
        disk = make_disk(sim)
        disk.request_spin_down()
        disk.request_spin_up()  # arrives mid spin-down
        sim.run()
        assert disk.state is PowerState.IDLE
        assert disk.power.spin_down_count == 1
        assert disk.power.spin_up_count == 1

    def test_submit_while_spinning_down_wakes_after(self, sim):
        disk = make_disk(sim)
        disk.request_spin_down()
        done = []
        disk.submit(op(on_complete=done.append))
        sim.run()
        assert len(done) == 1
        expected_min = (
            ULTRASTAR_36Z15.spin_down_time + ULTRASTAR_36Z15.spin_up_time
        )
        assert done[0].latency >= expected_min

    def test_energy_conservation(self, sim):
        """Total energy equals sum of state power x duration."""
        disk = make_disk(sim)
        disk.submit(op())
        sim.run()
        disk.request_spin_down()
        sim.run()
        disk.close()
        acct = disk.power
        recomputed = sum(
            acct.state_durations[s] * PowerStatePower(s)
            for s in PowerState
        )
        assert acct.energy_joules == pytest.approx(recomputed)

    def test_state_durations_sum_to_elapsed(self, sim):
        disk = make_disk(sim)
        disk.submit(op())
        sim.run()
        disk.close()
        assert sum(disk.power.state_durations.values()) == pytest.approx(
            sim.now
        )


def PowerStatePower(state):
    spec = ULTRASTAR_36Z15
    return {
        PowerState.ACTIVE: spec.power_active,
        PowerState.IDLE: spec.power_idle,
        PowerState.STANDBY: spec.power_standby,
        PowerState.SPINNING_UP: spec.spin_up_energy / spec.spin_up_time,
        PowerState.SPINNING_DOWN: spec.spin_down_energy
        / spec.spin_down_time,
        PowerState.FAILED: 0.0,
    }[state]


class TestIdleListeners:
    def test_listener_fires_when_quiet(self, sim):
        disk = make_disk(sim)
        idles = []
        disk.add_idle_listener(lambda d: idles.append(sim.now))
        disk.submit(op())
        sim.run()
        assert len(idles) == 1

    def test_listener_not_fired_while_more_work_queued(self, sim):
        disk = make_disk(sim)
        idles = []
        disk.add_idle_listener(lambda d: idles.append(sim.now))
        disk.submit(op())
        disk.submit(op(sector=1_000_000))
        sim.run()
        assert len(idles) == 1

    def test_listener_removal(self, sim):
        disk = make_disk(sim)
        idles = []
        cb = lambda d: idles.append(1)  # noqa: E731
        disk.add_idle_listener(cb)
        disk.remove_idle_listener(cb)
        disk.remove_idle_listener(cb)  # idempotent
        disk.submit(op())
        sim.run()
        assert idles == []

    def test_listener_issuing_work_stops_notification_chain(self, sim):
        disk = make_disk(sim)
        calls = []

        def refill(d):
            calls.append("refill")
            if len(calls) < 2:
                d.submit(op(sector=2_000_000))

        disk.add_idle_listener(refill)
        disk.submit(op())
        sim.run()
        assert calls == ["refill", "refill"]

    def test_is_quiet(self, sim):
        disk = make_disk(sim)
        assert disk.is_quiet
        disk.submit(op())
        assert not disk.is_quiet
        sim.run()
        assert disk.is_quiet
        disk.request_spin_down()
        sim.run()
        assert not disk.is_quiet  # standby is not "quiet idle"

    def test_initial_state_validation(self, sim):
        with pytest.raises(ValueError):
            Disk(sim, ULTRASTAR_36Z15, "bad", initial_state=PowerState.ACTIVE)
