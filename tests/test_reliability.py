"""Unit tests for the reliability analysis (paper §IV)."""

import math

import pytest

from repro.reliability import (
    AbsorbingCTMC,
    MTTDL_CLOSED_FORMS,
    SpinDerating,
    mttdl_closed_form,
    mttdl_ctmc,
    mttdl_sweep,
)
from repro.reliability.mttdl import (
    HOURS_PER_YEAR,
    mirrored_pair_chain,
    mttdl_graid_5,
    mttdl_raid10_4,
    mttdl_rolo_e_4,
    mttdl_rolo_p_4,
    mttdl_rolo_r_4,
    raid10_chain,
)

LAM = 1e-5
MU = 1.0 / (3 * 24)


class TestAbsorbingCTMC:
    def test_two_state_chain_exact(self):
        """0 -> absorbing at rate r: MTTA = 1/r."""
        chain = AbsorbingCTMC()
        chain.add_state("loss", absorbing=True)
        chain.add_transition(0, "loss", 0.5)
        assert chain.mean_time_to_absorption(0) == pytest.approx(2.0)

    def test_birth_death_with_repair(self):
        """0 <-> 1 -> loss solves to (mu + a + b) / (a b)."""
        a, b, mu = 2.0, 3.0, 10.0
        chain = AbsorbingCTMC()
        chain.add_state("loss", absorbing=True)
        chain.add_transition(0, 1, a)
        chain.add_transition(1, 0, mu)
        chain.add_transition(1, "loss", b)
        expected = (mu + a + b) / (a * b)
        assert chain.mean_time_to_absorption(0) == pytest.approx(expected)

    def test_absorbing_from_absorbing_is_zero(self):
        chain = AbsorbingCTMC()
        chain.add_state("loss", absorbing=True)
        chain.add_transition(0, "loss", 1.0)
        assert chain.mean_time_to_absorption("loss") == 0.0

    def test_implicit_absorbing_state(self):
        chain = AbsorbingCTMC()
        chain.add_transition(0, 1, 1.0)  # 1 has no exits -> absorbing
        assert chain.absorbing_states() == {1}
        assert chain.mean_time_to_absorption(0) == pytest.approx(1.0)

    def test_no_absorbing_state_rejected(self):
        chain = AbsorbingCTMC()
        chain.add_transition(0, 1, 1.0)
        chain.add_transition(1, 0, 1.0)
        with pytest.raises(ValueError):
            chain.mean_time_to_absorption(0)

    def test_unreachable_absorption_rejected(self):
        chain = AbsorbingCTMC()
        chain.add_state("loss", absorbing=True)
        chain.add_transition(0, 1, 1.0)
        chain.add_transition(1, 0, 1.0)
        chain.add_transition(2, "loss", 1.0)
        with pytest.raises(ValueError):
            chain.mean_time_to_absorption(0)

    def test_rate_accumulation(self):
        chain = AbsorbingCTMC()
        chain.add_state("loss", absorbing=True)
        chain.add_transition(0, "loss", 0.25)
        chain.add_transition(0, "loss", 0.25)
        assert chain.mean_time_to_absorption(0) == pytest.approx(2.0)

    def test_validation(self):
        chain = AbsorbingCTMC()
        with pytest.raises(ValueError):
            chain.add_transition(0, 1, 0.0)
        with pytest.raises(ValueError):
            chain.add_transition(0, 0, 1.0)

    def test_absorption_probabilities(self):
        chain = AbsorbingCTMC()
        chain.add_state("a", absorbing=True)
        chain.add_state("b", absorbing=True)
        chain.add_transition(0, "a", 1.0)
        chain.add_transition(0, "b", 3.0)
        probs = chain.absorption_probabilities(0)
        assert probs["a"] == pytest.approx(0.25)
        assert probs["b"] == pytest.approx(0.75)

    def test_longer_chain(self):
        """Pure death chain 0->1->2->loss: sum of stage times."""
        chain = AbsorbingCTMC()
        chain.add_state("loss", absorbing=True)
        chain.add_transition(0, 1, 1.0)
        chain.add_transition(1, 2, 2.0)
        chain.add_transition(2, "loss", 4.0)
        assert chain.mean_time_to_absorption(0) == pytest.approx(1.75)


class TestClosedForms:
    def test_equation_values(self):
        """Spot checks of equations (1)-(5)."""
        assert mttdl_raid10_4(LAM, MU) == pytest.approx(
            (3 * LAM + MU) / (4 * LAM**2)
        )
        assert mttdl_graid_5(LAM, MU) == pytest.approx(
            (17 * LAM + 2 * MU) / (12 * LAM**2)
        )
        assert mttdl_rolo_p_4(LAM, MU) == pytest.approx(
            (10 * LAM + MU) / (5 * LAM**2)
        )
        assert mttdl_rolo_r_4(LAM, MU) == pytest.approx(
            (15 * LAM + 2 * MU) / (6 * LAM**2)
        )
        assert mttdl_rolo_e_4(LAM, MU) == pytest.approx(
            (3 * LAM + MU) / (2 * LAM**2)
        )

    def test_fig9_ordering(self):
        """RoLo-R > RAID10 > RoLo-P > GRAID across the MTTR sweep."""
        for days in (1, 3, 5, 7):
            mu = 1.0 / (days * 24)
            values = {
                s: mttdl_closed_form(s, LAM, mu)
                for s in ("rolo-r", "raid10", "rolo-p", "graid")
            }
            assert (
                values["rolo-r"]
                > values["raid10"]
                > values["rolo-p"]
                > values["graid"]
            )

    def test_rolo_r_vs_raid10_within_33_percent(self):
        """Paper: RoLo-R outperforms RAID10 by up to 33%."""
        ratio = mttdl_rolo_r_4(LAM, MU) / mttdl_raid10_4(LAM, MU)
        assert 1.0 < ratio < 1.34

    def test_rolo_e_is_double_raid10(self):
        """Paper: MTTDL of RoLo-E is n (=2) times RAID10's."""
        assert mttdl_rolo_e_4(LAM, MU) / mttdl_raid10_4(
            LAM, MU
        ) == pytest.approx(2.0, rel=1e-9)

    def test_monotone_in_repair_rate(self):
        for scheme in MTTDL_CLOSED_FORMS:
            slow = mttdl_closed_form(scheme, LAM, 1 / (7 * 24))
            fast = mttdl_closed_form(scheme, LAM, 1 / 24)
            assert fast > slow

    def test_monotone_in_failure_rate(self):
        for scheme in MTTDL_CLOSED_FORMS:
            good = mttdl_closed_form(scheme, 1e-6, MU)
            bad = mttdl_closed_form(scheme, 1e-4, MU)
            assert good > bad

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            mttdl_closed_form("raid6", LAM, MU)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            mttdl_raid10_4(0, MU)
        with pytest.raises(ValueError):
            mttdl_raid10_4(LAM, -1)


class TestChains:
    def test_mirrored_pair_matches_closed_form_exactly(self):
        chain = mirrored_pair_chain(LAM, MU)
        expected = (3 * LAM + MU) / (2 * LAM**2)
        assert chain.mean_time_to_absorption(0) == pytest.approx(
            expected, rel=1e-9
        )

    def test_raid10_two_pairs_matches_equation_1(self):
        value = raid10_chain(LAM, MU, n_pairs=2).mean_time_to_absorption(0)
        assert value == pytest.approx(mttdl_raid10_4(LAM, MU), rel=0.01)

    def test_raid10_more_pairs_lowers_mttdl(self):
        two = raid10_chain(LAM, MU, 2).mean_time_to_absorption(0)
        four = raid10_chain(LAM, MU, 4).mean_time_to_absorption(0)
        assert four < two

    @pytest.mark.parametrize(
        "scheme", ["raid10", "graid", "rolo-p", "rolo-r", "rolo-e"]
    )
    def test_ctmc_asymptotically_matches_closed_form(self, scheme):
        """mu >> lambda regime: chain and equation agree within 1%."""
        value = mttdl_ctmc(scheme, LAM, MU)
        closed = mttdl_closed_form(scheme, LAM, MU)
        assert value == pytest.approx(closed, rel=0.01)

    def test_ctmc_preserves_fig9_ordering(self):
        values = {
            s: mttdl_ctmc(s, LAM, MU)
            for s in ("rolo-r", "raid10", "rolo-p", "graid")
        }
        assert (
            values["rolo-r"]
            > values["raid10"]
            > values["rolo-p"]
            > values["graid"]
        )

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            mttdl_ctmc("nope", LAM, MU)


class TestSweep:
    def test_default_sweep_shape(self):
        rows = mttdl_sweep()
        assert len(rows) == 7
        days, values = rows[0]
        assert days == 1
        assert set(values) == {"rolo-r", "raid10", "rolo-p", "graid"}

    def test_mttdl_decreases_with_mttr(self):
        rows = mttdl_sweep()
        for scheme in ("raid10", "graid"):
            series = [values[scheme] for _, values in rows]
            assert series == sorted(series, reverse=True)

    def test_units_are_years(self):
        rows = mttdl_sweep(mttr_days=[3])
        _, values = rows[0]
        hours = mttdl_closed_form("raid10", 1e-5, 1 / 72)
        assert values["raid10"] == pytest.approx(hours / HOURS_PER_YEAR)


class TestSpinDerating:
    def test_zero_cycles_is_identity(self):
        derate = SpinDerating(LAM)
        assert derate.effective_lambda(0.0) == LAM

    def test_lambda_increases_with_cycles(self):
        derate = SpinDerating(LAM)
        assert derate.effective_lambda(10.0) > derate.effective_lambda(1.0)

    def test_adjusted_mttdl_below_plain(self):
        derate = SpinDerating(LAM)
        plain = mttdl_closed_form("graid", LAM, MU)
        adjusted = derate.adjusted_mttdl(
            "graid", MU, spin_transitions=2874, horizon_hours=24, n_disks=41
        )
        assert adjusted < plain

    def test_compare_ranks_low_spin_schemes_higher(self):
        """The paper's combined measure: RoLo-P/R beat GRAID on spins."""
        derate = SpinDerating(LAM)
        out = derate.compare(
            MU,
            {"graid": 120, "rolo-p": 12},
            horizon_hours=24,
            n_disks=41,
        )
        # Same-ish base MTTDL order, but spin derating widens the gap.
        plain_ratio = mttdl_closed_form("rolo-p", LAM, MU) / \
            mttdl_closed_form("graid", LAM, MU)
        assert out["rolo-p"] / out["graid"] > plain_ratio

    def test_validation(self):
        with pytest.raises(ValueError):
            SpinDerating(0)
        with pytest.raises(ValueError):
            SpinDerating(LAM, rated_cycles=0)
        with pytest.raises(ValueError):
            SpinDerating(LAM).effective_lambda(-1)
        with pytest.raises(ValueError):
            SpinDerating(LAM).adjusted_mttdl("graid", MU, 1, 0, 1)
