"""Unit tests for run metrics and cycle windows."""

import pytest

from repro.core.metrics import CycleWindow, RunMetrics
from repro.disk.disk import Disk
from repro.disk.models import ULTRASTAR_36Z15
from repro.disk.power import PowerState
from repro.sim import Simulator


class TestCycleWindow:
    def test_intervals_and_energies(self):
        c = CycleWindow(
            logging_start=0.0,
            destage_start=10.0,
            destage_end=14.0,
            energy_at_logging_start=100.0,
            energy_at_destage_start=300.0,
            energy_at_destage_end=500.0,
        )
        assert c.complete
        assert c.logging_interval == 10.0
        assert c.destage_interval == 4.0
        assert c.logging_energy == 200.0
        assert c.destage_energy == 200.0

    def test_incomplete(self):
        assert not CycleWindow(logging_start=0.0).complete

    def test_incomplete_intervals_are_none(self):
        # destage_start still at the -1.0 sentinel: no interval or energy
        # figure is meaningful yet.
        c = CycleWindow(logging_start=5.0)
        assert c.logging_interval is None
        assert c.destage_interval is None
        assert c.logging_energy is None
        assert c.destage_energy is None

    def test_destaging_but_unfinished(self):
        # Destage started but not done: the logging period is determined,
        # the destaging period is not.
        c = CycleWindow(
            logging_start=0.0,
            destage_start=10.0,
            energy_at_logging_start=100.0,
            energy_at_destage_start=300.0,
        )
        assert not c.complete
        assert c.logging_interval == 10.0
        assert c.logging_energy == 200.0
        assert c.destage_interval is None
        assert c.destage_energy is None


class TestRunMetrics:
    def test_record_response_classifies(self):
        m = RunMetrics()
        m.record_response(True, 0.01)
        m.record_response(False, 0.03)
        m.record_response(True, 0.02)
        assert m.requests == 3
        assert m.writes == 2
        assert m.reads == 1
        assert m.mean_response_time_ms == pytest.approx(20.0)
        assert m.write_response_time.mean == pytest.approx(0.015)

    def test_read_hit_rate(self):
        m = RunMetrics()
        assert m.read_hit_rate == 0.0
        m.read_hits = 3
        m.read_misses = 1
        assert m.read_hit_rate == pytest.approx(0.75)

    def test_cycle_ratios(self):
        m = RunMetrics()
        m.cycles.append(
            CycleWindow(0.0, 8.0, 10.0, 0.0, 80.0, 100.0)
        )
        m.cycles.append(
            CycleWindow(10.0, 16.0, 20.0, 100.0, 160.0, 200.0)
        )
        # intervals: (8,2) and (6,4) -> ratios 0.2 and 0.4
        assert m.destage_interval_ratio() == pytest.approx(0.3)
        assert m.destage_energy_ratio() == pytest.approx(0.3)

    def test_cycle_ratios_ignore_incomplete(self):
        m = RunMetrics()
        m.cycles.append(CycleWindow(0.0))
        assert m.destage_interval_ratio() is None

    def test_finalize_aggregates_roles(self):
        sim = Simulator()
        d1 = Disk(sim, ULTRASTAR_36Z15, "P0")
        d2 = Disk(sim, ULTRASTAR_36Z15, "M0", initial_state=PowerState.STANDBY)
        sim.run(until=10.0)
        m = RunMetrics()
        m.finalize(sim.now, {"primary": [d1], "mirror": [d2]})
        assert m.duration_s == 10.0
        assert m.total_energy_j == pytest.approx(10 * 10.2 + 10 * 2.5)
        assert m.energy_by_role["primary"] == pytest.approx(102.0)
        assert m.idle_fraction("primary") == pytest.approx(1.0)
        assert m.idle_fraction("mirror") == 0.0
        assert m.mean_power_w == pytest.approx(12.7)

    def test_idle_fraction_unknown_role(self):
        assert RunMetrics().idle_fraction("nope") == 0.0

    def test_spin_cycle_count(self):
        m = RunMetrics()
        m.spin_up_count = 3
        m.spin_down_count = 2
        assert m.spin_cycle_count == 5

    def test_snapshot_isolated_from_later_responses(self):
        # Regression: snapshot() used copy.copy, which shared the
        # StreamingStat/Histogram accumulators with the live object —
        # responses recorded during drain retroactively altered the
        # reported metrics.
        m = RunMetrics()
        m.record_response(True, 0.01)
        m.record_response(False, 0.02)
        snap = m.snapshot()
        before = snap.to_dict()
        m.record_response(True, 5.0)  # post-window flush activity
        m.read_hits += 7
        assert snap.to_dict() == before
        assert snap.requests == 2
        assert snap.response_time.count == 2
        assert m.response_time.count == 3

    def test_snapshot_isolated_cycles_and_dicts(self):
        m = RunMetrics()
        window = CycleWindow(0.0, 8.0, 10.0, 0.0, 80.0, 100.0)
        m.cycles.append(window)
        m.energy_by_role = {"primary": 1.0}
        snap = m.snapshot()
        window.destage_end = 99.0  # in-flight cycle updated after snapshot
        m.energy_by_role["primary"] = 2.0
        m.cycles.append(CycleWindow(10.0))
        assert snap.cycles[0].destage_end == 10.0
        assert len(snap.cycles) == 1
        assert snap.energy_by_role["primary"] == 1.0

    def test_summary_contains_key_fields(self):
        m = RunMetrics()
        m.record_response(True, 0.01)
        text = m.summary()
        assert "requests=1" in text
        assert "mean_rt=" in text
