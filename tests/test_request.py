"""Unit tests for logical request fan-in."""

import pytest

from repro.raid.request import IORequest, RequestKind


def make(kind=RequestKind.WRITE, **kwargs):
    return IORequest(kind, 0, 4096, arrival_time=1.0, **kwargs)


class TestFanIn:
    def test_completes_after_all_ops(self):
        done = []
        req = make(on_complete=done.append)
        req.add_waits(2)
        req.seal(1.0)
        req.op_done(2.0)
        assert not done
        req.op_done(3.0)
        assert done == [req]
        assert req.response_time == pytest.approx(2.0)

    def test_seal_with_no_ops_completes_immediately(self):
        done = []
        req = make(kind=RequestKind.READ, on_complete=done.append)
        req.seal(1.5)
        assert done == [req]
        assert req.response_time == pytest.approx(0.5)

    def test_not_complete_before_seal(self):
        done = []
        req = make(on_complete=done.append)
        req.add_waits()
        req.op_done(2.0)
        assert not done  # seal not yet called
        req.seal(2.5)
        assert done == [req]

    def test_op_done_without_waits_rejected(self):
        req = make()
        with pytest.raises(ValueError):
            req.op_done(1.0)

    def test_add_waits_validation(self):
        req = make()
        with pytest.raises(ValueError):
            req.add_waits(0)

    def test_response_time_before_completion_rejected(self):
        req = make()
        req.add_waits()
        with pytest.raises(ValueError):
            _ = req.response_time

    def test_complete_property(self):
        req = make()
        req.add_waits()
        req.seal(1.0)
        assert not req.complete
        req.op_done(4.0)
        assert req.complete
        assert req.finish_time == 4.0


class TestValidation:
    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            IORequest(RequestKind.READ, -1, 10, 0.0)
        with pytest.raises(ValueError):
            IORequest(RequestKind.READ, 0, 0, 0.0)

    def test_is_write(self):
        assert make().is_write
        assert not make(kind=RequestKind.READ).is_write
