"""Tests for the columnar compiled-trace representation.

The load-bearing property is that :func:`generate_compiled` and
:func:`generate_trace` consume the *same* RNG stream (via the shared
``_iter_events`` generator), so a compiled synthetic trace is
record-for-record identical to its legacy counterpart.  Everything else —
hashing, the drop-in ``Trace`` surface, cache keys — builds on that.
"""

import pytest

from repro.raid.request import RequestKind
from repro.traces import (
    TRACE_COMPILER_VERSION,
    Burstiness,
    CompiledTrace,
    SyntheticTraceConfig,
    Trace,
    TraceRecord,
    compile_trace,
    compiled_from_events,
    generate_compiled,
    generate_trace,
)

KB = 1024
MB = 1024 * KB


def _configs():
    """A spread of configs exercising every generator feature."""
    return [
        SyntheticTraceConfig(
            duration_s=20.0, iops=50, seed=7, name="plain", footprint_bytes=64 * MB
        ),
        SyntheticTraceConfig(
            duration_s=20.0,
            iops=80,
            write_ratio=0.6,
            size_sigma=0.5,
            burstiness=Burstiness.HIGH,
            burst_cycle_s=5.0,
            seed=11,
            name="bursty",
            footprint_bytes=64 * MB,
        ),
        SyntheticTraceConfig(
            duration_s=20.0,
            iops=60,
            write_ratio=0.5,
            read_locality=0.8,
            read_session_fraction=0.5,
            read_session_cycle_s=4.0,
            hotspot_fraction=0.7,
            hotspot_span=0.05,
            seed=13,
            name="sessions",
            footprint_bytes=64 * MB,
        ),
    ]


@pytest.mark.parametrize("config", _configs(), ids=lambda c: c.name)
def test_generate_compiled_matches_generate_trace(config):
    legacy = generate_trace(config)
    compiled = generate_compiled(config)
    assert isinstance(compiled, CompiledTrace)
    assert len(compiled) == len(legacy) > 0
    assert compiled.name == legacy.name
    assert compiled.footprint_bytes == legacy.footprint_bytes
    assert compiled.duration == legacy.duration
    for i, record in enumerate(legacy):
        assert compiled.arrivals[i] == record.timestamp
        assert compiled.offsets[i] == record.offset
        assert compiled.sizes[i] == record.nbytes
        assert compiled.kinds[i] == (1 if record.is_write else 0)


def test_drop_in_trace_surface():
    config = _configs()[0]
    legacy = generate_trace(config)
    compiled = generate_compiled(config)
    # Iteration and indexing materialize equal TraceRecord views.
    assert list(compiled) == legacy.records
    assert compiled[0] == legacy[0]
    assert compiled[len(compiled) - 1] == legacy[len(legacy) - 1]
    assert isinstance(compiled[0], TraceRecord)
    back = compiled.to_trace()
    assert isinstance(back, Trace)
    assert back.records == legacy.records
    assert back.footprint_bytes == legacy.footprint_bytes


def test_compile_trace_roundtrip_and_idempotence():
    config = _configs()[1]
    legacy = generate_trace(config)
    compiled = compile_trace(legacy)
    assert list(compiled) == legacy.records
    # Compiling a compiled trace is the identity.
    assert compile_trace(compiled) is compiled
    # And compiling the same legacy trace twice hashes identically.
    assert compile_trace(legacy).content_hash() == compiled.content_hash()


def test_content_hash_stability_and_sensitivity():
    config = _configs()[0]
    a = generate_compiled(config)
    b = generate_compiled(config)
    assert a.content_hash() == b.content_hash()

    import dataclasses

    other = generate_compiled(dataclasses.replace(config, seed=config.seed + 1))
    assert other.content_hash() != a.content_hash()

    # Mutating a single cell changes the hash (hash is over content,
    # recomputed lazily only once — so mutate before first hash call).
    c = generate_compiled(config)
    c.sizes[0] += 4096
    assert c.content_hash() != a.content_hash()


def test_cache_key_embeds_compiler_version():
    compiled = generate_compiled(_configs()[0])
    key = compiled.cache_key()
    assert key.startswith(f"ct{TRACE_COMPILER_VERSION}:")
    assert compiled.content_hash() in key


def test_compiled_from_events():
    events = [(0.0, True, 0, 4096), (1.0, False, 8192, 4096)]
    compiled = compiled_from_events(events, name="tiny", footprint_bytes=1 * MB)
    assert len(compiled) == 2
    assert compiled[0].kind is RequestKind.WRITE
    assert compiled[1].kind is RequestKind.READ
    assert compiled.duration == 1.0
    assert compiled.footprint_bytes == 1 * MB
    assert compiled.nbytes() > 0
