"""Tests for the extension features: break-even analysis, idle-gap
instrumentation, and multi-logger (n_on_duty > 1) operation."""

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import build_controller, run_trace
from repro.core.base import run_trace as run_trace_base
from repro.disk.disk import Disk, DiskOp, OpKind
from repro.disk.models import CHEETAH_15K5, ULTRASTAR_36Z15
from repro.sim import Simulator

KB = 1024


class TestBreakEvenTime:
    def test_ultrastar_value(self):
        """(148 J - 2.5 W x 12.4 s) / (10.2 - 2.5) W = ~15.2 s."""
        expected = (13 + 135 - 2.5 * (1.5 + 10.9)) / (10.2 - 2.5)
        assert ULTRASTAR_36Z15.break_even_time == pytest.approx(expected)

    def test_positive_for_both_models(self):
        assert ULTRASTAR_36Z15.break_even_time > 0
        assert CHEETAH_15K5.break_even_time > 0

    def test_break_even_dwarfs_typical_idle_gap(self):
        """The §II claim: break-even >> sub-second idle slots."""
        assert ULTRASTAR_36Z15.break_even_time > 10.0


class TestIdleGapHistogram:
    def test_gaps_recorded_between_ops(self, sim):
        disk = Disk(sim, ULTRASTAR_36Z15, "D")
        disk.submit(DiskOp(OpKind.WRITE, 0, 64 * KB))
        sim.run()
        sim.schedule(2.0, lambda: disk.submit(DiskOp(OpKind.WRITE, 0, 64 * KB)))
        sim.run()
        # The ~2 s gap between the two ops (the zero-length gap before the
        # first op is not a slot).
        assert disk.idle_gap_histogram.count == 1
        assert disk.idle_gap_histogram.quantile(1.0) >= 1.0

    def test_no_gap_recorded_for_back_to_back_ops(self, sim):
        disk = Disk(sim, ULTRASTAR_36Z15, "D")
        disk.submit(DiskOp(OpKind.WRITE, 0, 64 * KB))
        disk.submit(DiskOp(OpKind.WRITE, 200, 64 * KB))
        sim.run()
        assert disk.idle_gap_histogram.count == 0

    def test_standby_time_not_counted_as_idle_gap(self, sim):
        disk = Disk(sim, ULTRASTAR_36Z15, "D")
        disk.submit(DiskOp(OpKind.WRITE, 0, 64 * KB))
        sim.run()
        disk.request_spin_down()
        sim.run()
        count_before = disk.idle_gap_histogram.count
        sim.schedule(100.0, lambda: disk.submit(DiskOp(OpKind.WRITE, 0, 64 * KB)))
        sim.run()
        # The 100 s standby stretch produced no *idle* gap; only the short
        # post-spin-up wait before service counts.
        new = disk.idle_gap_histogram.count - count_before
        assert new <= 1
        if new:
            assert disk.idle_gap_histogram.quantile(1.0) < 100.0


class TestMultipleOnDutyLoggers:
    def test_two_loggers_start_spinning(self, sim):
        controller = build_controller(
            "rolo-p", sim, small_config(n_pairs=4, n_on_duty=2)
        )
        assert controller._on_duty == [0, 1]
        assert controller.mirrors[0].state.spun_up
        assert controller.mirrors[1].state.spun_up
        assert not controller.mirrors[2].state.spun_up

    def test_appends_round_robin_across_loggers(self, sim):
        controller = build_controller(
            "rolo-p", sim, small_config(n_pairs=4, n_on_duty=2)
        )
        run_trace_base(controller, write_burst(10), drain=False)
        assert controller.mirrors[0].foreground_ops == 5
        assert controller.mirrors[1].foreground_ops == 5

    def test_rotation_replaces_only_the_full_logger(self, sim):
        controller = build_controller(
            "rolo-p", sim, small_config(n_pairs=4, n_on_duty=2)
        )
        # Fill logger 0 past the threshold (4MB region -> 52 x 64K).
        # Round-robin sends every other write to logger 0, so ~110 writes.
        run_trace(controller, write_burst(110, gap=0.05))
        duty = set(controller._on_duty)
        assert len(duty) == 2
        assert controller.metrics.rotations >= 1

    def test_consistency_with_two_loggers(self, sim):
        controller = build_controller(
            "rolo-r", sim, small_config(n_pairs=4, n_on_duty=2)
        )
        run_trace(controller, write_burst(60, gap=0.05))
        controller.assert_consistent()
        for region in controller.mirror_logs + controller.primary_logs:
            region.check_invariants()
