"""Tests for the SSTF disk scheduler and the burstiness analysis."""

import pytest

from tests.conftest import small_config, write_burst
from repro.core import build_controller, run_trace
from repro.disk.disk import Disk, DiskOp, OpKind, Scheduler
from repro.disk.models import ULTRASTAR_36Z15
from repro.raid.request import RequestKind
from repro.sim import Simulator
from repro.traces.analysis import burstiness_index, classify_burstiness
from repro.traces.record import Trace, TraceRecord
from repro.traces.synthetic import (
    Burstiness,
    SyntheticTraceConfig,
    generate_trace,
)

KB = 1024
MB = 1024 * KB


class TestSSTF:
    def _queue_three(self, sim, scheduler):
        disk = Disk(sim, ULTRASTAR_36Z15, "D", scheduler=scheduler)
        order = []
        sectors = ULTRASTAR_36Z15.capacity_sectors
        # First op parks the head near the start.
        disk.submit(
            DiskOp(OpKind.READ, 0, 64 * KB,
                   on_complete=lambda o: order.append("near-start"))
        )
        # While busy, queue far then near: SSTF should reorder.
        disk.submit(
            DiskOp(OpKind.READ, sectors - 1000, 64 * KB,
                   on_complete=lambda o: order.append("far"))
        )
        disk.submit(
            DiskOp(OpKind.READ, 100_000, 64 * KB,
                   on_complete=lambda o: order.append("near"))
        )
        sim.run()
        return order

    def test_fcfs_preserves_arrival_order(self, sim):
        assert self._queue_three(sim, Scheduler.FCFS) == [
            "near-start",
            "far",
            "near",
        ]

    def test_sstf_serves_nearest_first(self, sim):
        assert self._queue_three(sim, Scheduler.SSTF) == [
            "near-start",
            "near",
            "far",
        ]

    def test_sstf_reduces_total_busy_time(self):
        import random

        rng = random.Random(4)
        sectors = ULTRASTAR_36Z15.capacity_sectors
        offsets = [rng.randrange(sectors - 1000) for _ in range(50)]

        def total_busy(scheduler):
            sim = Simulator()
            disk = Disk(sim, ULTRASTAR_36Z15, "D", scheduler=scheduler)
            for s in offsets:
                disk.submit(DiskOp(OpKind.READ, s, 4 * KB))
            sim.run()
            return disk.busy_time

        assert total_busy(Scheduler.SSTF) < total_busy(Scheduler.FCFS)

    def test_sstf_still_respects_priorities(self, sim):
        from repro.disk.disk import Priority

        disk = Disk(sim, ULTRASTAR_36Z15, "D", scheduler=Scheduler.SSTF)
        order = []
        disk.submit(DiskOp(OpKind.READ, 0, 64 * KB,
                           on_complete=lambda o: order.append("first")))
        # Background op nearest to the head, foreground far away.
        disk.submit(
            DiskOp(OpKind.READ, 200, 64 * KB, priority=Priority.BACKGROUND,
                   on_complete=lambda o: order.append("bg-near"))
        )
        disk.submit(
            DiskOp(OpKind.READ, 30_000_000, 64 * KB,
                   on_complete=lambda o: order.append("fg-far"))
        )
        sim.run()
        assert order == ["first", "fg-far", "bg-near"]

    def test_controller_config_plumbs_scheduler(self, sim):
        controller = build_controller(
            "raid10", sim, small_config(disk_scheduler="sstf")
        )
        assert all(
            d.scheduler is Scheduler.SSTF for d in controller.all_disks()
        )
        metrics = run_trace(controller, write_burst(20, gap=0.001))
        assert metrics.requests == 20

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ValueError):
            small_config(disk_scheduler="elevator")


class TestBurstinessIndex:
    def _trace(self, burstiness):
        return generate_trace(
            SyntheticTraceConfig(
                duration_s=600.0,
                iops=30.0,
                write_ratio=1.0,
                avg_request_bytes=16 * KB,
                footprint_bytes=32 * MB,
                burstiness=burstiness,
                burst_cycle_s=30.0,
                seed=3,
            )
        )

    def test_poisson_near_one(self):
        index = burstiness_index(self._trace(Burstiness.NONE))
        assert 0.5 < index < 2.5

    def test_bursty_much_larger(self):
        poisson = burstiness_index(self._trace(Burstiness.NONE))
        bursty = burstiness_index(self._trace(Burstiness.VERY_HIGH))
        assert bursty > 5 * poisson

    def test_ordering_across_levels(self):
        levels = [
            Burstiness.NONE,
            Burstiness.MEDIUM,
            Burstiness.VERY_HIGH,
        ]
        indices = [burstiness_index(self._trace(b)) for b in levels]
        assert indices == sorted(indices)

    def test_empty_trace(self):
        assert burstiness_index(Trace([])) == 0.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            burstiness_index(Trace([]), window_s=0)

    def test_deterministic_trace(self):
        records = [
            TraceRecord(float(i), RequestKind.WRITE, 0, 4096)
            for i in range(100)
        ]
        index = burstiness_index(Trace(records))
        assert index < 0.2  # perfectly regular arrivals

    def test_classification_bands(self):
        assert classify_burstiness(1.0) == "Very Low"
        assert classify_burstiness(5.0) == "Low"
        assert classify_burstiness(20.0) == "Medium"
        assert classify_burstiness(50.0) == "High"
        assert classify_burstiness(500.0) == "Very High"
