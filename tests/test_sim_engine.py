"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator, Timer


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fifo():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_at_in_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.at(9.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, event.cancel)
    sim.run()
    assert fired == []


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 2.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    # Remaining event still fires on a subsequent run.
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek() == 2.0


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


class TestTimer:
    def test_fires_after_interval(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.arm()
        sim.run()
        assert fired == [2.0]

    def test_rearm_restarts_countdown(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.arm()
        sim.schedule(1.0, timer.arm)  # restart at t=1
        sim.run()
        assert fired == [3.0]

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.arm()
        sim.schedule(1.0, timer.cancel)
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, 1.0, lambda: None)
        assert not timer.armed
        timer.arm()
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_negative_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Timer(sim, -1.0, lambda: None)


class TestRunEdgeCases:
    def test_stop_from_inside_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: (fired.append(2), sim.stop()))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run()
        # The stopping event finishes; later events stay queued.
        assert fired == [1, 2]
        assert sim.now == 2.0
        assert sim.peek() == 3.0
        # A second run() resumes from where stop() left off.
        sim.run()
        assert fired == [1, 2, 3]
        assert sim.now == 3.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.at(t, fired.append, t)
        sim.run(until=2.5)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.5  # clock advanced to the horizon exactly
        assert sim.events_processed == 2
        # Resume: remaining events fire at their original times.
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]
        assert sim.now == 4.0
        assert sim.events_processed == 4

    def test_run_until_exact_event_time_inclusive(self):
        sim = Simulator()
        fired = []
        sim.at(2.0, fired.append, 2.0)
        sim.at(2.0 + 1e-9, fired.append, "later")
        sim.run(until=2.0)
        assert fired == [2.0]
        assert sim.now == 2.0

    def test_cancelled_events_not_counted(self):
        sim = Simulator()
        kept = [sim.schedule(1.0, lambda: None) for _ in range(3)]
        dropped = [sim.schedule(0.5, lambda: None) for _ in range(5)]
        for event in dropped:
            event.cancel()
        sim.run()
        assert sim.events_processed == len(kept)
        assert sim.now == 1.0

    def test_cancelled_events_not_counted_via_step(self):
        sim = Simulator()
        event = sim.schedule(0.5, lambda: None)
        sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.step() is True
        assert sim.events_processed == 1
        assert sim.now == 1.0

    def test_stop_during_run_until_still_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=10.0)
        assert fired == []
        assert sim.now == 10.0  # horizon still honored after a stop


class TestHeapHygiene:
    def test_compact_removes_cancelled_entries(self):
        sim = Simulator()
        kept = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        dropped = [sim.schedule(0.5, lambda: None) for _ in range(6)]
        for event in dropped:
            event.cancel()
        assert sim.heap_size == 10
        assert sim.cancelled_pending == 6
        removed = sim.compact()
        assert removed == 6
        assert sim.heap_size == len(kept)
        assert sim.cancelled_pending == 0
        # Surviving events still fire in order after the in-place rebuild.
        sim.run()
        assert sim.events_processed == len(kept)
        assert sim.now == 4.0

    def test_compact_is_noop_without_cancellations(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.compact() == 0
        assert sim.heap_size == 1

    def test_timer_rearm_storm_keeps_heap_bounded(self):
        # Regression: before automatic compaction, every re-arm of a
        # long-interval Timer left a cancelled entry in the heap for the
        # whole run, so N re-arms meant an O(N) heap.  The expiries (at
        # +1e4 s) never reach the heap top during the storm, so only
        # compaction can collect them.
        sim = Simulator()
        fired = []
        timer = Timer(sim, 10_000.0, lambda: fired.append(sim.now))
        state = {"count": 0, "peak": 0}

        def tick():
            state["count"] += 1
            timer.arm()
            if sim.heap_size > state["peak"]:
                state["peak"] = sim.heap_size
            if state["count"] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert state["count"] == 20_000
        assert state["peak"] <= 2_048  # bounded, not O(20k)
        assert sim.compactions > 0
        assert fired == [pytest.approx(19.999 + 10_000.0)]

    def test_compact_inside_callback_keeps_run_loop_consistent(self):
        # compact() mutates the heap list in place; triggering it from a
        # callback must not desynchronize the running event loop.
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(5.0, fired.append, "doomed") for _ in range(8)]

        def purge():
            for event in doomed:
                event.cancel()
            sim.compact()
            fired.append("purged")

        sim.schedule(1.0, purge)
        sim.schedule(2.0, fired.append, "after")
        sim.run()
        assert fired == ["purged", "after"]
        assert sim.now == 2.0

    def test_event_objects_are_pooled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        # The fired event went to the free list and the next schedule
        # reuses it with cleared callback state.
        assert len(sim._free) == 1
        recycled = sim._free[-1]
        assert recycled.callback is None and recycled.args is None
        event = sim.schedule(1.0, lambda: None)
        assert event is recycled
        assert not event.cancelled

    def test_cancelled_census_decrements_on_collection(self):
        sim = Simulator()
        events = [sim.schedule(0.5, lambda: None) for _ in range(3)]
        sim.schedule(1.0, lambda: None)
        for event in events:
            event.cancel()
        assert sim.cancelled_pending == 3
        sim.run()
        assert sim.cancelled_pending == 0
        assert sim.events_processed == 1
