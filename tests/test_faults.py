"""Fault-injection campaigns with the data-consistency oracle.

The core guarantee under test: for every scheme, a single disk failure at
*any* point of a write burst — followed by an online rebuild — loses zero
acknowledged blocks, as judged by the shadow block-store oracle.  Fault
times are drawn from seeded RNGs so the sweep is randomized but exactly
reproducible; one full scheme x fault-time campaign is pinned as a golden
file.
"""

import json
import os
import random

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import build_controller, run_trace
from repro.faults import (
    ConsistencyOracle,
    FaultSchedule,
    FaultScheduleError,
    build_campaign,
    campaign_summary,
    fault_cell,
    run_campaign,
    run_faulted,
)
from repro.sim import Simulator

KB = 1024
ALL_SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")
PAIR_DISKS = ("P0", "M0", "P1", "M1")
GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "fault_campaign.json"
)


def mixed_trace(writes: int = 40, reads: int = 10, gap: float = 0.05):
    """Writes with a sprinkle of reads, exercising hit and miss paths."""
    spec = [
        (i * gap, "w", (i % 16) * 64 * KB, 64 * KB) for i in range(writes)
    ]
    spec += [
        (writes * gap + i * gap, "r", (i % 20) * 64 * KB, 64 * KB)
        for i in range(reads)
    ]
    return make_trace(spec, name="mixed")


# ----------------------------------------------------------------------
# Schedule specs
# ----------------------------------------------------------------------
class TestScheduleSpec:
    def test_round_trip(self):
        spec = "lse@2:P0:2048+16,slow@10:P1:4x20,fail@30:M0"
        schedule = FaultSchedule.parse(spec)
        assert schedule.spec() == spec
        assert FaultSchedule.parse(schedule.spec()) == schedule

    def test_norebuild_round_trip(self):
        schedule = FaultSchedule.parse("fail@30:M0:norebuild")
        assert not schedule.events[0].rebuild
        assert schedule.spec() == "fail@30:M0:norebuild"

    def test_events_sorted_by_time(self):
        schedule = FaultSchedule.parse("fail@30:M0,lse@2:P0:0+8")
        assert [e.time for e in schedule.events] == [2.0, 30.0]

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "fail@30",
            "fail@-1:M0",
            "explode@30:M0",
            "slow@10:P1:4",
            "lse@5:P0:banana+8",
            "fail@30:M0:maybe",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultScheduleError):
            FaultSchedule.parse(bad)

    def test_random_single_failure_is_seed_deterministic(self):
        a = FaultSchedule.random_single_failure(7, PAIR_DISKS, 1.0, 9.0)
        b = FaultSchedule.random_single_failure(7, PAIR_DISKS, 1.0, 9.0)
        c = FaultSchedule.random_single_failure(8, PAIR_DISKS, 1.0, 9.0)
        assert a == b
        assert a.spec() == b.spec()
        assert c != a or c.spec() != a.spec()

    def test_random_soup_round_trips(self):
        soup = FaultSchedule.random_soup(3, PAIR_DISKS, 0.0, 10.0)
        assert FaultSchedule.parse(soup.spec()) == soup


# ----------------------------------------------------------------------
# The tentpole guarantee: seeded random single-fault sweeps
# ----------------------------------------------------------------------
class TestRandomizedSingleFault:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_random_failure_during_burst_loses_nothing(self, scheme):
        trace = write_burst(60, gap=0.05)
        for seed in range(3):
            rng = random.Random(1000 * seed + 17)
            schedule = FaultSchedule.random_single_failure(
                rng, PAIR_DISKS, 0.3, 2.8
            )
            result = run_faulted(scheme, small_config(), trace, schedule)
            assert result.consistent, (scheme, schedule.spec())
            assert result.lost_blocks_total == 0
            assert result.rebuilds
            assert result.rebuilds[0]["rebuild_time"] > 0
            # Every sweep ran: at-fault, post-rebuild, end.
            assert [c.event.split(":")[0] for c in result.checks] == [
                "at-fault",
                "post-rebuild",
                "end",
            ]

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_failure_without_rebuild_still_consistent(self, scheme):
        schedule = FaultSchedule.parse("fail@1.2:M0:norebuild")
        result = run_faulted(
            scheme, small_config(), write_burst(40, gap=0.05), schedule
        )
        assert result.consistent
        assert result.rebuilds == []

    def test_graid_log_disk_failure_destages_everything(self):
        schedule = FaultSchedule.single_failure("LOG", 1.0)
        result = run_faulted(
            "graid", small_config(), write_burst(40, gap=0.05), schedule
        )
        assert result.consistent
        assert result.rebuilds

    @pytest.mark.parametrize("scheme", ("rolo-p", "rolo-r"))
    def test_on_duty_mirror_failure_hands_off_logging(self, scheme):
        sim = Simulator()
        oracle = ConsistencyOracle()
        controller = build_controller(
            scheme, sim, small_config(), oracle=oracle
        )
        from repro.core.base import run_trace as run_trace_base

        run_trace_base(controller, write_burst(10), drain=False)
        duty_before = set(controller._on_duty)
        victim_index = next(iter(duty_before))
        controller.fail_disk(controller.mirrors[victim_index])
        assert victim_index not in controller._on_duty
        assert oracle.check("after-handoff").ok


# ----------------------------------------------------------------------
# Oracle-enabled runs change nothing
# ----------------------------------------------------------------------
class TestOracleIsPureObserver:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_metrics_byte_identical_with_oracle(self, scheme):
        trace = mixed_trace()
        plain = run_trace(
            build_controller(scheme, Simulator(), small_config()), trace
        )
        oracle = ConsistencyOracle()
        observed = run_trace(
            build_controller(
                scheme, Simulator(), small_config(), oracle=oracle
            ),
            trace,
        )
        assert plain.to_dict() == observed.to_dict()
        assert oracle.tracked_units > 0
        assert oracle.check("fault-free").ok


# ----------------------------------------------------------------------
# Transient faults
# ----------------------------------------------------------------------
class TestTransientFaults:
    def test_slowdown_inflates_response_time(self):
        trace = write_burst(20, gap=0.05, stride=0)
        clean = run_faulted(
            "raid10",
            small_config(),
            trace,
            FaultSchedule.parse("slow@50:P1:2x1"),  # never touched
        )
        slowed = run_faulted(
            "raid10",
            small_config(),
            trace,
            FaultSchedule.parse("slow@0:P0:10x30"),
        )
        assert (
            slowed.metrics.response_time.mean
            > clean.metrics.response_time.mean
        )
        kinds = [e["kind"] for e in slowed.events]
        assert kinds == ["slowdown-start", "slowdown-end"]

    def test_latent_error_surfaces_on_read_and_scrubs(self):
        trace = make_trace(
            [(0.0, "w", 0, 64 * KB), (2.0, "r", 0, 64 * KB)]
        )
        result = run_faulted(
            "raid10",
            small_config(),
            trace,
            FaultSchedule.parse("lse@1:P0:0+16"),
        )
        kinds = [e["kind"] for e in result.events]
        assert kinds == ["lse-planted", "media-error", "scrub-repair"]
        assert result.consistent

    def test_latent_error_unread_stays_latent(self):
        result = run_faulted(
            "raid10",
            small_config(),
            make_trace([(0.0, "w", 0, 64 * KB)]),
            FaultSchedule.parse("lse@1:P0:999936+8"),
        )
        kinds = [e["kind"] for e in result.events]
        assert kinds == ["lse-planted"]

    def test_unknown_disk_rejected(self):
        with pytest.raises(FaultScheduleError):
            run_faulted(
                "raid10",
                small_config(),
                write_burst(2),
                FaultSchedule.single_failure("Z9", 0.5),
            )


# ----------------------------------------------------------------------
# Campaign plumbing + the pinned golden campaign
# ----------------------------------------------------------------------
class TestCampaign:
    def test_duplicate_cells_computed_once(self):
        schedule = FaultSchedule.single_failure("M0", 10.0)
        cell = fault_cell(
            "raid10", "src2_2", schedule, scale=0.01, n_pairs=2
        )
        twin = fault_cell(
            "raid10", "src2_2", schedule, scale=0.01, n_pairs=2
        )
        assert cell.key() == twin.key()
        results = run_campaign([cell, twin])
        assert len(results) == 2
        assert results[0].to_dict() == results[1].to_dict()

    def test_golden_campaign(self):
        cells = build_campaign(
            schemes=ALL_SCHEMES,
            workloads=("src2_2",),
            fault_times=(15.0, 45.0),
            disks=("P0", "M0"),
            scale=0.01,
            n_pairs=4,
            seed=42,
        )
        summary = campaign_summary(cells, run_campaign(cells))
        assert summary["inconsistent_cells"] == 0
        if not os.path.exists(GOLDEN):  # pragma: no cover - first run
            os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
            with open(GOLDEN, "w") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
            pytest.fail(f"golden file created at {GOLDEN}; rerun")
        with open(GOLDEN) as fh:
            expected = json.load(fh)
        if summary != expected:
            actual_path = GOLDEN.replace(".json", ".actual.json")
            with open(actual_path, "w") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
            assert summary == expected, (
                f"campaign drifted from golden file; wrote {actual_path}"
            )
