"""Tests for the SVG figure renderer.

No rasterizer is available in the offline environment, so in place of a
visual inspection these tests check the geometry structurally: marks stay
inside the plot area, axes are monotone, palette order is fixed, and the
legend rules (always for >= 2 series, direct labels for <= 4) hold.
"""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments.report import Report, Series
from repro.experiments.svg import (
    HEIGHT,
    MARGIN_B,
    MARGIN_L,
    MARGIN_R,
    MARGIN_T,
    PALETTE,
    WIDTH,
    render_chart_svg,
    report_to_svgs,
)


def series(name, points, x_label="x", y_label="y"):
    s = Series(name, x_label, y_label)
    for x, y in points:
        s.add(x, y)
    return s


def parse(svg_text):
    return ET.fromstring(svg_text)


NS = "{http://www.w3.org/2000/svg}"


class TestRenderChart:
    def test_valid_xml_with_surface(self):
        svg = render_chart_svg(
            [series("a", [(0, 1), (1, 2)])], "T"
        )
        root = parse(svg)
        assert root.tag == f"{NS}svg"
        rect = root.find(f"{NS}rect")
        assert rect.get("fill") == "#fcfcfb"

    def test_marks_stay_inside_plot_area(self):
        svg = render_chart_svg(
            [
                series("a", [(0, 0), (5, 100), (10, 50)]),
                series("b", [(0, 80), (10, -3)]),
            ],
            "T",
        )
        for cx, cy in re.findall(r'cx="([\d.]+)" cy="([\d.]+)"', svg):
            assert MARGIN_L - 1 <= float(cx) <= WIDTH - MARGIN_R + 1
            assert MARGIN_T - 1 <= float(cy) <= HEIGHT - MARGIN_B + 1

    def test_palette_assigned_in_fixed_order(self):
        svg = render_chart_svg(
            [series(f"s{i}", [(0, i), (1, i)]) for i in range(5)], "T"
        )
        strokes = re.findall(r'polyline[^>]*stroke="(#\w+)"', svg)
        assert strokes == PALETTE[:5]

    def test_legend_present_for_two_series(self):
        svg = render_chart_svg(
            [series("first", [(0, 1)]), series("second", [(0, 2)])], "T"
        )
        assert "first" in svg and "second" in svg
        # legend swatches
        assert svg.count('rx="2"') == 2

    def test_no_legend_box_for_single_series(self):
        svg = render_chart_svg([series("only", [(0, 1), (1, 2)])], "T")
        assert svg.count('rx="2"') == 0

    def test_direct_labels_only_up_to_four_series(self):
        many = [series(f"s{i}", [(0, i), (1, i)]) for i in range(6)]
        svg = render_chart_svg(many, "T")
        # 6 legend entries but no end labels: each name appears once.
        for i in range(6):
            assert svg.count(f">s{i}<") == 1
        few = [series(f"s{i}", [(0, i), (1, i)]) for i in range(3)]
        svg = render_chart_svg(few, "T")
        for i in range(3):
            assert svg.count(f">s{i}<") == 2  # legend + direct label

    def test_categorical_x_axis(self):
        svg = render_chart_svg(
            [series("a", [("src2_2", 1.0), ("proj_0", 2.0)])], "T"
        )
        assert "src2_2" in svg and "proj_0" in svg

    def test_too_many_series_rejected(self):
        many = [series(f"s{i}", [(0, i)]) for i in range(9)]
        with pytest.raises(ValueError):
            render_chart_svg(many, "T")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_chart_svg([], "T")

    def test_title_escaped(self):
        svg = render_chart_svg(
            [series("a<b", [(0, 1)])], "x < y & z"
        )
        assert "x &lt; y &amp; z" in svg
        parse(svg)  # must stay well-formed


class TestReportToSvgs:
    def test_groups_by_axis_pair(self, tmp_path):
        report = Report("exp", "Title")
        report.add_series(series("a", [(1, 2)], "days", "years"))
        report.add_series(series("b", [(1, 3)], "days", "years"))
        report.add_series(series("c", [(1, 4)], "iops", "ratio"))
        paths = report_to_svgs(report, tmp_path)
        assert len(paths) == 2
        for path in paths:
            assert path.exists()
            parse(path.read_text())

    def test_empty_series_skipped(self, tmp_path):
        report = Report("exp", "Title")
        report.add_series(Series("empty", "x", "y"))
        assert report_to_svgs(report, tmp_path) == []

    def test_overflow_splits_into_chunks(self, tmp_path):
        report = Report("exp", "Title")
        for i in range(10):
            report.add_series(series(f"s{i}", [(0, i), (1, i)]))
        paths = report_to_svgs(report, tmp_path)
        assert len(paths) == 2  # 8 + 2 split across two charts
