"""Unit tests for log-space management (region allocator + log regions)."""

import pytest

from repro.core.logspace import LogRegion, LogSpaceError, RegionAllocator

KB = 1024
MB = 1024 * KB


class TestRegionAllocator:
    def test_initial_state(self):
        alloc = RegionAllocator(MB)
        assert alloc.free_bytes == MB
        assert alloc.allocated == 0
        assert alloc.fragments == 1
        assert alloc.largest_free_extent == MB

    def test_allocate_first_fit(self):
        alloc = RegionAllocator(MB)
        assert alloc.allocate(64 * KB) == 0
        assert alloc.allocate(64 * KB) == 64 * KB
        assert alloc.allocated == 128 * KB

    def test_allocate_validation(self):
        alloc = RegionAllocator(MB)
        with pytest.raises(ValueError):
            alloc.allocate(0)

    def test_allocate_exhausted_raises(self):
        alloc = RegionAllocator(128 * KB)
        alloc.allocate(128 * KB)
        with pytest.raises(LogSpaceError):
            alloc.allocate(1)

    def test_fragmentation_blocks_large_allocation(self):
        alloc = RegionAllocator(192 * KB)
        a = alloc.allocate(64 * KB)
        alloc.allocate(64 * KB)  # b stays allocated, splitting the space
        c = alloc.allocate(64 * KB)
        alloc.free(a, 64 * KB)
        alloc.free(c, 64 * KB)
        # 128K free in total but no contiguous 128K run.
        assert alloc.free_bytes == 128 * KB
        assert alloc.largest_free_extent == 64 * KB
        with pytest.raises(LogSpaceError):
            alloc.allocate(128 * KB)
        alloc.check_invariants()

    def test_free_coalesces_neighbours(self):
        alloc = RegionAllocator(192 * KB)
        a = alloc.allocate(64 * KB)
        b = alloc.allocate(64 * KB)
        c = alloc.allocate(64 * KB)
        alloc.free(a, 64 * KB)
        alloc.free(c, 64 * KB)
        assert alloc.fragments == 2
        alloc.free(b, 64 * KB)
        assert alloc.fragments == 1
        assert alloc.largest_free_extent == 192 * KB
        alloc.check_invariants()

    def test_double_free_detected(self):
        alloc = RegionAllocator(MB)
        a = alloc.allocate(64 * KB)
        alloc.free(a, 64 * KB)
        with pytest.raises(LogSpaceError):
            alloc.free(a, 64 * KB)

    def test_free_validation(self):
        alloc = RegionAllocator(MB)
        with pytest.raises(ValueError):
            alloc.free(-1, 10)
        with pytest.raises(ValueError):
            alloc.free(0, MB + 1)

    def test_total_validation(self):
        with pytest.raises(ValueError):
            RegionAllocator(0)

    def test_reuse_after_free(self):
        alloc = RegionAllocator(128 * KB)
        a = alloc.allocate(128 * KB)
        alloc.free(a, 128 * KB)
        assert alloc.allocate(128 * KB) == 0


class TestLogRegion:
    def region(self, capacity=MB):
        return LogRegion("test", base_offset=10 * MB, capacity=capacity)

    def test_append_returns_absolute_offset(self):
        region = self.region()
        offset = region.append(64 * KB, {0: 64 * KB}, epoch=0)
        assert offset >= 10 * MB
        assert region.used == 64 * KB

    def test_contributions_must_sum(self):
        region = self.region()
        with pytest.raises(LogSpaceError):
            region.append(64 * KB, {0: 32 * KB}, epoch=0)

    def test_non_positive_contribution_rejected(self):
        region = self.region()
        with pytest.raises(LogSpaceError):
            region.append(64 * KB, {0: 64 * KB, 1: 0}, epoch=0)
        # The failed append must not leak allocated space.
        assert region.used == 0

    def test_occupancy_and_fits(self):
        region = self.region(capacity=128 * KB)
        assert region.fits(128 * KB)
        region.append(64 * KB, {0: 64 * KB}, epoch=0)
        assert region.occupancy == pytest.approx(0.5)
        assert region.fits(64 * KB)
        assert not region.fits(65 * KB)

    def test_reclaim_only_older_epochs(self):
        region = self.region()
        region.append(64 * KB, {1: 64 * KB}, epoch=0)
        region.append(64 * KB, {1: 64 * KB}, epoch=1)
        freed = region.reclaim(1, before_epoch=1)
        assert freed == 64 * KB
        assert region.live_bytes(1) == 64 * KB
        region.check_invariants()

    def test_reclaim_only_named_pair(self):
        region = self.region()
        region.append(64 * KB, {0: 64 * KB}, epoch=0)
        region.append(64 * KB, {1: 64 * KB}, epoch=0)
        freed = region.reclaim(0, before_epoch=5)
        assert freed == 64 * KB
        assert region.live_bytes(0) == 0
        assert region.live_bytes(1) == 64 * KB

    def test_reclaim_unknown_pair_is_zero(self):
        region = self.region()
        assert region.reclaim(7, before_epoch=10) == 0

    def test_multi_pair_append_reclaims_by_share(self):
        region = self.region()
        region.append(96 * KB, {0: 64 * KB, 1: 32 * KB}, epoch=0)
        assert region.live_bytes(0) == 64 * KB
        assert region.live_bytes(1) == 32 * KB
        freed = region.reclaim(0, before_epoch=1)
        assert freed == 64 * KB
        assert region.used == 32 * KB
        region.check_invariants()

    def test_reclaim_all(self):
        region = self.region()
        region.append(64 * KB, {0: 64 * KB}, epoch=0)
        region.append(64 * KB, {1: 64 * KB}, epoch=3)
        assert region.reclaim_all() == 128 * KB
        assert region.used == 0

    def test_append_when_full_raises(self):
        region = self.region(capacity=64 * KB)
        region.append(64 * KB, {0: 64 * KB}, epoch=0)
        with pytest.raises(LogSpaceError):
            region.append(1 * KB, {0: 1 * KB}, epoch=0)

    def test_space_reusable_after_reclaim(self):
        region = self.region(capacity=64 * KB)
        region.append(64 * KB, {0: 64 * KB}, epoch=0)
        region.reclaim(0, before_epoch=1)
        region.append(64 * KB, {0: 64 * KB}, epoch=1)
        assert region.used == 64 * KB

    def test_cache_charge_release(self):
        region = self.region()
        offset = region.charge_cache(64 * KB)
        assert region.cache_used == 64 * KB
        assert region.used == 64 * KB
        region.release_cache(offset, 64 * KB)
        assert region.cache_used == 0
        assert region.used == 0
        region.check_invariants()

    def test_cache_underflow_detected(self):
        region = self.region()
        offset = region.charge_cache(64 * KB)
        region.release_cache(offset, 64 * KB)
        with pytest.raises(LogSpaceError):
            region.release_cache(offset, 64 * KB)

    def test_reset_clears_everything(self):
        region = self.region()
        region.append(64 * KB, {0: 64 * KB}, epoch=0)
        region.charge_cache(64 * KB)
        freed = region.reset()
        assert freed == 128 * KB
        assert region.used == 0
        assert region.cache_used == 0
        region.check_invariants()

    def test_counters(self):
        region = self.region()
        region.append(64 * KB, {0: 64 * KB}, epoch=0)
        region.reclaim(0, before_epoch=1)
        assert region.appended_bytes == 64 * KB
        assert region.reclaimed_bytes == 64 * KB

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            LogRegion("x", -1, MB)


class TestDataRegionExpansion:
    """§III-E: free logger space can permanently grow the data region."""

    def test_expansion_shrinks_log_capacity(self):
        region = LogRegion("x", 0, MB)
        offset = region.expand_data_region(256 * KB)
        assert offset == 0
        assert region.capacity == MB - 256 * KB
        assert region.converted_bytes == 256 * KB
        assert region.used == 0
        region.check_invariants()

    def test_occupancy_uses_reduced_capacity(self):
        region = LogRegion("x", 0, MB)
        region.expand_data_region(512 * KB)
        region.append(256 * KB, {0: 256 * KB}, epoch=0)
        assert region.occupancy == pytest.approx(0.5)

    def test_expansion_requires_contiguous_run(self):
        region = LogRegion("x", 0, 192 * KB)
        region.append(64 * KB, {0: 64 * KB}, epoch=0)  # splits free space?
        region.append(64 * KB, {1: 64 * KB}, epoch=0)
        region.reclaim(0, before_epoch=1)  # free [0, 64K)
        with pytest.raises(LogSpaceError):
            region.expand_data_region(128 * KB)

    def test_expanded_space_never_returned(self):
        region = LogRegion("x", 0, MB)
        region.expand_data_region(256 * KB)
        region.append(64 * KB, {0: 64 * KB}, epoch=0)
        region.reclaim_all()
        assert region.capacity == MB - 256 * KB
        region.check_invariants()

    def test_reset_preserves_conversion(self):
        region = LogRegion("x", 0, MB)
        region.expand_data_region(256 * KB)
        region.charge_cache(64 * KB)
        region.reset()
        assert region.capacity == MB - 256 * KB
        assert region.converted_bytes == 256 * KB
        assert region.used == 0
        region.check_invariants()

    def test_validation(self):
        region = LogRegion("x", 0, MB)
        with pytest.raises(ValueError):
            region.expand_data_region(0)
