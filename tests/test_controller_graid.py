"""Unit tests for the GRAID centralized-logging controller."""

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import GraidController, run_trace
from repro.disk.power import PowerState
from repro.sim import Simulator

KB = 1024
MB = 1024 * KB


def build(sim, **overrides):
    return GraidController(sim, small_config(**overrides))


class TestLoggingPeriod:
    def test_write_goes_to_primary_and_log_disk(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(1))
        assert controller.primaries[0].foreground_ops == 1
        assert controller.log_disk.ops_completed == 1
        # Mirror untouched during the logging period (drain destages later,
        # but the foreground write itself must not touch it): the mirror's
        # ops are all background.
        assert controller.mirrors[0].foreground_ops == 0

    def test_mirrors_standby_during_logging(self, sim):
        controller = build(sim)
        # Few writes, far below the destage threshold; no drain.
        trace = write_burst(5)
        from repro.core.base import run_trace as rt

        metrics = rt(controller, trace, drain=False)
        assert all(
            m.state is PowerState.STANDBY for m in controller.mirrors
        )
        assert metrics.logged_bytes == 5 * 64 * KB

    def test_log_appends_sequential_cost(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(20))
        spec = controller.log_disk.spec
        # 20 sequential 64K appends ~ 20 transfer times.
        assert controller.log_disk.busy_time == pytest.approx(
            20 * spec.transfer_time(64 * KB), rel=0.01
        )

    def test_reads_served_by_primaries_only(self, sim):
        controller = build(sim)
        run_trace(
            controller,
            make_trace([(0.0, "w", 0, 64 * KB), (1.0, "r", 0, 64 * KB)]),
        )
        assert controller.primaries[0].foreground_ops == 2
        assert controller.mirrors[0].foreground_ops == 0


class TestDestaging:
    def test_destage_triggers_at_threshold(self, sim):
        # 8MB log, threshold 0.8 -> 6.4MB: 103 writes of 64K cross it.
        # The live (post-drain) metrics object sees the completed cycle.
        controller = build(sim)
        run_trace(controller, write_burst(110, gap=0.02))
        assert controller.metrics.destage_cycles >= 1
        assert controller.metrics.cycles[0].complete
        assert controller.dirty_units_total() == 0

    def test_no_destage_below_threshold(self, sim):
        controller = build(sim)
        from repro.core.base import run_trace as rt

        metrics = rt(controller, write_burst(10), drain=False)
        assert metrics.destage_cycles == 0

    def test_mirror_spin_cycle_per_destage(self, sim):
        controller = build(sim)
        metrics = run_trace(controller, write_burst(110, gap=0.02))
        cycles = metrics.destage_cycles
        # Every destage spins both mirrors up; they spin down afterwards.
        assert metrics.spin_up_count >= 2 * cycles

    def test_log_space_reclaimed_after_destage(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(110, gap=0.02))
        assert controller.log_region.used == 0

    def test_destaged_bytes_match_dirty_volume(self, sim):
        controller = build(sim)
        # Distinct units, no overwrites: destaged == written (after drain).
        run_trace(controller, write_burst(110, gap=0.02))
        assert controller.metrics.destaged_bytes == 110 * 64 * KB

    def test_overwrites_destage_once(self, sim):
        controller = build(sim)
        # 110 writes, all to the same unit: one destage at the threshold
        # crossing plus at most one more for re-dirtying writes after it.
        run_trace(controller, write_burst(110, gap=0.02, stride=0))
        assert 64 * KB <= controller.metrics.destaged_bytes <= 2 * 64 * KB

    def test_logging_continues_during_destage(self, sim):
        """Writes arriving mid-destage keep logging into the headroom."""
        controller = build(sim)
        metrics = run_trace(controller, write_burst(120, gap=0.001))
        # All writes were logged (none forced in place): logged bytes
        # equals the full volume.
        assert metrics.logged_bytes == 120 * 64 * KB
        assert controller.dirty_units_total() == 0

    def test_drain_flushes_remaining(self, sim):
        controller = build(sim)
        metrics = run_trace(controller, write_burst(10))
        assert controller.dirty_units_total() == 0
        controller.assert_consistent()


class TestFallback:
    def test_in_place_when_log_cannot_fit(self, sim):
        # Tiny log: a single 512K write exceeds it.
        controller = build(
            sim, graid_log_capacity_bytes=256 * KB
        )
        run_trace(controller, make_trace([(0.0, "w", 0, 512 * KB)]))
        # Second copies went in place to the mirrors.
        assert controller.mirrors[0].ops_completed > 0
        assert controller.log_disk.ops_completed == 0
        controller.assert_consistent()
