"""Property-style invariant sweeps for log-space management and rotation.

Seeded ``random.Random`` drives long randomized operation sequences (the
repo's tests deliberately avoid a property-testing dependency so sweeps
replay bit-identically from the seed alone).  Invariants under test:

* allocations handed out by :class:`RegionAllocator` / :class:`LogRegion`
  never overlap outstanding live extents;
* ``reclaim(pair, before_epoch)`` frees exactly the already-destaged
  (earlier-epoch) extents of that pair and nothing else;
* :class:`RotationPolicy` visits candidates in one fixed round-robin
  permutation, regardless of occupancy history;
* the runtime :class:`~repro.verify.InvariantChecker` holds across every
  scheme under clean, single-failure, and slowdown runs — and observing
  the run leaves its metrics byte-identical.
"""

import json
import random

import pytest

from repro.core.logspace import LogRegion, LogSpaceError, RegionAllocator
from repro.core.rotation import RotationPolicy

KB = 1024


def overlaps(a_off, a_len, b_off, b_len):
    return a_off < b_off + b_len and b_off < a_off + a_len


def assert_disjoint(intervals):
    ordered = sorted(intervals)
    for (a_off, a_len), (b_off, b_len) in zip(ordered, ordered[1:]):
        assert a_off + a_len <= b_off, (
            f"overlapping extents ({a_off},{a_len}) / ({b_off},{b_len})"
        )


class TestRegionAllocatorSweep:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_alloc_free_never_overlaps(self, seed):
        rng = random.Random(2000 + seed)
        allocator = RegionAllocator(256 * KB)
        live = {}  # offset -> nbytes
        for _ in range(400):
            if live and rng.random() < 0.45:
                offset = rng.choice(list(live))
                allocator.free(offset, live.pop(offset))
            else:
                nbytes = rng.choice((1, 2, 3, 4, 8, 16)) * KB
                try:
                    offset = allocator.allocate(nbytes)
                except LogSpaceError:
                    assert allocator.largest_free_extent < nbytes
                    continue
                assert 0 <= offset <= allocator.total - nbytes
                for other_off, other_len in live.items():
                    assert not overlaps(offset, nbytes, other_off, other_len)
                live[offset] = nbytes
            allocator.check_invariants()
            assert allocator.allocated == sum(live.values())
        # Draining every allocation coalesces back to one free run.
        for offset, nbytes in live.items():
            allocator.free(offset, nbytes)
        allocator.check_invariants()
        assert allocator.fragments == 1
        assert allocator.free_bytes == allocator.total

    def test_double_free_rejected(self):
        allocator = RegionAllocator(64 * KB)
        offset = allocator.allocate(4 * KB)
        allocator.free(offset, 4 * KB)
        with pytest.raises(LogSpaceError):
            allocator.free(offset, 4 * KB)

    def test_fragmented_space_does_not_satisfy_contiguous_alloc(self):
        allocator = RegionAllocator(12 * KB)
        offsets = [allocator.allocate(4 * KB) for _ in range(3)]
        allocator.free(offsets[0], 4 * KB)
        allocator.free(offsets[2], 4 * KB)
        assert allocator.free_bytes == 8 * KB
        with pytest.raises(LogSpaceError):
            allocator.allocate(8 * KB)  # only two 4K fragments remain


class TestLogRegionSweep:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_append_reclaim_cache_sequences(self, seed):
        rng = random.Random(3000 + seed)
        region = LogRegion("M0", base_offset=1024 * KB, capacity=512 * KB)
        n_pairs = 4
        epoch = 0
        # Mirror of region._live: (pair, epoch) -> [(abs_offset, nbytes)].
        model = {}
        cache = {}  # abs_offset -> nbytes
        for _ in range(400):
            roll = rng.random()
            if roll < 0.45:
                # Append on behalf of 1-2 pairs.
                pairs = rng.sample(range(n_pairs), rng.randint(1, 2))
                shares = {p: rng.choice((1, 2, 4)) * KB for p in pairs}
                nbytes = sum(shares.values())
                if not region.fits(nbytes):
                    with pytest.raises(LogSpaceError):
                        region.append(nbytes, shares, epoch)
                else:
                    cursor = region.append(nbytes, shares, epoch)
                    for pair, share in shares.items():
                        model.setdefault((pair, epoch), []).append(
                            (cursor, share)
                        )
                        cursor += share
            elif roll < 0.65:
                epoch += 1
                # Destage boundary: reclaim one pair's earlier epochs.
                pair = rng.randrange(n_pairs)
                expected = sum(
                    nbytes
                    for (p, e), chunks in model.items()
                    if p == pair and e < epoch
                    for _, nbytes in chunks
                )
                freed = region.reclaim(pair, before_epoch=epoch)
                assert freed == expected
                model = {
                    key: chunks
                    for key, chunks in model.items()
                    if not (key[0] == pair and key[1] < epoch)
                }
                assert region.live_bytes(pair) == 0
            elif roll < 0.85 and region.fits(8 * KB):
                offset = region.charge_cache(8 * KB)
                cache[offset] = 8 * KB
            elif cache:
                offset = rng.choice(list(cache))
                region.release_cache(offset, cache.pop(offset))
            region.check_invariants()
            live = [
                chunk for chunks in model.values() for chunk in chunks
            ]
            rel_cache = [
                (off - region.base_offset, n) for off, n in cache.items()
            ]
            rel_live = [
                (off - region.base_offset, n) for off, n in live
            ]
            assert_disjoint(rel_live + rel_cache)
            assert region.used == sum(n for _, n in live) + sum(
                cache.values()
            )
            for pair in range(n_pairs):
                assert region.live_bytes(pair) == sum(
                    nbytes
                    for (p, _), chunks in model.items()
                    if p == pair
                    for _, nbytes in chunks
                )
        # Full truncation releases everything, including cache charges.
        freed = region.reset()
        assert freed == sum(
            n for chunks in model.values() for _, n in chunks
        ) + sum(cache.values())
        assert region.used == 0
        assert region.cache_used == 0
        assert region.occupancy == 0.0
        region.check_invariants()

    def test_reclaim_spares_current_epoch(self):
        region = LogRegion("M1", base_offset=0, capacity=64 * KB)
        region.append(4 * KB, {0: 4 * KB}, epoch=0)
        region.append(4 * KB, {0: 4 * KB}, epoch=1)
        assert region.reclaim(0, before_epoch=1) == 4 * KB
        # The epoch-1 copy is the only remaining (live) one.
        assert region.live_bytes(0) == 4 * KB
        assert region.reclaim(0, before_epoch=1) == 0

    def test_reclaim_ignores_other_pairs(self):
        region = LogRegion("M1", base_offset=0, capacity=64 * KB)
        region.append(4 * KB, {0: 4 * KB}, epoch=0)
        region.append(8 * KB, {1: 8 * KB}, epoch=0)
        assert region.reclaim(0, before_epoch=5) == 4 * KB
        assert region.live_bytes(1) == 8 * KB


class TestRotationPolicySweep:
    @pytest.mark.parametrize("seed", range(5))
    def test_rotation_order_is_fixed_permutation(self, seed):
        rng = random.Random(4000 + seed)
        n = rng.randint(2, 8)
        policy = RotationPolicy(n, threshold=0.9, occupancy=lambda i: 0.0)
        current = rng.randrange(n)
        visited = []
        for _ in range(3 * n):
            nxt = policy.next_logger(current)
            assert nxt == (current + 1) % n  # fixed round-robin order
            visited.append(nxt)
            current = nxt
        # Every candidate is visited equally often: a true permutation
        # cycle, not a subset.
        assert {visited.count(i) for i in range(n)} == {3}
        assert policy.rotations == 3 * n

    @pytest.mark.parametrize("seed", range(5))
    def test_exclusions_and_threshold_respected(self, seed):
        rng = random.Random(5000 + seed)
        n = rng.randint(3, 8)
        occupancy = {i: rng.random() for i in range(n)}
        threshold = 0.5
        policy = RotationPolicy(
            n, threshold=threshold, occupancy=lambda i: occupancy[i]
        )
        for _ in range(50):
            current = rng.randrange(n)
            excluded = set(
                rng.sample(range(n), rng.randint(0, n - 1))
            )
            choice = policy.peek_next(current, excluded)
            eligible = [
                (current + step) % n
                for step in range(1, n)
                if (current + step) % n not in excluded
                and occupancy[(current + step) % n] < threshold
            ]
            assert choice == (eligible[0] if eligible else None)
            # Re-randomize occupancies between probes.
            occupancy = {i: rng.random() for i in range(n)}

    def test_peek_does_not_commit(self):
        policy = RotationPolicy(4, threshold=0.9, occupancy=lambda i: 0.0)
        assert policy.peek_next(0) == 1
        assert policy.rotations == 0
        assert policy.next_logger(0) == 1
        assert policy.rotations == 1

    def test_all_saturated_returns_none(self):
        policy = RotationPolicy(4, threshold=0.5, occupancy=lambda i: 0.9)
        assert policy.next_logger(0) is None
        assert policy.rotations == 0


class TestRuntimeInvariantChecker:
    """The PR's runtime checker over whole scheme runs.

    Every scheme is swept under clean, single-failure, and slowdown
    conditions with the checker chained onto the engine event hook; zero
    violations must be reported, and the checked run's metrics snapshot
    must be byte-identical to an unchecked run of the same scenario.
    """

    SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")
    CONDITIONS = {
        "clean": "",
        "single-failure": "fail@5:M0",
        "slowdown": "slow@2:P0:4x6",
    }

    @staticmethod
    def _run(scheme, fault_spec, checker=None):
        from repro.faults.injector import run_faulted
        from repro.faults.schedule import FaultSchedule
        from repro.verify import Scenario
        from repro.traces.compiled import truncate_trace

        scenario = Scenario(
            scheme=scheme,
            workload="web_1",
            scale=0.02,
            n_pairs=2,
            seed=8,
            n_requests=120,
            fault_spec=fault_spec,
        )
        trace = truncate_trace(scenario.build_trace(), scenario.n_requests)
        return run_faulted(
            scheme,
            scenario.resolve_config(),
            trace,
            scenario.schedule(),
            checker=checker,
        )

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize(
        "condition", sorted(CONDITIONS), ids=sorted(CONDITIONS)
    )
    def test_zero_violations_and_byte_identity(self, scheme, condition):
        from repro.verify import InvariantChecker

        checker = InvariantChecker()
        checked = self._run(scheme, self.CONDITIONS[condition], checker)
        assert checker.violations == []
        assert checker.checks_run > 0

        plain = self._run(scheme, self.CONDITIONS[condition])
        assert json.dumps(
            plain.metrics.to_dict(), sort_keys=True
        ) == json.dumps(checked.metrics.to_dict(), sort_keys=True)

    def test_checker_restores_previous_event_hook(self, sim):
        from repro.core import build_controller
        from repro.verify import InvariantChecker

        from tests.conftest import small_config

        controller = build_controller("rolo-p", sim, small_config())
        seen = []
        hook = seen.append
        sim.set_event_hook(hook)
        checker = InvariantChecker()
        checker.install(sim, controller)
        sim.schedule(0.0, lambda: None, label="tick")
        sim.run()
        checker.uninstall()
        assert sim.event_hook is hook
        assert seen  # the chained previous hook kept firing

    def test_checker_rejects_double_install(self, sim):
        from repro.core import build_controller
        from repro.verify import InvariantChecker

        from tests.conftest import small_config

        controller = build_controller("rolo-p", sim, small_config())
        checker = InvariantChecker()
        checker.install(sim, controller)
        with pytest.raises(RuntimeError):
            checker.install(sim, controller)
        checker.uninstall()

    def test_detects_planted_power_illegality(self, sim):
        from repro.core import build_controller
        from repro.disk.power import PowerState
        from repro.verify import InvariantChecker

        from tests.conftest import small_config

        controller = build_controller("raid10", sim, small_config())
        checker = InvariantChecker()
        checker.install(sim, controller)
        # Force a disk into STANDBY while faking an op in service.
        victim = controller.primaries[0]
        victim.power.transition(sim.now, PowerState.STANDBY)
        victim._in_service = object()
        checker.uninstall()  # final sweep observes the illegal state
        assert any(
            v["check"] == "power-legality" for v in checker.violations
        )
