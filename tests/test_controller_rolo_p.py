"""Unit tests for RoLo-P (rotated logging, decentralized destaging)."""

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import RoloPController, run_trace
from repro.core.base import run_trace as run_trace_base
from repro.disk.power import PowerState
from repro.sim import Simulator

KB = 1024
MB = 1024 * KB


def build(sim, **overrides):
    return RoloPController(sim, small_config(**overrides))


class TestWritePath:
    def test_two_copies_primary_plus_log(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(1))
        assert controller.primaries[0].foreground_ops == 1
        assert controller.mirrors[0].foreground_ops == 1  # on-duty logger

    def test_off_duty_mirror_untouched_and_asleep(self, sim):
        controller = build(sim)
        metrics = run_trace_base(controller, write_burst(5), drain=False)
        assert controller.mirrors[1].foreground_ops == 0
        assert controller.mirrors[1].state is PowerState.STANDBY

    def test_log_append_covers_whole_request(self, sim):
        """A striped write is one sequential append on the logger."""
        controller = build(sim)
        run_trace(controller, make_trace([(0.0, "w", 0, 128 * KB)]))
        # 128K spans both pairs in place, but the log side is ONE append.
        assert controller.mirrors[0].foreground_ops == 1
        assert controller.primaries[0].foreground_ops == 1
        assert controller.primaries[1].foreground_ops == 1

    def test_dirty_units_tracked_until_drain(self, sim):
        controller = build(sim)
        metrics = run_trace_base(controller, write_burst(4), drain=False)
        assert controller.dirty_units_total() == 4
        controller.drain()
        sim.run()
        assert controller.dirty_units_total() == 0

    def test_log_occupancy_grows(self, sim):
        controller = build(sim)
        run_trace_base(controller, write_burst(4), drain=False)
        assert controller.mirror_logs[0].used == 4 * 64 * KB

    def test_reads_from_primaries(self, sim):
        controller = build(sim)
        run_trace(controller, make_trace([(0.0, "r", 0, 64 * KB)]))
        assert controller.primaries[0].foreground_ops == 1
        assert controller.mirrors[0].foreground_ops == 0


class TestRotation:
    def test_rotation_at_threshold(self, sim):
        # 4MB log region, threshold 0.8 -> 3.2MB = 52 writes of 64K.
        controller = build(sim)
        run_trace(controller, write_burst(55, gap=0.05))
        assert controller.metrics.rotations >= 1

    def test_rotation_switches_on_duty_logger(self, sim):
        controller = build(sim)
        run_trace_base(controller, write_burst(55, gap=0.05), drain=False)
        assert controller._on_duty == [1]

    def test_destage_after_rotation_cleans_new_pair(self, sim):
        controller = build(sim)
        # Enough writes to rotate; then give the destage idle time.
        run_trace(controller, write_burst(55, gap=0.05))
        assert controller.dirty_units_total() == 0
        for region in controller.mirror_logs:
            region.check_invariants()

    def test_stale_space_reclaimed_after_destage(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(55, gap=0.05))
        # Post-drain everything is clean: no live log bytes anywhere.
        assert all(
            region.live_bytes(p) == 0
            for region in controller.mirror_logs
            for p in range(2)
        )

    def test_spin_counts_much_lower_than_mirror_count_times_cycles(
        self, sim
    ):
        """RoLo's key reliability property: rotation wakes ONE disk."""
        controller = build(sim)
        run_trace_base(
            controller, write_burst(55, gap=0.05), drain=False
        )
        # One rotation: at most prewake + old-logger sleep transitions.
        assert controller.metrics.rotations >= 1
        total_spins = sum(
            d.power.spin_cycle_count for d in controller.all_disks()
        )
        assert total_spins <= 3 * controller.metrics.rotations + 2

    def test_primaries_never_spin_down(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(60, gap=0.05))
        for primary in controller.primaries:
            assert primary.power.spin_down_count == 0


class TestDeactivation:
    def test_deactivates_when_all_loggers_full(self, sim):
        # Tiny regions and writes too fast for reclamation to keep up.
        controller = build(sim, free_space_bytes=1 * MB)
        trace = write_burst(80, gap=0.001)
        run_trace(controller, trace)
        assert controller.metrics.deactivations >= 1
        controller.assert_consistent()

    def test_writes_complete_even_when_deactivated(self, sim):
        controller = build(sim, free_space_bytes=1 * MB)
        metrics = run_trace(controller, write_burst(80, gap=0.001))
        assert metrics.requests == 80


class TestEnergy:
    def test_saves_energy_versus_raid10_floor(self, sim):
        """Off-duty mirror sleeps: power below the 4-disk idle floor."""
        controller = build(sim)
        metrics = run_trace_base(
            controller, write_burst(40, gap=1.0), drain=False
        )
        assert metrics.mean_power_w < 4 * 10.2
