"""Unit tests for the trace substrate."""

import math

import pytest

from repro.raid.request import RequestKind
from repro.traces import (
    Burstiness,
    PAPER_WORKLOADS,
    SyntheticTraceConfig,
    Trace,
    TraceRecord,
    build_workload_trace,
    characterize,
    generate_trace,
)
from repro.traces.msr import MsrFormatError, load_msr_trace, save_msr_trace
from repro.traces.synthetic import ALIGNMENT

KB = 1024
MB = 1024 * KB


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, RequestKind.READ, 0, 10)
        with pytest.raises(ValueError):
            TraceRecord(0, RequestKind.READ, -1, 10)
        with pytest.raises(ValueError):
            TraceRecord(0, RequestKind.READ, 0, 0)

    def test_equality_and_hash(self):
        a = TraceRecord(1.0, RequestKind.WRITE, 0, 10)
        b = TraceRecord(1.0, RequestKind.WRITE, 0, 10)
        c = TraceRecord(2.0, RequestKind.WRITE, 0, 10)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_is_write(self):
        assert TraceRecord(0, RequestKind.WRITE, 0, 1).is_write
        assert not TraceRecord(0, RequestKind.READ, 0, 1).is_write


class TestTrace:
    def test_ordering_enforced(self):
        records = [
            TraceRecord(2.0, RequestKind.READ, 0, 1),
            TraceRecord(1.0, RequestKind.READ, 0, 1),
        ]
        with pytest.raises(ValueError):
            Trace(records)

    def test_duration_and_footprint(self):
        trace = Trace(
            [
                TraceRecord(1.0, RequestKind.WRITE, 100, 50),
                TraceRecord(3.0, RequestKind.READ, 500, 100),
            ]
        )
        assert trace.duration == 3.0
        assert trace.footprint_bytes == 600
        assert len(trace) == 2
        assert trace[0].offset == 100

    def test_explicit_footprint_wins(self):
        trace = Trace(
            [TraceRecord(0.0, RequestKind.READ, 0, 1)],
            footprint_bytes=12345,
        )
        assert trace.footprint_bytes == 12345

    def test_empty_trace(self):
        trace = Trace([])
        assert trace.duration == 0.0
        assert trace.footprint_bytes == 0


class TestSyntheticGenerator:
    def base_config(self, **overrides):
        defaults = dict(
            duration_s=400.0,
            iops=50.0,
            write_ratio=0.8,
            avg_request_bytes=16 * KB,
            footprint_bytes=64 * MB,
            seed=1,
        )
        defaults.update(overrides)
        return SyntheticTraceConfig(**defaults)

    def test_deterministic_given_seed(self):
        a = generate_trace(self.base_config())
        b = generate_trace(self.base_config())
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b))

    def test_different_seed_differs(self):
        a = generate_trace(self.base_config())
        b = generate_trace(self.base_config(seed=2))
        assert any(x != y for x, y in zip(a, b))

    def test_iops_close_to_target(self):
        trace = generate_trace(self.base_config())
        measured = len(trace) / 400.0
        assert measured == pytest.approx(50.0, rel=0.1)

    def test_write_ratio_close_to_target(self):
        trace = generate_trace(self.base_config())
        writes = sum(1 for r in trace if r.is_write)
        assert writes / len(trace) == pytest.approx(0.8, abs=0.05)

    def test_offsets_aligned_and_in_footprint(self):
        trace = generate_trace(self.base_config())
        for record in trace:
            assert record.offset % ALIGNMENT == 0
            assert record.offset + record.nbytes <= 64 * MB

    def test_fixed_size_when_sigma_zero(self):
        trace = generate_trace(self.base_config(size_sigma=0.0))
        assert all(r.nbytes == 16 * KB for r in trace)

    def test_lognormal_mean_near_target(self):
        trace = generate_trace(
            self.base_config(size_sigma=0.6, duration_s=2000.0)
        )
        mean = sum(r.nbytes for r in trace) / len(trace)
        assert mean == pytest.approx(16 * KB, rel=0.15)

    def test_sequential_fraction_produces_runs(self):
        seq = generate_trace(
            self.base_config(write_sequential_fraction=0.9, write_ratio=1.0)
        )
        rnd = generate_trace(
            self.base_config(write_sequential_fraction=0.0, write_ratio=1.0)
        )

        def seq_count(trace):
            count = 0
            prev_end = None
            for r in trace:
                if prev_end is not None and r.offset == prev_end:
                    count += 1
                prev_end = r.offset + r.nbytes
            return count

        assert seq_count(seq) > 10 * max(1, seq_count(rnd))

    def test_bursty_arrivals_have_higher_variance(self):
        uniform = generate_trace(
            self.base_config(burstiness=Burstiness.NONE, duration_s=1000)
        )
        bursty = generate_trace(
            self.base_config(
                burstiness=Burstiness.VERY_HIGH,
                burst_cycle_s=50.0,
                duration_s=1000,
            )
        )

        def per_second_variance(trace):
            counts = {}
            for r in trace:
                counts[int(r.timestamp)] = counts.get(int(r.timestamp), 0) + 1
            values = [counts.get(s, 0) for s in range(1000)]
            mean = sum(values) / len(values)
            return sum((v - mean) ** 2 for v in values) / len(values)

        assert per_second_variance(bursty) > 3 * per_second_variance(uniform)

    def test_burstiness_preserves_mean_rate(self):
        bursty = generate_trace(
            self.base_config(
                burstiness=Burstiness.VERY_HIGH,
                burst_cycle_s=20.0,
                duration_s=2000,
            )
        )
        assert len(bursty) / 2000 == pytest.approx(50.0, rel=0.15)

    def test_read_sessions_cluster_reads(self):
        trace = generate_trace(
            self.base_config(
                write_ratio=0.9,
                read_session_fraction=0.2,
                read_session_cycle_s=100.0,
                duration_s=1000,
            )
        )
        in_session = [
            r for r in trace if math.fmod(r.timestamp, 100.0) < 20.0
        ]
        out_session = [
            r for r in trace if math.fmod(r.timestamp, 100.0) >= 20.0
        ]
        assert all(r.is_write for r in out_session)
        reads = sum(1 for r in in_session if not r.is_write)
        assert reads > 0
        # Overall read ratio is preserved.
        total_reads = sum(1 for r in trace if not r.is_write)
        assert total_reads / len(trace) == pytest.approx(0.1, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.base_config(duration_s=0)
        with pytest.raises(ValueError):
            self.base_config(write_ratio=1.5)
        with pytest.raises(ValueError):
            self.base_config(read_locality=-0.1)
        with pytest.raises(ValueError):
            self.base_config(avg_request_bytes=100)
        with pytest.raises(ValueError):
            self.base_config(footprint_bytes=KB)
        with pytest.raises(ValueError):
            self.base_config(read_session_fraction=0.0)
        with pytest.raises(ValueError):
            # Sessions narrower than the read ratio can't carry the reads.
            self.base_config(write_ratio=0.2, read_session_fraction=0.5)


class TestWorkloadPresets:
    def test_all_seven_traces_present(self):
        assert set(PAPER_WORKLOADS) == {
            "src2_2",
            "proj_0",
            "mds_0",
            "wdev_0",
            "web_1",
            "rsrch_2",
            "hm_1",
        }

    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_replica_matches_published_characteristics(self, name):
        """Table III / VI calibration check at small scale."""
        preset = PAPER_WORKLOADS[name]
        scale = 0.05 if preset.iops > 10 else 0.2
        trace = build_workload_trace(name, scale=scale)
        stats = characterize(
            trace, duration_s=preset.full_duration_s * scale
        )
        assert stats.write_ratio == pytest.approx(
            preset.write_ratio, abs=0.05
        )
        assert stats.iops == pytest.approx(preset.iops, rel=0.15)
        assert stats.avg_request_bytes == pytest.approx(
            preset.avg_request_bytes, rel=0.2
        )
        expected_volume = preset.write_capacity_bytes * scale
        assert stats.write_capacity_bytes == pytest.approx(
            expected_volume, rel=0.25
        )

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build_workload_trace("nope")

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            PAPER_WORKLOADS["src2_2"].to_config(scale=0)

    def test_full_duration_consistent(self):
        preset = PAPER_WORKLOADS["src2_2"]
        rate = preset.iops * preset.write_ratio * preset.avg_request_bytes
        assert preset.full_duration_s == pytest.approx(
            preset.write_capacity_bytes / rate
        )


class TestMsrFormat:
    def test_round_trip(self, tmp_path):
        trace = build_workload_trace("wdev_0", scale=0.01)
        path = tmp_path / "trace.csv"
        save_msr_trace(trace, path)
        loaded = load_msr_trace(path)
        assert len(loaded) == len(trace)
        base = trace[0].timestamp  # loader normalizes to first arrival
        for a, b in zip(trace, loaded):
            assert a.kind == b.kind
            assert a.offset == b.offset
            assert a.nbytes == b.nbytes
            assert a.timestamp - base == pytest.approx(
                b.timestamp, abs=1e-6
            )

    def test_bad_type_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("128166372003061629,host,0,Erase,0,4096,100\n")
        with pytest.raises(MsrFormatError):
            load_msr_trace(path)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,host,0\n")
        with pytest.raises(MsrFormatError):
            load_msr_trace(path)

    def test_disk_filter(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "0,h,0,Write,0,4096,0\n"
            "10000000,h,1,Write,4096,4096,0\n"
            "20000000,h,0,Read,8192,4096,0\n"
        )
        loaded = load_msr_trace(path, disk_number=0)
        assert len(loaded) == 2
        assert loaded[1].kind is RequestKind.READ

    def test_max_records(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "\n".join(f"{i * 10_000_000},h,0,Write,{i * 4096},4096,0" for i in range(10))
        )
        loaded = load_msr_trace(path, max_records=3)
        assert len(loaded) == 3

    def test_comments_and_zero_size_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "# header\n"
            "0,h,0,Write,0,4096,0\n"
            "10000000,h,0,Write,0,0,0\n"
        )
        loaded = load_msr_trace(path)
        assert len(loaded) == 1

    def test_timestamps_normalized_to_zero(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "128166372003061629,h,0,Write,0,4096,0\n"
            "128166372013061629,h,0,Write,0,4096,0\n"
        )
        loaded = load_msr_trace(path)
        assert loaded[0].timestamp == 0.0
        assert loaded[1].timestamp == pytest.approx(1.0)


class TestCharacterize:
    def test_counts(self):
        trace = Trace(
            [
                TraceRecord(0.0, RequestKind.WRITE, 0, 10 * KB),
                TraceRecord(5.0, RequestKind.READ, 0, 30 * KB),
                TraceRecord(10.0, RequestKind.WRITE, 50 * KB, 20 * KB),
            ]
        )
        stats = characterize(trace)
        assert stats.records == 3
        assert stats.write_ratio == pytest.approx(2 / 3)
        assert stats.iops == pytest.approx(0.3)
        assert stats.write_capacity_bytes == 30 * KB
        assert stats.read_capacity_bytes == 30 * KB
        assert stats.avg_request_bytes == pytest.approx(20 * KB)
        assert stats.footprint_bytes == 70 * KB

    def test_row_renders(self):
        trace = Trace([TraceRecord(0.0, RequestKind.WRITE, 0, KB)])
        assert "write" in characterize(trace, duration_s=1.0).row()
