"""Tests for the observability layer: tracer, exporters, sampler, profiler.

The acceptance pillar is at the bottom: a traced + sampled + profiled
RoLo run must emit power-state spans for every disk and at least one
rotation and destage event, while its RunMetrics stay byte-identical to
an untraced run of the same cell.
"""

import json

import pytest

from repro.core import ArrayConfig, build_controller
from repro.experiments.runner import (
    Cell,
    run_cell_observed,
    workload_cell,
)
from repro.obs import (
    NULL_TRACER,
    REQUEST_TRACK,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
    normalize,
    read_events,
    summarize_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profiler import (
    CellProfile,
    ProfileReport,
    RunProfile,
    SimulatorProbe,
)
from repro.obs.sampler import TimeSeriesSampler
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Tracer contract
# ----------------------------------------------------------------------
class TestNullTracer:
    def test_falsy_and_normalized_away(self):
        assert not NULL_TRACER
        assert normalize(NULL_TRACER) is None
        assert normalize(None) is None
        assert not NULL_TRACER.enabled

    def test_recording_tracer_is_truthy(self):
        tracer = RecordingTracer()
        assert tracer
        assert normalize(tracer) is tracer

    def test_base_hooks_are_noops(self):
        tracer = Tracer()
        tracer.request_arrived(0, "write", 0, 512, 0.0)
        tracer.request_completed(0, 1.0)
        tracer.power_state("P0", None, "idle", 0.0)
        tracer.instant("rotation", "hand-off", "RoLo-P", 1.0)
        tracer.finish(2.0)


class TestRecordingTracer:
    def test_pairs_request_edges_into_spans(self):
        tracer = RecordingTracer()
        tracer.request_arrived(7, "write", 4096, 8192, 1.0)
        tracer.request_completed(7, 1.5)
        (event,) = tracer.events
        assert event.kind == "span"
        assert event.category == "request"
        assert event.track == REQUEST_TRACK
        assert event.ts == 1.0
        assert event.dur == 0.5
        assert event.attrs["rid"] == 7
        assert event.attrs["nbytes"] == 8192

    def test_unmatched_completion_ignored(self):
        tracer = RecordingTracer()
        tracer.request_completed(99, 1.0)
        assert tracer.events == []

    def test_pairs_power_edges_and_finish_closes(self):
        tracer = RecordingTracer()
        tracer.power_state("P0", None, "idle", 0.0)
        tracer.power_state("P0", "idle", "active", 3.0)
        tracer.finish(10.0)
        spans = [e for e in tracer.events if e.category == "power"]
        assert [(e.name, e.ts, e.dur) for e in spans] == [
            ("idle", 0.0, 3.0),
            ("active", 3.0, 7.0),
        ]

    def test_finish_idempotent(self):
        tracer = RecordingTracer()
        tracer.power_state("P0", None, "idle", 0.0)
        tracer.finish(5.0)
        tracer.finish(9.0)
        assert len(tracer.events) == 1

    def test_counts_by_category(self):
        tracer = RecordingTracer()
        tracer.instant("rotation", "hand-off", "t", 1.0)
        tracer.instant("rotation", "hand-off", "t", 2.0)
        tracer.counter("occupancy:x", "t", 1.0, 0.5)
        assert tracer.counts == {"rotation": 2, "counter": 1}

    def test_sorted_events_stable(self):
        tracer = RecordingTracer()
        tracer.instant("b", "x", "t2", 1.0)
        tracer.instant("a", "x", "t1", 1.0)
        tracer.instant("a", "x", "t1", 0.5)
        ordered = tracer.sorted_events()
        assert [(e.ts, e.track) for e in ordered] == [
            (0.5, "t1"),
            (1.0, "t1"),
            (1.0, "t2"),
        ]


class TestTraceEvent:
    def test_dict_round_trip(self):
        event = TraceEvent(
            ts=1.25,
            kind="span",
            category="disk_op",
            name="write:foreground",
            track="P0",
            dur=0.004,
            attrs={"sector": 42, "nbytes": 512},
        )
        assert TraceEvent.from_dict(event.to_dict()) == event


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_events():
    return [
        TraceEvent(0.0, "span", "power", "idle", "P0", dur=2.0),
        TraceEvent(0.5, "span", "request", "write", REQUEST_TRACK, dur=0.1,
                   attrs={"rid": 0, "offset": 0, "nbytes": 512}),
        TraceEvent(1.0, "instant", "rotation", "hand-off", "RoLo-P",
                   attrs={"slot": 0}),
        TraceEvent(1.5, "counter", "counter", "occupancy:m-log-0", "RoLo-P",
                   attrs={"value": 0.25}),
    ]


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        events = _sample_events()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(events, path) == len(events)
        # read_events streams lazily; materialize to compare.
        assert list(read_events(path)) == events

    def test_chrome_round_trip(self, tmp_path):
        events = _sample_events()
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(events, path) == len(events)
        loaded = list(read_events(path))
        assert [(e.kind, e.category, e.name, e.track) for e in loaded] == [
            (e.kind, e.category, e.name, e.track) for e in events
        ]
        for got, want in zip(loaded, events):
            assert got.ts == pytest.approx(want.ts)
            assert got.dur == pytest.approx(want.dur)

    def test_chrome_document_shape(self):
        doc = to_chrome_trace(_sample_events())
        assert json.loads(json.dumps(doc)) == doc  # JSON-serializable
        records = doc["traceEvents"]
        metadata = [r for r in records if r["ph"] == "M"]
        names = {
            int(r["tid"]): r["args"]["name"]
            for r in metadata
            if r["name"] == "thread_name"
        }
        # requests is always tid 0; other tracks sorted alphabetically.
        assert names[0] == REQUEST_TRACK
        assert set(names.values()) == {REQUEST_TRACK, "P0", "RoLo-P"}
        phases = {r["ph"] for r in records if r["ph"] != "M"}
        assert phases == {"X", "i", "C"}
        # Timestamps are microseconds.
        spans = [r for r in records if r["ph"] == "X"]
        assert spans[0]["ts"] == 0.0
        assert spans[0]["dur"] == pytest.approx(2e6)

    def test_summarize_mentions_key_sections(self):
        text = summarize_events(_sample_events())
        assert "events by category" in text
        assert "power-state residency" in text
        assert "rotation:hand-off" in text


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
class TestSampler:
    def _build(self, interval=1.0):
        sim = Simulator()
        config = ArrayConfig(n_pairs=2).scaled(0.01)
        controller = build_controller("raid10", sim, config)
        return sim, controller, TimeSeriesSampler(sim, controller, interval)

    def test_rejects_bad_interval(self):
        sim, controller, _ = self._build()
        with pytest.raises(ValueError):
            TimeSeriesSampler(sim, controller, 0.0)

    def test_never_samples_past_last_foreign_event(self):
        sim, controller, sampler = self._build(interval=1.0)
        sim.schedule(3.5, lambda: None)
        sampler.start()
        sim.run()
        # Last foreign event at 3.5: no sample is recorded after it.  The
        # already-armed tick at 4.0 still drains (advancing the clock by
        # at most one interval) but records nothing and does not re-arm.
        assert [s.ts for s in sampler.samples] == [0.0, 1.0, 2.0, 3.0]
        assert sim.now == 4.0
        assert sim.peek() is None

    def test_observe_fields(self):
        sim, controller, sampler = self._build()
        sample = sampler.observe()
        assert sample.ts == 0.0
        assert sample.queue_depth == 0
        assert set(sample.power_w) == set(controller.disks_by_role())
        assert sample.log_occupancy_mean == 0.0

    def test_csv_and_jsonl_outputs(self, tmp_path):
        sim, controller, sampler = self._build()
        sim.schedule(2.0, lambda: None)
        sampler.start()
        sim.run()
        csv_path = tmp_path / "samples.csv"
        jsonl_path = tmp_path / "samples.jsonl"
        n = sampler.to_csv(str(csv_path))
        assert sampler.to_jsonl(str(jsonl_path)) == n
        lines = csv_path.read_text().splitlines()
        assert len(lines) == n + 1
        assert lines[0].startswith("ts,queue_depth,in_service,spun_up")
        first = json.loads(jsonl_path.read_text().splitlines()[0])
        assert first["ts"] == 0.0

    def test_summary_text(self):
        sim, controller, sampler = self._build()
        assert sampler.summary() == "samples: none collected"
        sampler.samples.append(sampler.observe())
        assert "peak_queue=" in sampler.summary()


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_probe_counts_labels(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None, label="a")
        sim.schedule(2.0, lambda: None, label="a")
        sim.schedule(3.0, lambda: None)
        with SimulatorProbe(sim) as probe:
            sim.run()
        profile = probe.profile
        assert profile.events == 3
        assert profile.sim_time_s == 3.0
        assert profile.label_counts == {"a": 2, "(unlabeled)": 1}
        assert profile.wall_s >= 0.0
        assert "events=" in profile.report()
        # The hook is removed on exit.
        assert sim._event_hook is None

    def test_cell_profile_round_trip(self):
        profile = CellProfile(
            label="rolo-p x src2_2", wall_s=1.5, events=3000,
            sim_time_s=60.0,
        )
        clone = CellProfile.from_dict(profile.to_dict())
        assert clone == profile
        assert clone.events_per_s == pytest.approx(2000.0)

    def test_report_render_sorts_and_totals(self):
        report = ProfileReport()
        report.add(CellProfile(label="b", wall_s=1.0, events=100,
                               sim_time_s=1.0))
        report.add(CellProfile(label="a", source="cached"))
        report.finalize()
        text = report.render()
        assert text.index("b") < text.index("a  ") or "cached" in text
        assert "total:" in text
        assert "1 computed / 1 cached" in text


# ----------------------------------------------------------------------
# Acceptance: traced RoLo run
# ----------------------------------------------------------------------
#: Small log space so the scaled-down run still rotates and destages.
_ACCEPT_CELL = dict(
    scheme="rolo-p",
    workload="rsrch_2",
    scale=0.02,
    n_pairs=2,
    seed=42,
    free_space_bytes=2 * 2**20,
)


@pytest.fixture(scope="module")
def observed_rolo_run():
    cell = workload_cell(**_ACCEPT_CELL)
    return run_cell_observed(
        cell, trace_events=True, sample_interval=2.0, profile=True
    )


class TestObservedRoloRun:
    def test_metrics_byte_identical_to_untraced(self, observed_rolo_run):
        untraced = workload_cell(**_ACCEPT_CELL).execute()
        traced = observed_rolo_run.metrics
        assert json.dumps(traced.to_dict(), sort_keys=True) == json.dumps(
            untraced.to_dict(), sort_keys=True
        )

    def test_power_spans_for_every_disk(self, observed_rolo_run):
        tracer = observed_rolo_run.tracer
        power_tracks = {
            e.track
            for e in tracer.events
            if e.category == "power" and e.kind == "span"
        }
        assert power_tracks == {"P0", "P1", "M0", "M1"}

    def test_rotation_and_destage_events_present(self, observed_rolo_run):
        counts = observed_rolo_run.tracer.counts
        assert counts.get("rotation", 0) >= 1
        assert counts.get("destage", 0) >= 1
        assert observed_rolo_run.metrics.rotations >= 1

    def test_request_spans_match_request_count(self, observed_rolo_run):
        tracer = observed_rolo_run.tracer
        requests = [e for e in tracer.events if e.category == "request"]
        assert len(requests) == observed_rolo_run.metrics.requests
        assert all(e.dur >= 0 for e in requests)

    def test_occupancy_counters_emitted(self, observed_rolo_run):
        counters = [
            e
            for e in observed_rolo_run.tracer.events
            if e.kind == "counter" and e.name.startswith("occupancy:")
        ]
        assert counters
        assert all(0.0 <= e.attrs["value"] <= 1.0 for e in counters)

    def test_sampler_collected_and_power_positive(self, observed_rolo_run):
        samples = observed_rolo_run.sampler.samples
        assert len(samples) >= 2
        assert samples[0].ts == 0.0
        assert all(sum(s.power_w.values()) > 0 for s in samples)

    def test_profile_collected(self, observed_rolo_run):
        profile = observed_rolo_run.profile
        assert profile is not None
        assert profile.events > 0
        assert profile.label_counts.get("arrival", 0) > 0

    def test_chrome_export_valid_and_readable(
        self, observed_rolo_run, tmp_path
    ):
        path = str(tmp_path / "trace.json")
        events = observed_rolo_run.tracer.sorted_events()
        written = write_chrome_trace(events, path)
        assert written == len(events)
        with open(path) as fh:
            doc = json.load(fh)
        assert "traceEvents" in doc
        assert list(read_events(path))
        text = summarize_events(read_events(path))
        assert "rotation" in text

    def test_trace_determinism_across_runs(self, observed_rolo_run):
        # Same observation settings: the sampler's final drained tick sets
        # the end-of-run clock that closes the last power spans, so only
        # identically-configured runs are comparable event-for-event.
        repeat = run_cell_observed(
            workload_cell(**_ACCEPT_CELL),
            trace_events=True,
            sample_interval=2.0,
            profile=True,
        )
        first = [e.to_dict() for e in observed_rolo_run.tracer.sorted_events()]
        second = [e.to_dict() for e in repeat.tracer.sorted_events()]
        assert first == second
