"""Tests for the persistent result cache and canonical cell keys."""

import json
import os

import pytest

from repro.core import ArrayConfig
from repro.experiments import cache as result_cache
from repro.experiments import clear_cache
from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cell_hash,
    freeze,
)
from repro.experiments.runner import (
    reset_run_stats,
    run_stats,
    simulate_synthetic,
    simulate_workload,
    synthetic_cell,
    workload_cell,
)
from repro.traces.synthetic import Burstiness, SyntheticTraceConfig

MB = 1024 * 1024


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path):
    """Fresh memo + stats, and no persistent cache unless a test opts in."""
    clear_cache()
    reset_run_stats()
    result_cache.configure(enabled=False)
    yield
    result_cache.configure(enabled=False)
    clear_cache()
    reset_run_stats()


def _tiny_trace_config(**overrides):
    params = dict(
        duration_s=30.0,
        iops=20.0,
        write_ratio=1.0,
        avg_request_bytes=64 * 1024,
        footprint_bytes=16 * MB,
        name="cache-test",
        seed=7,
    )
    params.update(overrides)
    return SyntheticTraceConfig(**params)


def _tiny_array_config():
    return ArrayConfig(
        n_pairs=2,
        free_space_bytes=8 * MB,
        graid_log_capacity_bytes=16 * MB,
    )


class TestFreeze:
    def test_primitives_pass_through(self):
        assert freeze(3) == 3
        assert freeze("x") == "x"
        assert freeze(None) is None

    def test_dict_order_insensitive(self):
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})

    def test_dataclass_keys_on_fields_not_repr(self):
        a = _tiny_trace_config()
        b = _tiny_trace_config()
        assert a is not b
        assert freeze(a) == freeze(b)
        assert cell_hash(freeze(a)) == cell_hash(freeze(b))

    def test_dataclass_field_change_changes_key(self):
        a = _tiny_trace_config()
        b = _tiny_trace_config(iops=21.0)
        assert freeze(a) != freeze(b)

    def test_enum_canonicalized_by_name(self):
        a = _tiny_trace_config(burstiness=Burstiness.HIGH)
        frozen = freeze(a)
        assert ("enum", "Burstiness", "HIGH") in [
            v for _, v in frozen[2]
        ]

    def test_hash_is_stable_across_processes(self):
        # A fixed input must hash identically forever (cache portability);
        # pin the value so accidental canonicalization changes are loud.
        key = ("workload", "rolo-p", "src2_2", 0.1, 20, 42, None, ())
        assert cell_hash(key) == cell_hash(key)
        assert len(cell_hash(key)) == 64

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            freeze(object())


class TestCellKeys:
    def test_workload_cell_matches_simulate_signature(self):
        cell = workload_cell("rolo-p", "src2_2", scale=0.01, n_pairs=4)
        assert cell.scale == 0.01
        assert cell.key()[0] == "workload"

    def test_default_scale_resolved(self):
        cell = workload_cell("rolo-p", "src2_2")
        assert cell.scale == 0.10  # DEFAULT_SCALES["src2_2"]

    def test_override_order_is_canonical(self):
        a = workload_cell("rolo-p", "src2_2", stripe_unit=1, n_on_duty=1)
        b = workload_cell("rolo-p", "src2_2", n_on_duty=1, stripe_unit=1)
        assert a.key() == b.key()

    def test_synthetic_cells_with_equal_configs_share_a_key(self):
        config = _tiny_array_config()
        a = synthetic_cell("graid", _tiny_trace_config(), config)
        b = synthetic_cell("graid", _tiny_trace_config(), config)
        assert a.key() == b.key()


class TestRunMetricsRoundTrip:
    def test_exact_round_trip(self):
        metrics = simulate_synthetic(
            "graid", _tiny_trace_config(), _tiny_array_config()
        )
        clone = type(metrics).from_dict(
            json.loads(json.dumps(metrics.to_dict()))
        )
        assert clone.to_dict() == metrics.to_dict()
        assert clone.mean_response_time_ms == metrics.mean_response_time_ms
        assert clone.total_energy_j == metrics.total_energy_j
        assert clone.spin_cycle_count == metrics.spin_cycle_count
        assert clone.response_time.mean == metrics.response_time.mean
        assert clone.response_time.stdev == metrics.response_time.stdev


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultCache(str(tmp_path / "cache"))
        metrics = simulate_synthetic(
            "graid", _tiny_trace_config(), _tiny_array_config()
        )
        key = ("some", "key", 1)
        store.put(key, metrics)
        loaded = store.get(key)
        assert loaded is not None
        assert loaded.to_dict() == metrics.to_dict()

    def test_miss_returns_none(self, tmp_path):
        store = ResultCache(str(tmp_path / "cache"))
        assert store.get(("absent",)) is None
        assert store.misses == 1

    def test_warm_disk_cache_equals_cold_run(self, tmp_path):
        result_cache.configure(str(tmp_path / "cache"))
        cold = simulate_workload(
            "rolo-p", "rsrch_2", scale=0.004, n_pairs=2
        )
        assert run_stats()["computed"] == 1
        clear_cache()  # drop the in-memory memo, keep the disk entries
        warm = simulate_workload(
            "rolo-p", "rsrch_2", scale=0.004, n_pairs=2
        )
        stats = run_stats()
        assert stats["computed"] == 1  # nothing recomputed
        assert stats["disk_hits"] == 1
        assert warm.to_dict() == cold.to_dict()

    def test_stale_schema_version_is_ignored_and_recomputed(self, tmp_path):
        result_cache.configure(str(tmp_path / "cache"))
        simulate_workload("rolo-p", "rsrch_2", scale=0.004, n_pairs=2)
        assert run_stats()["computed"] == 1
        store = result_cache.active_cache()
        (entry_path,) = list(store._entries())
        with open(entry_path) as fh:
            entry = json.load(fh)
        assert entry["schema_version"] == CACHE_SCHEMA_VERSION
        entry["schema_version"] = CACHE_SCHEMA_VERSION - 1
        with open(entry_path, "w") as fh:
            json.dump(entry, fh)
        clear_cache()
        simulate_workload("rolo-p", "rsrch_2", scale=0.004, n_pairs=2)
        stats = run_stats()
        assert stats["disk_hits"] == 0
        assert stats["computed"] == 2  # stale entry forced a recompute

    def test_stale_package_version_is_ignored(self, tmp_path):
        store = ResultCache(str(tmp_path / "cache"))
        metrics = simulate_synthetic(
            "graid", _tiny_trace_config(), _tiny_array_config()
        )
        store.put(("k",), metrics)
        (entry_path,) = list(store._entries())
        entry = json.load(open(entry_path))
        entry["package_version"] = "0.0.0-stale"
        json.dump(entry, open(entry_path, "w"))
        assert store.get(("k",)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultCache(str(tmp_path / "cache"))
        metrics = simulate_synthetic(
            "graid", _tiny_trace_config(), _tiny_array_config()
        )
        store.put(("k",), metrics)
        (entry_path,) = list(store._entries())
        with open(entry_path, "w") as fh:
            fh.write("{not json")
        assert store.get(("k",)) is None

    def test_info_and_clear(self, tmp_path):
        store = ResultCache(str(tmp_path / "cache"))
        metrics = simulate_synthetic(
            "graid", _tiny_trace_config(), _tiny_array_config()
        )
        store.put(("a",), metrics)
        store.put(("b",), metrics)
        info = store.info()
        assert info["entries"] == 2
        assert info["stale_entries"] == 0
        assert info["total_bytes"] > 0
        assert store.clear() == 2
        assert store.info()["entries"] == 0
        assert not os.listdir(store.directory)


class TestSyntheticMemoKey:
    def test_equal_field_configs_hit_the_memo(self):
        """The old repr-based key; now two equal configs share one run."""
        config = _tiny_array_config()
        first = simulate_synthetic("graid", _tiny_trace_config(), config)
        second = simulate_synthetic("graid", _tiny_trace_config(), config)
        assert second is first
        assert run_stats()["computed"] == 1
