"""Tests for report rendering extras and the hotspot generator knob."""

import pytest

from repro.experiments.report import Series
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

KB = 1024
MB = 1024 * KB


class TestRenderBars:
    def test_empty_series(self):
        s = Series("s", "x", "y")
        assert "(no data)" in s.render_bars()

    def test_bars_scale_to_peak(self):
        s = Series("s", "x", "y")
        s.add("a", 10.0)
        s.add("b", 5.0)
        text = s.render_bars(width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_negative_values_use_magnitude(self):
        s = Series("s", "x", "y")
        s.add("a", -4.0)
        s.add("b", 2.0)
        text = s.render_bars(width=8)
        lines = text.splitlines()
        assert lines[1].count("#") == 8
        assert lines[2].count("#") == 4

    def test_width_validation(self):
        s = Series("s", "x", "y")
        s.add("a", 1.0)
        with pytest.raises(ValueError):
            s.render_bars(width=0)

    def test_labels_aligned(self):
        s = Series("s", "x", "y")
        s.add("long-label", 1.0)
        s.add("a", 1.0)
        lines = s.render_bars().splitlines()
        assert lines[1].index("|") == lines[2].index("|")


class TestHotspots:
    def _trace(self, fraction):
        return generate_trace(
            SyntheticTraceConfig(
                duration_s=300.0,
                iops=40.0,
                write_ratio=1.0,
                avg_request_bytes=8 * KB,
                footprint_bytes=64 * MB,
                write_sequential_fraction=0.0,
                hotspot_fraction=fraction,
                hotspot_span=0.1,
                seed=6,
            )
        )

    def test_disabled_by_default(self):
        trace = self._trace(0.0)
        hot = sum(1 for r in trace if r.offset < 64 * MB // 10)
        assert hot / len(trace) < 0.2

    def test_skew_concentrates_accesses(self):
        trace = self._trace(0.8)
        hot = sum(1 for r in trace if r.offset < 64 * MB // 10)
        assert hot / len(trace) > 0.7

    def test_offsets_still_in_bounds(self):
        for record in self._trace(0.9):
            assert record.offset + record.nbytes <= 64 * MB

    def test_validation(self):
        with pytest.raises(ValueError):
            self._config_with(hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            self._config_with(hotspot_span=0.0)

    @staticmethod
    def _config_with(**kwargs):
        return SyntheticTraceConfig(
            duration_s=10.0,
            iops=10.0,
            footprint_bytes=8 * MB,
            **kwargs,
        )
