"""Unit tests for the RAID10 baseline controller."""

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import Raid10Controller, run_trace
from repro.disk.power import PowerState
from repro.sim import Simulator

KB = 1024


def build(sim, **overrides):
    return Raid10Controller(sim, small_config(**overrides))


class TestWritePath:
    def test_write_mirrored_to_both_disks(self, sim):
        controller = build(sim)
        metrics = run_trace(controller, write_burst(1))
        assert metrics.requests == 1
        assert controller.primaries[0].ops_completed == 1
        assert controller.mirrors[0].ops_completed == 1
        assert controller.primaries[1].ops_completed == 0

    def test_write_striped_across_pairs(self, sim):
        controller = build(sim)
        run_trace(controller, make_trace([(0.0, "w", 0, 128 * KB)]))
        assert controller.primaries[0].ops_completed == 1
        assert controller.primaries[1].ops_completed == 1
        assert controller.mirrors[0].ops_completed == 1
        assert controller.mirrors[1].ops_completed == 1

    def test_mirror_receives_identical_bytes(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(10))
        assert (
            controller.primaries[0].bytes_transferred
            == controller.mirrors[0].bytes_transferred
        )

    def test_no_dirty_state(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(5))
        assert controller.dirty_units_total() == 0
        controller.assert_consistent()


class TestReadPath:
    def test_read_goes_to_one_disk_of_pair(self, sim):
        controller = build(sim)
        run_trace(controller, make_trace([(0.0, "r", 0, 64 * KB)]))
        total = (
            controller.primaries[0].ops_completed
            + controller.mirrors[0].ops_completed
        )
        assert total == 1

    def test_reads_balance_across_pair(self, sim):
        controller = build(sim)
        trace = make_trace(
            [(i * 0.0001, "r", 0, 64 * KB) for i in range(20)]
        )
        run_trace(controller, trace)
        # With queue-depth balancing both disks should serve some reads.
        assert controller.primaries[0].ops_completed > 0
        assert controller.mirrors[0].ops_completed > 0


class TestPowerPolicy:
    def test_never_spins_down(self, sim):
        controller = build(sim)
        metrics = run_trace(controller, write_burst(50, gap=0.2))
        assert metrics.spin_cycle_count == 0
        for disk in controller.all_disks():
            assert disk.state in (PowerState.IDLE, PowerState.ACTIVE)

    def test_energy_at_least_all_idle_floor(self, sim):
        controller = build(sim)
        metrics = run_trace(controller, write_burst(10))
        floor = 4 * 10.2 * metrics.duration_s
        assert metrics.total_energy_j >= floor * 0.999


class TestMetrics:
    def test_response_times_recorded(self, sim):
        controller = build(sim)
        metrics = run_trace(controller, write_burst(8))
        assert metrics.requests == 8
        assert metrics.writes == 8
        assert metrics.response_time.min > 0
        assert metrics.response_time.max < 1.0

    def test_roles(self, sim):
        controller = build(sim)
        roles = controller.disks_by_role()
        assert len(roles["primary"]) == 2
        assert len(roles["mirror"]) == 2

    def test_finalize_idempotent(self, sim):
        controller = build(sim)
        m1 = run_trace(controller, write_burst(1))
        m2 = controller.finalize()
        assert m1 is m2

    def test_duration_covers_trace(self, sim):
        controller = build(sim)
        metrics = run_trace(controller, write_burst(5, gap=1.0))
        assert metrics.duration_s >= 4.0
