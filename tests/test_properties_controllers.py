"""Property-based tests at the controller level.

Hypothesis generates small arbitrary workloads; every scheme must complete
every request, keep energy accounting closed, and end fully consistent
after the drain — regardless of the mix, sizes, or arrival pattern.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import small_config
from repro.core import SCHEMES, build_controller
from repro.core.base import run_trace
from repro.raid.request import RequestKind
from repro.sim import Simulator
from repro.traces.record import Trace, TraceRecord

KB = 1024
MB = 1024 * KB

#: Logical space that fits the small test config comfortably.
SPACE = 8 * MB


@st.composite
def workloads(draw):
    n = draw(st.integers(1, 40))
    records = []
    t = 0.0
    for _ in range(n):
        t += draw(
            st.floats(0.0005, 2.0, allow_nan=False, allow_infinity=False)
        )
        is_write = draw(st.booleans())
        offset = draw(st.integers(0, (SPACE - 256 * KB) // 512)) * 512
        nbytes = draw(st.integers(1, 512)) * 512
        records.append(
            TraceRecord(
                t,
                RequestKind.WRITE if is_write else RequestKind.READ,
                offset,
                nbytes,
            )
        )
    return Trace(records, name="hypothesis")


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
@settings(max_examples=12, deadline=None)
@given(trace=workloads())
def test_any_workload_completes_consistently(scheme, trace):
    sim = Simulator()
    controller = build_controller(scheme, sim, small_config())
    metrics = run_trace(controller, trace)
    # Every request completed, exactly once.
    assert metrics.requests == len(trace)
    assert metrics.response_time.count == len(trace)
    assert metrics.response_time.min > 0
    # After drain, mirrored state is consistent and log space is coherent.
    controller.assert_consistent()
    for region in (
        getattr(controller, "mirror_logs", [])
        + getattr(controller, "primary_logs", [])
    ):
        region.check_invariants()
    log_region = getattr(controller, "log_region", None)
    if log_region is not None:
        log_region.check_invariants()
    # Energy accounting is non-negative and closed.
    for disk in controller.all_disks():
        assert disk.power.energy_joules >= 0
        assert sum(disk.power.state_durations.values()) <= sim.now + 1e-9
