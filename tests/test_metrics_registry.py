"""Tests for the metrics registry (``repro.obs.metrics``).

Four pillars from the PR's acceptance criteria:

1. Registry arithmetic — counters, gauge aggregation modes, histogram
   bucket/sum/min/max bookkeeping, and name/label validation.
2. Quantile fidelity — the P² sketches track a sorted-sample ground
   truth within a few percent on a seeded heavy-tailed stream, and the
   bucket-interpolation fallback used after merges stays sane.
3. Merge associativity — worker registries merge into the same snapshot
   regardless of arrival order, which is what lets ``run_grouped``
   fold registries in completion order.
4. The observe-only discipline — metered runs (plain, parallel, and
   fault-injected) produce RunMetrics byte-identical to unmetered runs
   across all five schemes.
"""

import json
import math
import random

import pytest

from repro.experiments.parallel import (
    SweepProgress,
    execute_cells,
)
from repro.experiments.runner import workload_cell
from repro.faults.campaign import fault_cell, run_campaign
from repro.faults.schedule import FaultSchedule
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    MetricCounter,
    MetricHistogram,
    MetricsRegistry,
    P2Quantile,
    active,
    disable,
    enable,
    enabled,
    instrument,
    lint_prometheus,
    log_buckets,
    read_snapshot,
    render_registry,
)

ALL_SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")


def _metrics_dump(metrics) -> str:
    """Canonical byte representation of a RunMetrics for equality checks."""
    return json.dumps(metrics.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Registry arithmetic
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_counter_inc_and_negative_rejection(self):
        c = MetricCounter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_modes(self):
        g = Gauge()
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == 4.0
        g.set_max(10.0)
        g.set_max(7.0)
        assert g.value == 10.0

    def test_log_buckets_monotone(self):
        bounds = log_buckets(1e-4, 1.6, 29)
        assert len(bounds) == 29
        assert all(b < a for b, a in zip(bounds, bounds[1:]))
        assert bounds == DEFAULT_LATENCY_BUCKETS

    def test_histogram_bookkeeping(self):
        h = MetricHistogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.min == 0.5
        assert h.max == 100.0
        # 0.5 -> bucket le=1.0, 1.5 -> le=2.0, 3.0 -> le=4.0, 100 -> +Inf
        assert list(h.counts) == [1, 1, 1, 1]

    def test_registry_validates_names_and_labels(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_total", **{"bad label": "x"})
        c1 = reg.counter("ops_total", scheme="RoLo-P")
        c2 = reg.counter("ops_total", scheme="RoLo-P")
        assert c1 is c2
        assert reg.get("ops_total", scheme="RoLo-P") is c1
        assert reg.get("missing_total") is None

    def test_registry_rejects_kind_conflicts(self):
        reg = MetricsRegistry()
        reg.counter("ops_total")
        with pytest.raises(ValueError):
            reg.gauge("ops_total")


# ----------------------------------------------------------------------
# Quantile fidelity
# ----------------------------------------------------------------------
class TestQuantiles:
    def test_p2_exact_below_five_samples(self):
        sketch = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            sketch.observe(v)
        assert sketch.value() == 2.0

    def test_p2_tracks_sorted_ground_truth(self):
        rng = random.Random(1234)
        samples = [rng.lognormvariate(0.0, 1.0) for _ in range(20000)]
        ordered = sorted(samples)
        for q in (0.5, 0.95, 0.99):
            sketch = P2Quantile(q)
            for v in samples:
                sketch.observe(v)
            truth = ordered[int(q * (len(ordered) - 1))]
            assert sketch.value() == pytest.approx(truth, rel=0.05)

    def test_histogram_quantile_uses_sketch_then_buckets(self):
        rng = random.Random(7)
        bounds = log_buckets(1e-3, 1.3, 40)
        h = MetricHistogram(bounds=bounds)
        samples = [rng.lognormvariate(-2.0, 0.5) for _ in range(5000)]
        for v in samples:
            h.observe(v)
        truth = sorted(samples)[int(0.95 * (len(samples) - 1))]
        assert not h.merged
        assert h.quantile(0.95) == pytest.approx(truth, rel=0.05)
        # The bucket fallback is coarser but still within a bucket ratio.
        assert h.bucket_quantile(0.95) == pytest.approx(truth, rel=0.35)

    def test_p2_dict_roundtrip(self):
        sketch = P2Quantile(0.95)
        rng = random.Random(5)
        for _ in range(100):
            sketch.observe(rng.random())
        clone = P2Quantile.from_dict(sketch.to_dict())
        assert clone.value() == sketch.value()


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _make_registry(seed: int) -> MetricsRegistry:
    rng = random.Random(seed)
    reg = MetricsRegistry()
    reg.counter("events_total", scheme="RoLo-P").inc(seed * 10 + 1)
    reg.gauge("peak_depth", agg="max").set(float(seed))
    reg.gauge("in_flight", agg="sum").set(float(seed) + 0.5)
    h = reg.histogram("latency_seconds", buckets=log_buckets(1e-3, 2.0, 12))
    for _ in range(200):
        h.observe(rng.lognormvariate(-3.0, 1.0))
    return reg

def _rounded(value):
    """Round floats to 9 significant digits so merge-order comparisons
    ignore the last-ULP drift of non-associative float addition."""
    if isinstance(value, float):
        return float(f"{value:.9g}")
    if isinstance(value, dict):
        return {k: _rounded(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_rounded(v) for v in value]
    return value


def test_merge_is_order_independent():
    dumps = []
    for order in ((0, 1, 2), (2, 0, 1), (1, 2, 0)):
        merged = MetricsRegistry()
        for seed in order:
            merged.merge(_make_registry(seed))
        dumps.append(json.dumps(_rounded(merged.to_dict()), sort_keys=True))
    assert dumps[0] == dumps[1] == dumps[2]


def test_merge_sums_counters_and_respects_gauge_agg():
    merged = MetricsRegistry()
    merged.merge(_make_registry(1))
    merged.merge(_make_registry(4))
    assert merged.get("events_total", scheme="RoLo-P").value == 11 + 41
    assert merged.get("peak_depth").value == 4.0  # max agg
    assert merged.get("in_flight").value == 1.5 + 4.5  # sum agg


def test_merged_histograms_drop_sketches_but_keep_exact_moments():
    a = _make_registry(1)
    b = _make_registry(2)
    ha = a.get("latency_seconds")
    hb = b.get("latency_seconds")
    exact = {
        "count": ha.count + hb.count,
        "sum": ha.sum + hb.sum,
        "min": min(ha.min, hb.min),
        "max": max(ha.max, hb.max),
    }
    a.merge(b)
    hm = a.get("latency_seconds")
    assert hm.merged
    assert hm.count == exact["count"]
    assert hm.sum == pytest.approx(exact["sum"])
    assert hm.min == exact["min"]
    assert hm.max == exact["max"]
    # Quantiles still answer (bucket interpolation) and stay ordered.
    assert 0 < hm.quantile(0.5) <= hm.quantile(0.95) <= hm.quantile(0.99)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_prometheus_output_lints_clean(self):
        reg = _make_registry(3)
        problems = lint_prometheus(reg.to_prometheus())
        assert problems == []

    def test_lint_catches_malformed_exposition(self):
        assert lint_prometheus("no_type_decl 1.0\n")
        assert lint_prometheus(
            "# TYPE x counter\nx{unclosed 1.0\n"
        )

    def test_jsonl_roundtrip_is_exact(self, tmp_path):
        reg = _make_registry(3)
        path = tmp_path / "deep" / "dir" / "metrics.jsonl"
        families = reg.write_jsonl(str(path))
        assert families == 4
        clone = read_snapshot(str(path))
        assert json.dumps(clone.to_dict(), sort_keys=True) == json.dumps(
            reg.to_dict(), sort_keys=True
        )

    def test_read_snapshot_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "family", "name": "x"}\n')
        with pytest.raises(ValueError):
            read_snapshot(str(path))

    def test_render_registry_mentions_every_family(self):
        reg = _make_registry(3)
        text = render_registry(reg)
        for name in (
            "events_total",
            "peak_depth",
            "in_flight",
            "latency_seconds",
        ):
            assert name in text


# ----------------------------------------------------------------------
# Ambient registry
# ----------------------------------------------------------------------
def test_ambient_enable_disable():
    assert active() is None
    reg = enable()
    try:
        assert active() is reg
    finally:
        disable()
    assert active() is None


def test_ambient_enabled_scope_restores_previous():
    outer = enable()
    try:
        with enabled() as inner:
            assert inner is not outer
            assert active() is inner
        assert active() is outer
    finally:
        disable()


# ----------------------------------------------------------------------
# Observe-only discipline: metered == unmetered, byte for byte
# ----------------------------------------------------------------------
class TestByteIdenticalRunMetrics:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_metered_run_matches_plain_run(self, scheme):
        cell = workload_cell(
            scheme, "wdev_0", scale=0.02, n_pairs=4, seed=3
        )
        plain = cell.execute()
        metered, registry = cell.execute_metered()
        assert _metrics_dump(metered) == _metrics_dump(plain)
        # The registry actually observed the run.
        events = [
            inst
            for name, _labels, inst in registry.samples()
            if name == "sim_events_total"
        ]
        assert events and events[0].value > 0

    @pytest.mark.parametrize("scheme", ("rolo-p", "raid10"))
    def test_metered_faulted_run_matches_plain(self, scheme):
        schedule = FaultSchedule.single_failure("P0", 50.0, rebuild=True)
        cell = fault_cell(
            scheme, "wdev_0", schedule, scale=0.02, n_pairs=4, seed=3
        )
        plain = cell.execute()
        metered, registry = cell.execute_metered()
        assert json.dumps(
            metered.to_dict(), sort_keys=True
        ) == json.dumps(plain.to_dict(), sort_keys=True)
        events = [
            inst
            for name, _labels, inst in registry.samples()
            if name == "sim_events_total"
        ]
        assert events and events[0].value > 0

    def test_instrument_with_no_registry_is_inert(self, sim):
        from repro.core import build_controller
        from tests.conftest import small_config

        controller = build_controller("raid10", sim, small_config())
        with instrument(sim, controller) as handle:
            assert handle is None
        assert sim._event_hook is None

    def test_parallel_metered_sweep_merges_worker_registries(self):
        cells = [
            workload_cell(s, "wdev_0", scale=0.01, n_pairs=2, seed=5)
            for s in ("raid10", "rolo-p", "graid")
        ]
        stats = execute_cells(cells, jobs=2, collect_metrics=True)
        assert stats.computed == 3
        reg = stats.metrics
        worker_cells = [
            inst
            for name, _labels, inst in reg.samples()
            if name == "sweep_worker_cells_total"
        ]
        assert sum(inst.value for inst in worker_cells) == 3
        # Sweep wall-time histogram saw one observation per cell.
        wall = [
            inst
            for name, _labels, inst in reg.samples()
            if name == "sweep_cell_wall_seconds"
        ]
        assert sum(inst.count for inst in wall) == 3
        # Metered parallel results equal plain serial results.
        for cell in cells:
            from repro.experiments import runner

            cached = runner.lookup_cached(cell.key())
            assert _metrics_dump(cached) == _metrics_dump(cell.execute())

    def test_metered_campaign_merges_and_stays_identical(self):
        schedule = FaultSchedule.single_failure("P0", 20.0, rebuild=True)
        cells = [
            fault_cell(
                s, "wdev_0", schedule, scale=0.01, n_pairs=2, seed=5
            )
            for s in ("raid10", "rolo-p")
        ]
        progress = SweepProgress(min_interval=0.0)
        results = run_campaign(
            cells, jobs=1, progress=progress, collect_metrics=True
        )
        assert len(results) == 2
        plain = [cell.execute() for cell in cells]
        for got, want in zip(results, plain):
            assert json.dumps(
                got.to_dict(), sort_keys=True
            ) == json.dumps(want.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Sweep progress rendering
# ----------------------------------------------------------------------
class _FakeStream:
    def __init__(self):
        self.chunks = []

    def write(self, text):
        self.chunks.append(text)

    def flush(self):
        pass

    def isatty(self):
        return True


def test_sweep_progress_renders_rate_and_eta():
    stream = _FakeStream()
    ticks = iter([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    progress = SweepProgress(
        stream=stream, min_interval=0.0, clock=lambda: next(ticks)
    )
    progress.start(4, done=1)
    for label in ("a", "b", "c"):
        progress(label)
    progress.finish()
    text = "".join(stream.chunks)
    assert "[4/4]" in text
    assert "100.0%" in text
    assert "cells/s" in text
    assert text.endswith("\n")


def test_sweep_progress_throttles(monkeypatch):
    stream = _FakeStream()
    progress = SweepProgress(
        stream=stream, min_interval=100.0, clock=lambda: 1.0
    )
    progress.start(10)
    progress("one")  # first update always draws
    emitted = len(stream.chunks)
    progress("two")
    progress("three")
    # Updates inside the throttle window draw nothing new.
    assert len(stream.chunks) == emitted
    progress.finish()
    assert stream.chunks[-1] == "\n" or stream.chunks[-1].endswith("\n")


# ----------------------------------------------------------------------
# Satellites: sampler export dirs, shm attach stats
# ----------------------------------------------------------------------
def test_sampler_exports_create_parent_dirs(tmp_path, sim):
    from repro.core import build_controller
    from repro.obs.sampler import TimeSeriesSampler
    from tests.conftest import small_config

    controller = build_controller("raid10", sim, small_config())
    sampler = TimeSeriesSampler(sim, controller, interval=1.0)
    sampler.samples.append(sampler.observe())
    jsonl = tmp_path / "a" / "b" / "samples.jsonl"
    csv = tmp_path / "c" / "d" / "samples.csv"
    assert sampler.to_jsonl(str(jsonl)) == 1
    assert sampler.to_csv(str(csv)) == 1
    assert jsonl.exists() and csv.exists()


def test_sampler_rejects_nonpositive_interval(sim):
    from repro.core import build_controller
    from repro.obs.sampler import TimeSeriesSampler
    from tests.conftest import small_config

    controller = build_controller("raid10", sim, small_config())
    with pytest.raises(ValueError):
        TimeSeriesSampler(sim, controller, interval=0.0)


def test_shm_attach_stats_counts_hits_and_misses():
    from repro.traces import shm

    before = shm.attach_stats()
    assert set(before) == {"hits", "misses"}
    trace = workload_cell(
        "raid10", "wdev_0", scale=0.01, n_pairs=2, seed=5
    ).build_trace()
    with shm.SharedTraceStore() as store:
        ref = store.publish(trace)
        shm.attach_cached(ref)
        mid = shm.attach_stats()
        assert mid["misses"] == before["misses"] + 1
        shm.attach_cached(ref)
        after = shm.attach_stats()
        assert after["hits"] == mid["hits"] + 1
    shm.detach_all()
