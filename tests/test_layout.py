"""Unit tests for the RAID10 address mapping."""

import pytest

from repro.raid.layout import Raid10Layout, StripeSegment

KB = 1024
MB = 1024 * KB


@pytest.fixture
def layout():
    return Raid10Layout(n_pairs=4, stripe_unit=64 * KB, data_capacity=16 * MB)


class TestValidation:
    def test_bad_pairs(self):
        with pytest.raises(ValueError):
            Raid10Layout(0, 64 * KB, MB)

    def test_bad_stripe(self):
        with pytest.raises(ValueError):
            Raid10Layout(2, 0, MB)

    def test_capacity_must_align(self):
        with pytest.raises(ValueError):
            Raid10Layout(2, 64 * KB, 64 * KB + 1)

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            StripeSegment(-1, 0, 1)
        with pytest.raises(ValueError):
            StripeSegment(0, 0, 0)


class TestMapping:
    def test_logical_capacity(self, layout):
        assert layout.logical_capacity == 4 * 16 * MB

    def test_single_unit_maps_to_one_segment(self, layout):
        segs = layout.map_extent(0, 64 * KB)
        assert len(segs) == 1
        assert segs[0].pair == 0
        assert segs[0].nbytes == 64 * KB

    def test_round_robin_over_pairs(self, layout):
        pairs = [
            layout.map_extent(i * 64 * KB, 64 * KB)[0].pair for i in range(8)
        ]
        assert pairs == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_unaligned_extent_splits(self, layout):
        segs = layout.map_extent(32 * KB, 64 * KB)
        assert len(segs) == 2
        assert segs[0].pair == 0
        assert segs[0].nbytes == 32 * KB
        assert segs[1].pair == 1
        assert segs[1].nbytes == 32 * KB

    def test_total_bytes_preserved(self, layout):
        for offset, nbytes in [(0, 64 * KB), (1000, 300 * KB), (5 * KB, 7)]:
            segs = layout.map_extent(offset, nbytes)
            assert sum(s.nbytes for s in segs) == nbytes

    def test_segments_within_data_region(self, layout):
        segs = layout.map_extent(0, layout.logical_capacity)
        for seg in segs:
            assert 0 <= seg.disk_offset
            assert seg.end_offset <= layout.data_capacity

    def test_out_of_range_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.map_extent(layout.logical_capacity, 1)
        with pytest.raises(ValueError):
            layout.map_extent(-1, 10)
        with pytest.raises(ValueError):
            layout.map_extent(0, 0)

    def test_round_trip_unaligned(self, layout):
        for logical in [0, 64 * KB, 3 * 64 * KB + 5 * KB, 999 * KB]:
            seg = layout.map_extent(logical, 1)[0]
            assert layout.to_logical(seg.pair, seg.disk_offset) == logical

    def test_to_logical_validation(self, layout):
        with pytest.raises(ValueError):
            layout.to_logical(99, 0)
        with pytest.raises(ValueError):
            layout.to_logical(0, layout.data_capacity)


class TestUnits:
    def test_single_unit(self, layout):
        units = list(layout.units(0, 64 * KB))
        assert units == [(0, 0)]

    def test_partial_units_rounded_to_unit_grain(self, layout):
        units = list(layout.units(32 * KB, 64 * KB))
        # Touches tail of pair-0 unit 0 and head of pair-1 unit 0.
        assert (0, 0) in units
        assert (1, 0) in units
        assert len(units) == 2

    def test_large_extent_counts(self, layout):
        units = list(layout.units(0, MB))
        assert len(units) == MB // (64 * KB)


class TestSpread:
    def test_spread_is_bijective(self):
        layout = Raid10Layout(2, 64 * KB, 4 * MB, spread=True)
        rows = 4 * MB // (64 * KB)
        physical = {
            layout.map_extent(r * 2 * 64 * KB, 64 * KB)[0].disk_offset
            for r in range(rows)
        }
        assert len(physical) == rows

    def test_spread_round_trip(self):
        layout = Raid10Layout(3, 64 * KB, 4 * MB, spread=True)
        for logical in range(0, layout.logical_capacity, 193 * KB):
            seg = layout.map_extent(logical, 1)[0]
            assert layout.to_logical(seg.pair, seg.disk_offset) == logical

    def test_spread_actually_scatters(self):
        layout = Raid10Layout(2, 64 * KB, 64 * MB, spread=True)
        # Two logically adjacent rows on the same pair land far apart.
        a = layout.map_extent(0, 64 * KB)[0].disk_offset
        b = layout.map_extent(2 * 64 * KB, 64 * KB)[0].disk_offset
        assert abs(b - a) > 10 * 64 * KB

    def test_no_spread_is_identity(self):
        layout = Raid10Layout(2, 64 * KB, 4 * MB, spread=False)
        seg = layout.map_extent(2 * 64 * KB, 64 * KB)[0]
        assert seg.pair == 0
        assert seg.disk_offset == 64 * KB
