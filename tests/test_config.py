"""Unit tests for ArrayConfig."""

import pytest

from repro.core import ArrayConfig
from repro.disk.models import ULTRASTAR_36Z15

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class TestDefaults:
    def test_paper_defaults(self):
        cfg = ArrayConfig()
        assert cfg.n_pairs == 20
        assert cfg.stripe_unit == 64 * KB
        assert cfg.free_space_bytes == 8 * GB
        assert cfg.graid_log_capacity_bytes == 16 * GB
        assert cfg.destage_threshold == 0.8
        assert cfg.disk is ULTRASTAR_36Z15

    def test_n_disks(self):
        assert ArrayConfig(n_pairs=10).n_disks == 20

    def test_data_capacity_aligned_and_excludes_log(self):
        cfg = ArrayConfig()
        assert cfg.data_capacity_bytes % cfg.stripe_unit == 0
        assert (
            cfg.data_capacity_bytes
            <= cfg.disk.capacity_bytes - cfg.free_space_bytes
        )

    def test_log_region_offset(self):
        cfg = ArrayConfig()
        assert cfg.log_region_offset == cfg.data_capacity_bytes

    def test_layout_dimensions(self):
        cfg = ArrayConfig(n_pairs=4)
        layout = cfg.layout()
        assert layout.n_pairs == 4
        assert layout.stripe_unit == cfg.stripe_unit
        assert layout.data_capacity == cfg.data_capacity_bytes
        assert layout.spread is True

    def test_layout_spread_toggle(self):
        cfg = ArrayConfig(spread_data=False)
        assert cfg.layout().spread is False


class TestValidation:
    def test_min_pairs(self):
        with pytest.raises(ValueError):
            ArrayConfig(n_pairs=1)

    def test_stripe_unit_sector_multiple(self):
        with pytest.raises(ValueError):
            ArrayConfig(stripe_unit=1000)

    def test_free_space_must_fit(self):
        with pytest.raises(ValueError):
            ArrayConfig(free_space_bytes=0)
        with pytest.raises(ValueError):
            ArrayConfig(
                free_space_bytes=ULTRASTAR_36Z15.capacity_bytes + 1
            )

    def test_thresholds(self):
        with pytest.raises(ValueError):
            ArrayConfig(destage_threshold=0.0)
        with pytest.raises(ValueError):
            ArrayConfig(rotate_threshold=1.1)
        with pytest.raises(ValueError):
            ArrayConfig(prewake_fraction=-0.1)

    def test_n_on_duty_range(self):
        with pytest.raises(ValueError):
            ArrayConfig(n_pairs=4, n_on_duty=0)
        with pytest.raises(ValueError):
            ArrayConfig(n_pairs=4, n_on_duty=4)
        ArrayConfig(n_pairs=4, n_on_duty=3)

    def test_destage_batch_holds_a_unit(self):
        with pytest.raises(ValueError):
            ArrayConfig(stripe_unit=64 * KB, destage_batch_bytes=32 * KB)

    def test_time_knobs_non_negative(self):
        with pytest.raises(ValueError):
            ArrayConfig(idle_grace_s=-1)
        with pytest.raises(ValueError):
            ArrayConfig(standby_return_s=-1)

    def test_cache_fraction_range(self):
        with pytest.raises(ValueError):
            ArrayConfig(read_cache_fraction=1.0)


class TestScaled:
    def test_scales_capacities(self):
        cfg = ArrayConfig().scaled(0.1)
        assert cfg.free_space_bytes == pytest.approx(0.8 * GB, rel=0.01)
        assert cfg.graid_log_capacity_bytes == pytest.approx(
            1.6 * GB, rel=0.01
        )

    def test_preserves_structure(self):
        cfg = ArrayConfig(n_pairs=7).scaled(0.1)
        assert cfg.n_pairs == 7
        assert cfg.stripe_unit == 64 * KB
        assert cfg.disk is ULTRASTAR_36Z15

    def test_alignment(self):
        cfg = ArrayConfig().scaled(0.001234)
        assert cfg.free_space_bytes % cfg.stripe_unit == 0
        assert cfg.graid_log_capacity_bytes % cfg.stripe_unit == 0

    def test_floor_of_four_units(self):
        cfg = ArrayConfig().scaled(1e-9)
        assert cfg.free_space_bytes >= 4 * cfg.stripe_unit

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ArrayConfig().scaled(0)

    def test_hashable(self):
        assert hash(ArrayConfig()) == hash(ArrayConfig())
        assert ArrayConfig() == ArrayConfig()
