"""Tests for ``rolo report`` and ``rolo bench trend``.

The golden-output pillar of the metrics PR: run reports must surface
p50/p95/p99 latency and per-state power residency, and the trend
analyzer must flag a synthetic >10% throughput regression between two
baseline files while never gating.
"""

import json

import pytest

from repro import bench
from repro.experiments import clear_cache
from repro.experiments.runreport import (
    build_run_report,
    render_html,
    render_markdown,
    report_cells,
    write_report,
)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_cache()
    yield
    clear_cache()


def _small_report():
    cells = report_cells(
        ["raid10", "rolo-p"], ["wdev_0"], scale=0.02, n_pairs=4, seed=3
    )
    return build_run_report(cells, title="test report")


# ----------------------------------------------------------------------
# rolo report
# ----------------------------------------------------------------------
class TestRunReport:
    def test_report_structure_has_quantiles_and_residency(self):
        report = _small_report()
        assert report["schemes"] == ["raid10", "rolo-p"]
        assert report["workloads"] == ["wdev_0"]
        for entry in report["cells"]:
            for key in ("p50_ms", "p95_ms", "p99_ms"):
                assert entry[key] >= 0.0
            assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
            assert entry["energy_j"] > 0
            assert entry["residency"]
            for states in entry["residency"].values():
                assert 0.99 < sum(states.values()) <= 1.01
        # rolo-p spins disks down; raid10 never does.
        by_scheme = {e["scheme"]: e for e in report["cells"]}
        assert by_scheme["rolo-p"]["energy_j"] < by_scheme["raid10"]["energy_j"]

    def test_comparison_anchors_on_raid10(self):
        report = _small_report()
        rows = {r["scheme"]: r for r in report["comparison"]}
        assert set(rows) == {"rolo-p"}
        assert 0 < rows["rolo-p"]["energy_ratio"] < 1.0
        assert rows["rolo-p"]["p95_ratio"] > 0

    def test_markdown_renders_quantiles_and_residency(self):
        report = _small_report()
        text = render_markdown(report)
        for token in ("p50 ms", "p95 ms", "p99 ms"):
            assert token in text
        assert "Power-state residency" in text
        assert "vs raid10" in text

    def test_html_is_self_contained_with_inline_svg(self, tmp_path):
        report = _small_report()
        html_text = render_html(report)
        assert "<svg" in html_text
        assert "latency distribution - wdev_0" in html_text
        # write_report picks format from the extension and makes dirs.
        path = tmp_path / "deep" / "report.html"
        write_report(report, str(path))
        assert path.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        md_path = tmp_path / "deep" / "report.md"
        write_report(report, str(md_path))
        assert md_path.read_text(encoding="utf-8").startswith("# ")


# ----------------------------------------------------------------------
# bench trend
# ----------------------------------------------------------------------
def _bench_file(tmp_path, name, rates):
    scenarios = {
        scenario: {"events_per_sec": rate, "wall_s": 1.0}
        for scenario, rate in rates.items()
    }
    path = tmp_path / name
    path.write_text(
        json.dumps(bench.build_report(scenarios, mode="quick"))
    )
    return str(path)


class TestBenchTrend:
    def test_flags_synthetic_regression_over_threshold(self, tmp_path):
        old = _bench_file(
            tmp_path, "BENCH_1.json", {"matrix:a": 100.0, "matrix:b": 100.0}
        )
        new = _bench_file(
            tmp_path, "BENCH_2.json", {"matrix:a": 80.0, "matrix:b": 95.0}
        )
        report = bench.trend([old, new])
        assert report["flagged"] == ["matrix:a"]
        drift = report["scenarios"]["matrix:a"]["drifts"][0]
        assert drift["direction"] == "regression"
        assert drift["change"] == pytest.approx(-0.2)
        # 5% dip stays under the default 10% threshold.
        assert report["scenarios"]["matrix:b"]["drifts"] == []

    def test_flags_improvements_without_gating(self, tmp_path):
        old = _bench_file(tmp_path, "BENCH_1.json", {"matrix:a": 100.0})
        new = _bench_file(tmp_path, "BENCH_2.json", {"matrix:a": 130.0})
        report = bench.trend([old, new])
        assert report["flagged"] == []
        drift = report["scenarios"]["matrix:a"]["drifts"][0]
        assert drift["direction"] == "improvement"

    def test_scenarios_missing_from_a_run_are_skipped(self, tmp_path):
        a = _bench_file(tmp_path, "BENCH_1.json", {"matrix:a": 100.0})
        b = _bench_file(tmp_path, "BENCH_2.json", {"matrix:b": 50.0})
        c = _bench_file(
            tmp_path, "BENCH_3.json", {"matrix:a": 50.0, "matrix:b": 50.0}
        )
        report = bench.trend([a, b, c])
        # a's only consecutive present pair is runs 1 -> 3.
        assert report["scenarios"]["matrix:a"]["drifts"][0][
            "change"
        ] == pytest.approx(-0.5)
        assert report["scenarios"]["matrix:b"]["drifts"] == []
        assert report["flagged"] == ["matrix:a"]

    def test_requires_two_runs(self, tmp_path):
        only = _bench_file(tmp_path, "BENCH_1.json", {"matrix:a": 1.0})
        with pytest.raises(ValueError):
            bench.trend([only])

    def test_custom_threshold(self, tmp_path):
        old = _bench_file(tmp_path, "BENCH_1.json", {"matrix:a": 100.0})
        new = _bench_file(tmp_path, "BENCH_2.json", {"matrix:a": 95.0})
        assert bench.trend([old, new])["flagged"] == []
        assert bench.trend([old, new], threshold=0.04)["flagged"] == [
            "matrix:a"
        ]

    def test_format_and_html_renderers(self, tmp_path):
        old = _bench_file(tmp_path, "BENCH_1.json", {"matrix:a": 100.0})
        new = _bench_file(tmp_path, "BENCH_2.json", {"matrix:a": 80.0})
        report = bench.trend([old, new])
        text = bench.format_trend(report)
        assert "matrix:a" in text
        assert "v20.0%" in text
        assert "flagged" in text
        out = tmp_path / "sub" / "trend.html"
        bench.write_trend_html(report, str(out))
        html_text = out.read_text(encoding="utf-8")
        assert "<svg" in html_text
        assert "matrix:a" in html_text

    def test_trend_over_committed_baselines(self):
        # The repo ships real BENCH_*.json snapshots; trend must accept
        # them end to end (schema drift here breaks the CI job).
        report = bench.trend(["BENCH_4.json", "BENCH_6.json"])
        assert report["runs"] == ["BENCH_4", "BENCH_6"]
        assert report["scenarios"]
