"""Validation of the disk server against queueing theory.

The trace-driven results are only as good as the underlying queue, so we
check the disk model against closed-form results: an M/D/1 system's mean
wait (Pollaczek-Khinchine), server utilization, and the independence of
service from arrival order under FCFS.
"""

import random

import pytest

from repro.disk.disk import Disk, DiskOp, OpKind
from repro.disk.models import ULTRASTAR_36Z15
from repro.sim import Simulator

KB = 1024


def run_poisson_writes(
    rate: float,
    nbytes: int,
    duration: float,
    seed: int = 1,
    sequential: bool = True,
):
    """Poisson arrivals of fixed-size ops on one disk; returns latencies."""
    sim = Simulator()
    disk = Disk(sim, ULTRASTAR_36Z15, "D")
    rng = random.Random(seed)
    latencies = []

    def arrive():
        disk.submit(
            DiskOp(
                OpKind.WRITE,
                0,
                nbytes,
                sequential_hint=sequential,
                on_complete=lambda op: latencies.append(op.latency),
            )
        )

    t = rng.expovariate(rate)
    while t < duration:
        sim.at(t, arrive)
        t += rng.expovariate(rate)
    sim.run()
    return disk, latencies, sim.now


class TestMD1:
    @pytest.mark.parametrize("rho_target", [0.3, 0.6, 0.8])
    def test_mean_wait_matches_pollaczek_khinchine(self, rho_target):
        """M/D/1: Wq = rho * s / (2 (1 - rho))."""
        nbytes = 64 * KB
        service = ULTRASTAR_36Z15.transfer_time(nbytes)
        rate = rho_target / service
        disk, latencies, _ = run_poisson_writes(
            rate, nbytes, duration=2000.0 * service / rho_target
        )
        measured_wait = sum(latencies) / len(latencies) - service
        expected_wait = rho_target * service / (2 * (1 - rho_target))
        assert measured_wait == pytest.approx(expected_wait, rel=0.15)

    def test_utilization_matches_offered_load(self):
        nbytes = 64 * KB
        service = ULTRASTAR_36Z15.transfer_time(nbytes)
        rho = 0.5
        duration = 3000 * service
        disk, _, end = run_poisson_writes(rho / service, nbytes, duration)
        assert disk.busy_time / end == pytest.approx(rho, rel=0.1)

    def test_latency_never_below_service_time(self):
        nbytes = 64 * KB
        service = ULTRASTAR_36Z15.transfer_time(nbytes)
        _, latencies, _ = run_poisson_writes(
            0.5 / service, nbytes, duration=500 * service
        )
        assert min(latencies) >= service * 0.999

    def test_wait_grows_superlinearly_with_load(self):
        """Queueing wait at rho=0.8 far exceeds 2x the wait at rho=0.4."""
        nbytes = 64 * KB
        service = ULTRASTAR_36Z15.transfer_time(nbytes)

        def mean_wait(rho):
            _, lats, _ = run_poisson_writes(
                rho / service, nbytes, duration=3000 * service
            )
            return sum(lats) / len(lats) - service

        assert mean_wait(0.8) > 2.5 * mean_wait(0.4)


class TestThroughputCeilings:
    def test_sequential_throughput_reaches_sustained_rate(self):
        """A saturated sequential stream moves bytes at ~55 MB/s."""
        sim = Simulator()
        disk = Disk(sim, ULTRASTAR_36Z15, "D")
        n = 500
        for i in range(n):
            disk.submit(
                DiskOp(OpKind.WRITE, 0, 256 * KB, sequential_hint=True)
            )
        sim.run()
        rate = disk.bytes_transferred / sim.now
        assert rate == pytest.approx(
            ULTRASTAR_36Z15.sustained_transfer_rate, rel=0.01
        )

    def test_random_iops_ceiling_matches_mechanics(self):
        """Saturated random 4K ops complete at ~1/(seek+rot+xfer)."""
        sim = Simulator()
        disk = Disk(sim, ULTRASTAR_36Z15, "D")
        rng = random.Random(3)
        sectors = ULTRASTAR_36Z15.capacity_sectors
        n = 400
        for _ in range(n):
            disk.submit(
                DiskOp(OpKind.READ, rng.randrange(sectors - 100), 4 * KB)
            )
        sim.run()
        iops = n / sim.now
        expected_service = (
            ULTRASTAR_36Z15.avg_seek_time
            + ULTRASTAR_36Z15.avg_rotational_latency
            + ULTRASTAR_36Z15.transfer_time(4 * KB)
        )
        assert iops == pytest.approx(1 / expected_service, rel=0.15)

    def test_random_slower_than_sequential(self):
        sim = Simulator()
        a = Disk(sim, ULTRASTAR_36Z15, "A")
        b = Disk(sim, ULTRASTAR_36Z15, "B")
        rng = random.Random(5)
        sectors = ULTRASTAR_36Z15.capacity_sectors
        for i in range(100):
            a.submit(DiskOp(OpKind.WRITE, 0, 64 * KB, sequential_hint=True))
            b.submit(
                DiskOp(OpKind.WRITE, rng.randrange(sectors - 200), 64 * KB)
            )
        sim.run()
        assert b.busy_time > 3 * a.busy_time
