"""Unit tests for RoLo-R (three copies via an on-duty mirrored pair)."""

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import RoloRController, run_trace
from repro.core.base import run_trace as run_trace_base
from repro.sim import Simulator

KB = 1024


def build(sim, **overrides):
    return RoloRController(sim, small_config(**overrides))


class TestTripleCopy:
    def test_write_lands_in_three_places(self, sim):
        controller = build(sim)
        run_trace(controller, make_trace([(0.0, "w", 64 * KB, 64 * KB)]))
        # Target pair 1 in place + both disks of on-duty pair 0.
        assert controller.primaries[1].foreground_ops == 1
        assert controller.primaries[0].foreground_ops == 1  # log copy
        assert controller.mirrors[0].foreground_ops == 1  # log copy

    def test_write_to_duty_pair_itself(self, sim):
        controller = build(sim)
        run_trace(controller, make_trace([(0.0, "w", 0, 64 * KB)]))
        # In-place on P0 plus log copies on P0 and M0: P0 gets two ops.
        assert controller.primaries[0].foreground_ops == 2
        assert controller.mirrors[0].foreground_ops == 1

    def test_both_log_regions_charged(self, sim):
        controller = build(sim)
        run_trace_base(controller, write_burst(3), drain=False)
        assert controller.mirror_logs[0].used == 3 * 64 * KB
        assert controller.primary_logs[0].used == 3 * 64 * KB

    def test_rotation_reclaims_both_regions(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(55, gap=0.05))
        assert controller.dirty_units_total() == 0
        for region in controller.mirror_logs + controller.primary_logs:
            region.check_invariants()
            assert all(region.live_bytes(p) == 0 for p in range(2))

    def test_slower_than_two_copies_on_duty_primary(self, sim):
        """The third copy queues on a disk that also serves user I/O."""
        controller = build(sim)
        metrics = run_trace(controller, write_burst(20, gap=0.001))
        assert metrics.requests == 20
        assert metrics.response_time.max > 0

    def test_occupancy_uses_max_of_both_regions(self, sim):
        controller = build(sim)
        assert controller._logger_occupancy(0) == 0.0
        controller.primary_logs[0].append(64 * KB, {0: 64 * KB}, 0)
        assert controller._logger_occupancy(0) > 0.0

    def test_consistency_after_drain(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(60, gap=0.02))
        controller.assert_consistent()
