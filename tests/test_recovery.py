"""Tests for disk failure recovery (paper §III-C / §III-D)."""

import pytest

from tests.conftest import small_config, write_burst
from repro.core import build_controller, plan_recovery, run_trace
from repro.core.base import run_trace as run_trace_base
from repro.core.recovery import RecoveryError, RecoveryProcess
from repro.disk.disk import Disk
from repro.disk.models import ULTRASTAR_36Z15
from repro.sim import Simulator

KB = 1024
MB = 1024 * KB


def primed(sim, scheme, writes=10, **overrides):
    """A controller that has absorbed some writes (no drain)."""
    controller = build_controller(scheme, sim, small_config(**overrides))
    run_trace_base(controller, write_burst(writes), drain=False)
    return controller


class TestPlans:
    def test_raid10_primary_failure_wakes_nothing(self, sim):
        controller = primed(sim, "raid10")
        plan = plan_recovery(controller, controller.primaries[0])
        assert plan.source is controller.mirrors[0]
        assert plan.disks_woken == 0

    def test_raid10_mirror_failure_uses_primary(self, sim):
        controller = primed(sim, "raid10")
        plan = plan_recovery(controller, controller.mirrors[1])
        assert plan.source is controller.primaries[1]
        assert plan.disks_woken == 0

    def test_graid_primary_failure_wakes_all_mirrors(self, sim):
        """The paper's claim: GRAID must spin up every mirror."""
        controller = primed(sim, "graid")
        plan = plan_recovery(controller, controller.primaries[0])
        assert plan.disks_woken == len(controller.mirrors)

    def test_graid_mirror_failure_wakes_nothing(self, sim):
        controller = primed(sim, "graid")
        plan = plan_recovery(controller, controller.mirrors[0])
        assert plan.disks_woken == 0
        assert plan.source is controller.primaries[0]

    def test_graid_log_failure_rebuilds_dirty_volume(self, sim):
        controller = primed(sim, "graid", writes=6)
        plan = plan_recovery(controller, controller.log_disk)
        assert plan.role == "log"
        assert plan.rebuild_bytes == 6 * 64 * KB

    def test_rolo_p_primary_failure_wakes_log_holders_only(self, sim):
        controller = primed(sim, "rolo-p", writes=4)
        # Writes went to pair 0 and were logged on on-duty mirror 0.
        plan = plan_recovery(controller, controller.primaries[0])
        # M0 is the pair mirror AND the live log holder; it is already
        # spinning (on duty) so nothing sleeps that must wake.
        assert plan.source is controller.mirrors[0]
        assert plan.disks_woken <= 1

    def test_rolo_p_wakes_fewer_disks_than_graid(self, sim):
        """The §III-C comparison behind Fig. 9's RoLo-P > GRAID."""
        rolo = primed(Simulator(), "rolo-p", writes=10)
        graid = primed(Simulator(), "graid", writes=10)
        rolo_plan = plan_recovery(rolo, rolo.primaries[0])
        graid_plan = plan_recovery(graid, graid.primaries[0])
        assert rolo_plan.disks_woken < graid_plan.disks_woken

    def test_rolo_r_primary_failure_needs_no_stale_mirrors(self, sim):
        controller = primed(sim, "rolo-r", writes=4)
        plan = plan_recovery(controller, controller.primaries[1])
        # Third copies live on the always-on logger primary.
        assert all(d is controller.mirrors[1] for d in plan.wake)

    def test_rolo_p_on_duty_mirror_failure_rotates_logger(self, sim):
        controller = primed(sim, "rolo-p", writes=4)
        assert controller._on_duty == [0]
        plan = plan_recovery(controller, controller.mirrors[0])
        assert plan.logging_continues
        assert controller._on_duty == [1]  # §III-D continuity

    def test_rolo_p_off_duty_mirror_failure_no_rotation(self, sim):
        controller = primed(sim, "rolo-p", writes=4)
        plan = plan_recovery(controller, controller.mirrors[1])
        assert controller._on_duty == [0]
        assert plan.source is controller.primaries[1]

    def test_rolo_e_failure_wakes_partner_only(self, sim):
        controller = primed(sim, "rolo-e", writes=4)
        plan = plan_recovery(controller, controller.primaries[1])
        assert plan.source is controller.mirrors[1]
        assert plan.disks_woken == 1  # partner was STANDBY

    def test_rolo_e_duty_disk_failure_partner_awake(self, sim):
        controller = primed(sim, "rolo-e", writes=4)
        plan = plan_recovery(controller, controller.mirrors[0])
        assert plan.source is controller.primaries[0]
        assert plan.disks_woken == 0

    def test_unknown_disk_rejected(self, sim):
        controller = primed(sim, "raid10")
        stranger = Disk(sim, ULTRASTAR_36Z15, "stranger")
        with pytest.raises(RecoveryError):
            plan_recovery(controller, stranger)


class TestRecoveryProcess:
    def test_rebuild_completes_and_reports_time(self, sim):
        controller = primed(sim, "raid10")
        plan = plan_recovery(controller, controller.primaries[0])
        done = []
        process = RecoveryProcess(
            sim, controller, plan, on_complete=done.append
        )
        process.start()
        sim.run()
        assert done == [process]
        assert process.done
        assert process.rebuild_time > 0
        assert (
            process.replacement.bytes_transferred == plan.rebuild_bytes
        )

    def test_rebuild_time_scales_with_volume(self, sim):
        controller = primed(sim, "raid10")
        plan = plan_recovery(controller, controller.primaries[0])
        small = plan
        small.rebuild_bytes = 16 * MB
        p1 = RecoveryProcess(sim, controller, small)
        p1.start()
        sim.run()
        t_small = p1.rebuild_time

        sim2 = Simulator()
        controller2 = primed(sim2, "raid10")
        plan2 = plan_recovery(controller2, controller2.primaries[0])
        plan2.rebuild_bytes = 64 * MB
        p2 = RecoveryProcess(sim2, controller2, plan2)
        p2.start()
        sim2.run()
        assert p2.rebuild_time > 2 * t_small

    def test_rebuild_time_in_progress_rejected(self, sim):
        controller = primed(sim, "raid10")
        plan = plan_recovery(controller, controller.primaries[0])
        plan.rebuild_bytes = 16 * MB
        process = RecoveryProcess(sim, controller, plan)
        with pytest.raises(RecoveryError):
            _ = process.rebuild_time

    def test_rebuild_wakes_planned_disks(self, sim):
        controller = primed(sim, "graid")
        plan = plan_recovery(controller, controller.primaries[0])
        plan.rebuild_bytes = 16 * MB
        process = RecoveryProcess(sim, controller, plan)
        process.start()
        sim.run()
        for mirror in controller.mirrors:
            assert mirror.power.spin_up_count >= 1
