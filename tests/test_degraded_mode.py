"""Tests for online degraded-mode operation and live rebuild.

The first half exercises RAID10's fault handling in detail; the
``TestAllSchemesDegraded`` class at the bottom runs the same contract —
failed disks reject I/O and draw no power, rebuilds wake exactly the
disks :func:`plan_recovery` predicts and restore full redundancy —
across every scheme in the suite.
"""

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import Raid10Controller, build_controller, run_trace
from repro.core.base import TraceDriver
from repro.core.raid10 import DataLossError
from repro.core.recovery import plan_recovery
from repro.disk.disk import DiskFailedError, DiskOp, OpKind
from repro.disk.power import PowerState
from repro.sim import Simulator

KB = 1024

ALL_SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")


def build(sim, **overrides):
    return Raid10Controller(sim, small_config(**overrides))


class TestFailureInjection:
    def test_failed_disk_rejects_io(self, sim):
        controller = build(sim)
        controller.fail_disk(controller.mirrors[0])
        with pytest.raises(DiskFailedError):
            controller.mirrors[0].submit(DiskOp(OpKind.READ, 0, 4096))

    def test_failed_disk_draws_no_power(self, sim):
        controller = build(sim)
        controller.fail_disk(controller.mirrors[0])
        before = controller.mirrors[0].power.energy_joules
        sim.run(until=100.0)
        controller.mirrors[0].close()
        assert controller.mirrors[0].power.energy_joules == before

    def test_fail_requires_quiet_disk(self, sim):
        controller = build(sim)
        controller.mirrors[0].submit(DiskOp(OpKind.WRITE, 0, 64 * KB))
        with pytest.raises(ValueError):
            controller.fail_disk(controller.mirrors[0])

    def test_failed_disk_refuses_spin_up(self, sim):
        controller = build(sim)
        controller.fail_disk(controller.mirrors[0])
        assert controller.mirrors[0].request_spin_up() is False


class TestDegradedIO:
    def test_writes_survive_mirror_failure(self, sim):
        controller = build(sim)
        controller.fail_disk(controller.mirrors[0])
        metrics = run_trace(controller, write_burst(5, stride=0))
        assert metrics.requests == 5
        assert controller.primaries[0].foreground_ops == 5

    def test_reads_redirect_to_survivor(self, sim):
        controller = build(sim)
        controller.fail_disk(controller.primaries[0])
        metrics = run_trace(
            controller,
            make_trace([(0.0, "r", 0, 64 * KB)] * 1),
        )
        assert metrics.requests == 1
        assert controller.mirrors[0].foreground_ops == 1

    def test_double_failure_is_data_loss(self, sim):
        controller = build(sim)
        controller.fail_disk(controller.primaries[0])
        controller.fail_disk(controller.mirrors[0])
        with pytest.raises(DataLossError):
            controller._write_targets(0)
        with pytest.raises(DataLossError):
            controller._read_source(0)

    def test_other_pairs_unaffected(self, sim):
        controller = build(sim)
        controller.fail_disk(controller.primaries[0])
        run_trace(
            controller, make_trace([(0.0, "w", 64 * KB, 64 * KB)])
        )
        assert controller.primaries[1].foreground_ops == 1
        assert controller.mirrors[1].foreground_ops == 1


class TestOnlineRebuild:
    def test_rebuild_swaps_replacement_in(self, sim):
        controller = build(sim)
        victim = controller.mirrors[0]
        controller.fail_disk(victim)
        done = []
        process = controller.begin_rebuild(
            victim, on_complete=lambda: done.append(sim.now)
        )
        sim.run()
        assert done
        assert controller.mirrors[0] is process.replacement
        assert not controller.mirrors[0].failed

    def test_new_writes_mirrored_to_replacement_during_rebuild(self, sim):
        controller = build(sim)
        victim = controller.mirrors[0]
        controller.fail_disk(victim)
        process = controller.begin_rebuild(victim)
        # A write arriving mid-rebuild must hit primary AND replacement.
        driver = TraceDriver(sim, controller, write_burst(3, stride=0))
        driver.start()
        sim.run()
        assert controller.primaries[0].foreground_ops == 3
        assert process.replacement.foreground_ops == 3

    def test_io_continues_through_rebuild(self, sim):
        controller = build(sim)
        victim = controller.primaries[1]
        controller.fail_disk(victim)
        controller.begin_rebuild(victim)
        metrics = run_trace(controller, write_burst(20, gap=0.05))
        assert metrics.requests == 20

    def test_rebuild_requires_failed_disk(self, sim):
        controller = build(sim)
        with pytest.raises(ValueError):
            controller.begin_rebuild(controller.mirrors[0])

    def test_double_rebuild_rejected(self, sim):
        controller = build(sim)
        victim = controller.mirrors[0]
        controller.fail_disk(victim)
        controller.begin_rebuild(victim)
        with pytest.raises(ValueError):
            controller.begin_rebuild(victim)

    def test_post_rebuild_pair_fully_functional(self, sim):
        controller = build(sim)
        victim = controller.mirrors[0]
        controller.fail_disk(victim)
        controller.begin_rebuild(victim)
        sim.run()
        # Arrivals must be in the simulator's future after the rebuild.
        metrics = run_trace(
            controller, write_burst(4, stride=0, start=sim.now + 1.0)
        )
        assert metrics.requests == 4
        assert controller.mirrors[0].foreground_ops == 4


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestAllSchemesDegraded:
    """The degraded-mode contract holds for every scheme, not just RAID10."""

    def test_failed_disk_rejects_io(self, sim, scheme):
        controller = build_controller(scheme, sim, small_config())
        victim = controller.mirrors[0]
        controller.fail_disk(victim)
        with pytest.raises(DiskFailedError):
            victim.submit(DiskOp(OpKind.READ, 0, 4096))

    def test_failed_disk_draws_zero_power(self, sim, scheme):
        controller = build_controller(scheme, sim, small_config())
        victim = controller.mirrors[0]
        controller.fail_disk(victim)
        before = victim.power.energy_joules
        sim.run(until=200.0)
        victim.close()
        assert victim.power.energy_joules == before
        assert not victim.state.spun_up

    def _prime(self, sim, controller, count):
        # Replay a burst without finalize(): the controller's one-shot
        # metrics snapshot must stay open for the post-rebuild run_trace.
        driver = TraceDriver(sim, controller, write_burst(count))
        driver.start()
        sim.run()
        assert driver.completed_at >= 0

    def test_wake_set_matches_plan(self, sim, scheme):
        controller = build_controller(scheme, sim, small_config())
        self._prime(sim, controller, 8)
        victim = controller.primaries[0]
        controller.fail_disk(victim)
        plan = plan_recovery(controller, victim)
        controller.begin_rebuild(victim)
        for disk in plan.wake:
            assert (
                disk.state.spun_up or disk.state is PowerState.SPINNING_UP
            ), (scheme, disk.name)
        sim.run()

    def test_rebuild_restores_redundancy(self, sim, scheme):
        controller = build_controller(scheme, sim, small_config())
        self._prime(sim, controller, 6)
        victim = controller.mirrors[0]
        controller.fail_disk(victim)
        done = []
        controller.begin_rebuild(
            victim, on_complete=lambda: done.append(sim.now)
        )
        sim.run()
        assert done
        assert controller.mirrors[0] is not victim
        assert not controller.mirrors[0].failed
        assert not controller._pair_degraded(0)
        metrics = run_trace(
            controller, write_burst(4, start=sim.now + 1.0, stride=0)
        )
        # Lifetime counter: 6 priming writes + 4 post-rebuild writes.
        assert metrics.requests == 10
        controller.assert_consistent()
