"""Cross-scheme integration tests: the invariants of DESIGN.md §7."""

import pytest

from tests.conftest import make_trace, small_config
from repro.core import SCHEMES, build_controller, run_trace
from repro.core.base import run_trace as run_trace_base
from repro.sim import Simulator
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

KB = 1024
MB = 1024 * KB

ALL_SCHEMES = sorted(SCHEMES)


def mixed_trace(seed=3):
    config = SyntheticTraceConfig(
        duration_s=60.0,
        iops=25.0,
        write_ratio=0.9,
        avg_request_bytes=32 * KB,
        size_sigma=0.4,
        footprint_bytes=16 * MB,
        read_locality=0.5,
        seed=seed,
    )
    return generate_trace(config)


@pytest.fixture(scope="module")
def results():
    """Run every scheme once on the same mixed trace."""
    trace = mixed_trace()
    out = {}
    for scheme in ALL_SCHEMES:
        sim = Simulator()
        controller = build_controller(scheme, sim, small_config())
        metrics = run_trace(controller, trace)
        out[scheme] = (controller, metrics, trace)
    return out


class TestUniversalInvariants:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_every_request_completes(self, results, scheme):
        _, metrics, trace = results[scheme]
        assert metrics.requests == len(trace)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_mirrors_consistent_after_drain(self, results, scheme):
        controller, _, _ = results[scheme]
        controller.assert_consistent()

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_response_times_positive_and_bounded(self, results, scheme):
        _, metrics, _ = results[scheme]
        assert metrics.response_time.min > 0
        # Nothing should exceed a couple of spin-up times on this load.
        assert metrics.response_time.max < 30.0

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_energy_accounting_closes(self, results, scheme):
        """State durations span at least the measurement window and never
        run past the simulated clock."""
        controller, metrics, _ = results[scheme]
        assert metrics.total_energy_j > 0
        for disk in controller.all_disks():
            total_time = sum(disk.power.state_durations.values())
            assert total_time >= metrics.duration_s - 1e-9
            assert total_time <= controller.sim.now + 1e-9

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_measurement_window_covers_trace(self, results, scheme):
        _, metrics, trace = results[scheme]
        assert metrics.duration_s >= trace.duration

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_write_read_counts(self, results, scheme):
        _, metrics, trace = results[scheme]
        writes = sum(1 for r in trace if r.is_write)
        assert metrics.writes == writes
        assert metrics.reads == len(trace) - writes


class TestCrossSchemeOrderings:
    """Orderings that hold even at micro scale.

    Energy *levels* at two pairs and a 60 s horizon are dominated by
    unscalable spin physics (and GRAID carries a fifth disk), so the
    paper-level energy comparisons live in the write-dominant fixture of
    :class:`TestWriteDominantOrderings` and in the experiment harness.
    """

    def test_raid10_never_spins(self, results):
        _, metrics, _ = results["raid10"]
        assert metrics.spin_cycle_count == 0

    def test_spin_count_ordering(self, results):
        """Table I ordering: RAID10 = 0 <= RoLo-P <= GRAID-ish."""
        spins = {s: results[s][1].spin_cycle_count for s in ALL_SCHEMES}
        assert spins["raid10"] == 0
        assert spins["rolo-p"] <= spins["rolo-e"]

    def test_rolo_p_and_r_same_energy_class(self, results):
        """Paper: RoLo-P and RoLo-R energy nearly identical."""
        p = results["rolo-p"][1].total_energy_j
        r = results["rolo-r"][1].total_energy_j
        assert r == pytest.approx(p, rel=0.05)

    def test_rolo_r_not_faster_than_rolo_p(self, results):
        p = results["rolo-p"][1].response_time.mean
        r = results["rolo-r"][1].response_time.mean
        assert r >= p * 0.95


class TestDeterminism:
    def test_same_seed_same_results(self):
        trace = mixed_trace(seed=9)

        def run_once():
            sim = Simulator()
            controller = build_controller(
                "rolo-p", sim, small_config()
            )
            return run_trace(controller, trace)

        a = run_once()
        b = run_once()
        assert a.total_energy_j == b.total_energy_j
        assert a.response_time.mean == b.response_time.mean
        assert a.spin_cycle_count == b.spin_cycle_count
        assert a.rotations == b.rotations


class TestWriteDominantOrderings:
    """Paper-level energy orderings on a write-only workload with long
    quiet stretches (where standby time, not spin physics, dominates)."""

    @pytest.fixture(scope="class")
    def write_results(self):
        config = SyntheticTraceConfig(
            duration_s=600.0,
            iops=4.0,
            write_ratio=1.0,
            avg_request_bytes=64 * KB,
            footprint_bytes=16 * MB,
            seed=11,
        )
        trace = generate_trace(config)
        out = {}
        for scheme in ALL_SCHEMES:
            sim = Simulator()
            controller = build_controller(scheme, sim, small_config())
            out[scheme] = run_trace(controller, trace)
        return out

    def test_rolo_schemes_save_energy_over_raid10(self, write_results):
        base = write_results["raid10"].total_energy_j
        for scheme in ("rolo-p", "rolo-r", "rolo-e"):
            assert write_results[scheme].total_energy_j < base

    def test_rolo_e_saves_most_energy(self, write_results):
        energies = {
            s: write_results[s].total_energy_j for s in ALL_SCHEMES
        }
        assert energies["rolo-e"] == min(energies.values())

    def test_rolo_p_beats_graid(self, write_results):
        """No dedicated fifth log disk: RoLo-P burns less than GRAID."""
        assert (
            write_results["rolo-p"].total_energy_j
            < write_results["graid"].total_energy_j
        )


class TestWriteOnlyStress:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_sustained_writes_stay_consistent(self, scheme):
        """Push every scheme through multiple logging cycles."""
        config = SyntheticTraceConfig(
            duration_s=120.0,
            iops=40.0,
            write_ratio=1.0,
            avg_request_bytes=64 * KB,
            footprint_bytes=12 * MB,
            seed=5,
        )
        trace = generate_trace(config)
        sim = Simulator()
        controller = build_controller(scheme, sim, small_config())
        metrics = run_trace(controller, trace)
        controller.assert_consistent()
        assert metrics.requests == len(trace)
        if scheme in ("rolo-p", "rolo-r"):
            assert controller.metrics.rotations >= 1
        if scheme in ("graid", "rolo-e"):
            assert controller.metrics.destage_cycles >= 1
