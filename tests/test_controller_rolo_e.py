"""Unit tests for RoLo-E (everything asleep except one logging pair)."""

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import RoloEController, run_trace
from repro.core.base import run_trace as run_trace_base
from repro.disk.models import ULTRASTAR_36Z15
from repro.disk.power import PowerState
from repro.sim import Simulator

KB = 1024
MB = 1024 * KB


def build(sim, **overrides):
    return RoloEController(sim, small_config(**overrides))


class TestWritePath:
    def test_writes_buffered_on_duty_pair_only(self, sim):
        controller = build(sim)
        # Write targeting pair 1 — must NOT touch pair 1's disks.
        run_trace_base(
            controller,
            make_trace([(0.0, "w", 64 * KB, 64 * KB)]),
            drain=False,
        )
        assert controller.primaries[0].foreground_ops == 1
        assert controller.mirrors[0].foreground_ops == 1
        assert controller.primaries[1].ops_completed == 0
        assert controller.mirrors[1].ops_completed == 0
        assert controller.primaries[1].state is PowerState.STANDBY

    def test_both_log_regions_charged(self, sim):
        controller = build(sim)
        run_trace_base(controller, write_burst(3), drain=False)
        assert controller.primary_logs[0].used == 3 * 64 * KB
        assert controller.mirror_logs[0].used == 3 * 64 * KB

    def test_writes_fast_sequential(self, sim):
        controller = build(sim)
        metrics = run_trace_base(controller, write_burst(10), drain=False)
        seq = ULTRASTAR_36Z15.transfer_time(64 * KB)
        assert metrics.response_time.mean < 5 * seq

    def test_dirty_covers_home_pair(self, sim):
        controller = build(sim)
        run_trace_base(
            controller,
            make_trace([(0.0, "w", 64 * KB, 64 * KB)]),
            drain=False,
        )
        assert controller.dirty_units_total() == 1


class TestReadPath:
    def test_recently_written_block_is_hit(self, sim):
        controller = build(sim)
        metrics = run_trace_base(
            controller,
            make_trace(
                [(0.0, "w", 64 * KB, 64 * KB), (1.0, "r", 64 * KB, 64 * KB)]
            ),
            drain=False,
        )
        assert metrics.read_hits == 1
        assert metrics.read_misses == 0
        # Served by the duty pair; home pair still asleep.
        assert controller.primaries[1].ops_completed == 0

    def test_cold_read_is_miss_with_spinup_penalty(self, sim):
        controller = build(sim)
        metrics = run_trace_base(
            controller,
            make_trace([(0.0, "r", 64 * KB, 64 * KB)]),
            drain=False,
        )
        assert metrics.read_misses == 1
        assert (
            metrics.read_response_time.max
            >= ULTRASTAR_36Z15.spin_up_time
        )
        assert controller.primaries[1].foreground_ops == 1

    def test_miss_populates_cache_for_next_read(self, sim):
        controller = build(sim)
        metrics = run_trace_base(
            controller,
            make_trace(
                [(0.0, "r", 64 * KB, 64 * KB), (30.0, "r", 64 * KB, 64 * KB)]
            ),
            drain=False,
        )
        assert metrics.read_misses == 1
        assert metrics.read_hits == 1

    def test_cache_disabled(self, sim):
        controller = build(sim, read_cache=False)
        metrics = run_trace_base(
            controller,
            make_trace(
                [(0.0, "r", 64 * KB, 64 * KB), (30.0, "r", 64 * KB, 64 * KB)]
            ),
            drain=False,
        )
        assert metrics.read_misses == 2

    def test_duty_pair_reads_always_hit(self, sim):
        controller = build(sim)
        metrics = run_trace_base(
            controller,
            make_trace([(0.0, "r", 0, 64 * KB)]),  # pair 0 == duty pair
            drain=False,
        )
        assert metrics.read_hits == 1

    def test_miss_woken_disk_returns_to_standby(self, sim):
        controller = build(sim, standby_return_s=2.0)
        run_trace_base(
            controller,
            make_trace([(0.0, "r", 64 * KB, 64 * KB)]),
            drain=False,
        )
        sim.run(until=sim.now + 30.0)
        assert controller.primaries[1].state is PowerState.STANDBY
        assert controller.primaries[1].power.spin_down_count == 1


class TestCentralizedDestage:
    def test_destage_rotates_duty_pair(self, sim):
        # 4MB regions, threshold 0.8 -> 52 writes of 64K trigger destage.
        controller = build(sim)
        run_trace(controller, write_burst(55, gap=0.05))
        assert controller.metrics.destage_cycles >= 1
        assert controller.metrics.rotations >= 1
        assert controller._duty_pair == 1

    def test_home_copies_consistent_after_destage(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(55, gap=0.05))
        assert controller.dirty_units_total() == 0
        controller.assert_consistent()

    def test_log_regions_reset_after_destage(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(55, gap=0.05))
        for region in controller.primary_logs + controller.mirror_logs:
            assert region.used == 0
            region.check_invariants()

    def test_non_duty_disks_asleep_after_cycle(self, sim):
        controller = build(sim)
        run_trace(controller, write_burst(55, gap=0.05))
        sim.run(until=sim.now + 60.0)
        duty = controller._duty_pair
        for i in range(2):
            if i == duty:
                continue
            assert controller.primaries[i].state is PowerState.STANDBY
            assert controller.mirrors[i].state is PowerState.STANDBY

    def test_destage_writes_both_home_copies(self, sim):
        controller = build(sim)
        # One write to pair 1, then drain: both P1 and M1 must be written.
        run_trace(
            controller, make_trace([(0.0, "w", 64 * KB, 64 * KB)])
        )
        assert controller.primaries[1].background_ops >= 1
        assert controller.mirrors[1].background_ops >= 1

    def test_spin_counts_high(self, sim):
        """The Table I effect: every cycle spins the whole array."""
        controller = build(sim)
        run_trace(controller, write_burst(55, gap=0.05))
        total_transitions = sum(
            d.power.spin_cycle_count for d in controller.all_disks()
        )
        # The off-duty pair spins up for the destage and the outgoing duty
        # pair spins down after the rotation: >= 4 transitions per cycle.
        assert total_transitions >= 4


class TestEnergy:
    def test_power_far_below_all_idle_floor(self, sim):
        controller = build(sim)
        metrics = run_trace_base(
            controller, write_burst(20, gap=1.0), drain=False
        )
        # 2 disks idle + 2 standby < 4 idle.
        assert metrics.mean_power_w < 2 * 10.2 + 2 * 2.5 + 2.0
