"""Unit tests for destage batching and the destage process."""

import pytest

from repro.core.destage import DestageProcess, coalesce_units
from repro.disk.disk import Disk, DiskOp, OpKind
from repro.disk.models import ULTRASTAR_36Z15
from repro.sim import Simulator

KB = 1024
UNIT = 64 * KB


class TestCoalesceUnits:
    def test_empty(self):
        assert coalesce_units([], UNIT, 4 * UNIT) == []

    def test_single(self):
        assert coalesce_units([0], UNIT, 4 * UNIT) == [(0, UNIT)]

    def test_adjacent_merge(self):
        units = [0, UNIT, 2 * UNIT]
        assert coalesce_units(units, UNIT, 8 * UNIT) == [(0, 3 * UNIT)]

    def test_gap_splits(self):
        units = [0, 2 * UNIT]
        assert coalesce_units(units, UNIT, 8 * UNIT) == [
            (0, UNIT),
            (2 * UNIT, UNIT),
        ]

    def test_batch_cap_respected(self):
        units = [i * UNIT for i in range(10)]
        batches = coalesce_units(units, UNIT, 3 * UNIT)
        assert all(nbytes <= 3 * UNIT for _, nbytes in batches)
        assert sum(nbytes for _, nbytes in batches) == 10 * UNIT

    def test_unsorted_input_handled(self):
        units = [2 * UNIT, 0, UNIT]
        assert coalesce_units(units, UNIT, 8 * UNIT) == [(0, 3 * UNIT)]

    def test_validation(self):
        with pytest.raises(ValueError):
            coalesce_units([0], 0, UNIT)
        with pytest.raises(ValueError):
            coalesce_units([0], UNIT, UNIT - 1)


def make_disks(sim, n=2):
    return [
        Disk(sim, ULTRASTAR_36Z15, f"D{i}") for i in range(n)
    ]


class TestDestageProcess:
    def test_copies_all_units(self, sim):
        src, dst = make_disks(sim)
        done = []
        process = DestageProcess(
            sim,
            "t",
            src,
            [dst],
            units=[0, UNIT, 4 * UNIT],
            unit_size=UNIT,
            batch_bytes=2 * UNIT,
            idle_gated=False,
            idle_grace_s=0.0,
            on_complete=done.append,
        )
        process.start()
        sim.run()
        assert done == [process]
        assert process.bytes_moved == 3 * UNIT
        assert src.ops_completed == 2  # two batches read
        assert dst.ops_completed == 2

    def test_empty_units_complete_immediately(self, sim):
        src, dst = make_disks(sim)
        done = []
        process = DestageProcess(
            sim, "t", src, [dst], [], UNIT, UNIT, False, 0.0,
            on_complete=done.append,
        )
        process.start()
        assert done == [process]
        assert process.done

    def test_multiple_targets_each_written(self, sim):
        src, d1, d2 = make_disks(sim, 3)
        process = DestageProcess(
            sim, "t", src, [d1, d2], [0], UNIT, UNIT, False, 0.0
        )
        process.start()
        sim.run()
        assert d1.ops_completed == 1
        assert d2.ops_completed == 1
        assert process.bytes_moved == UNIT

    def test_requires_target(self, sim):
        src, = make_disks(sim, 1)
        with pytest.raises(ValueError):
            DestageProcess(sim, "t", src, [], [0], UNIT, UNIT, False, 0.0)

    def test_idle_gated_waits_for_grace(self, sim):
        src, dst = make_disks(sim)
        process = DestageProcess(
            sim, "t", src, [dst], [0], UNIT, UNIT,
            idle_gated=True, idle_grace_s=0.5,
        )
        process.start()
        sim.run()
        assert process.done
        assert process.finished_at >= 0.5

    def test_idle_gated_defers_to_foreground(self, sim):
        """A foreground burst keeps resetting the grace window."""
        src, dst = make_disks(sim)
        process = DestageProcess(
            sim, "t", src, [dst], [0], UNIT, UNIT,
            idle_gated=True, idle_grace_s=0.2,
        )
        process.start()
        # A long foreground op (64 MiB ~ 1.2 s) arriving inside the grace
        # window: at timer expiry the disk is still busy, so the batch must
        # wait for the op to drain plus a fresh grace interval.
        sim.schedule(
            0.1,
            lambda: src.submit(DiskOp(OpKind.READ, 8_000_000, 64 * 1024 * KB)),
        )
        sim.run()
        assert process.done
        foreground_finish = 0.1 + ULTRASTAR_36Z15.transfer_time(
            64 * 1024 * KB
        )
        assert process.finished_at > foreground_finish + 0.2

    def test_background_priority_used(self, sim):
        src, dst = make_disks(sim)
        process = DestageProcess(
            sim, "t", src, [dst], [0, 4 * UNIT, 8 * UNIT], UNIT, UNIT,
            idle_gated=False, idle_grace_s=0.0,
        )
        process.start()
        sim.run()
        assert src.background_ops == 3
        assert src.foreground_ops == 0

    def test_remaining_batches(self, sim):
        src, dst = make_disks(sim)
        process = DestageProcess(
            sim, "t", src, [dst], [0, 4 * UNIT], UNIT, UNIT, False, 0.0
        )
        assert process.remaining_batches == 2
        process.start()
        sim.run()
        assert process.remaining_batches == 0

    def test_listeners_detached_after_completion(self, sim):
        src, dst = make_disks(sim)
        process = DestageProcess(
            sim, "t", src, [dst], [0], UNIT, UNIT,
            idle_gated=True, idle_grace_s=0.01,
        )
        process.start()
        sim.run()
        assert process.done
        # After completion the gate disks no longer reference the process.
        assert all(
            process._on_disk_idle not in d._idle_listeners
            for d in (src, dst)
        )
