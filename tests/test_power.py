"""Unit tests for the power model and energy accounting."""

import pytest

from repro.disk.models import ULTRASTAR_36Z15
from repro.disk.power import EnergyAccountant, PowerModel, PowerState


@pytest.fixture
def model():
    return PowerModel(ULTRASTAR_36Z15)


class TestPowerModel:
    def test_basic_draws(self, model):
        assert model.draw(PowerState.ACTIVE) == 13.5
        assert model.draw(PowerState.IDLE) == 10.2
        assert model.draw(PowerState.STANDBY) == 2.5

    def test_transition_draws_reproduce_datasheet_energy(self, model):
        spec = ULTRASTAR_36Z15
        up = model.draw(PowerState.SPINNING_UP) * spec.spin_up_time
        down = model.draw(PowerState.SPINNING_DOWN) * spec.spin_down_time
        assert up == pytest.approx(spec.spin_up_energy)
        assert down == pytest.approx(spec.spin_down_energy)


class TestPowerStateFlags:
    def test_spun_up(self):
        assert PowerState.ACTIVE.spun_up
        assert PowerState.IDLE.spun_up
        assert not PowerState.STANDBY.spun_up
        assert not PowerState.SPINNING_UP.spun_up
        assert not PowerState.SPINNING_DOWN.spun_up


class TestEnergyAccountant:
    def test_idle_integration(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        acct.close(10.0)
        assert acct.energy_joules == pytest.approx(10 * 10.2)
        assert acct.state_durations[PowerState.IDLE] == pytest.approx(10.0)

    def test_state_sequence_energy(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        acct.transition(5.0, PowerState.ACTIVE)
        acct.transition(8.0, PowerState.IDLE)
        acct.close(10.0)
        expected = 5 * 10.2 + 3 * 13.5 + 2 * 10.2
        assert acct.energy_joules == pytest.approx(expected)

    def test_full_spin_cycle_energy(self, model):
        spec = ULTRASTAR_36Z15
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        acct.transition(10.0, PowerState.SPINNING_DOWN)
        acct.transition(10.0 + spec.spin_down_time, PowerState.STANDBY)
        acct.transition(20.0, PowerState.SPINNING_UP)
        acct.transition(20.0 + spec.spin_up_time, PowerState.IDLE)
        acct.close(40.0)
        idle_time = 10.0 + (40.0 - 20.0 - spec.spin_up_time)
        standby_time = 20.0 - 10.0 - spec.spin_down_time
        expected = (
            idle_time * 10.2
            + standby_time * 2.5
            + spec.spin_down_energy
            + spec.spin_up_energy
        )
        assert acct.energy_joules == pytest.approx(expected)

    def test_spin_counts(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        acct.transition(1.0, PowerState.SPINNING_DOWN)
        acct.transition(2.5, PowerState.STANDBY)
        acct.transition(5.0, PowerState.SPINNING_UP)
        acct.transition(15.9, PowerState.IDLE)
        assert acct.spin_up_count == 1
        assert acct.spin_down_count == 1
        assert acct.spin_cycle_count == 2

    def test_close_does_not_count_spins(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        acct.transition(1.0, PowerState.SPINNING_UP)
        acct.close(2.0)
        acct.close(3.0)
        assert acct.spin_up_count == 1

    def test_time_backwards_rejected(self, model):
        acct = EnergyAccountant(model, 5.0, PowerState.IDLE)
        with pytest.raises(ValueError):
            acct.transition(4.0, PowerState.ACTIVE)

    def test_duty_fraction(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        acct.transition(4.0, PowerState.ACTIVE)
        assert acct.duty_fraction(PowerState.IDLE, 8.0) == pytest.approx(0.5)
        assert acct.duty_fraction(PowerState.ACTIVE, 8.0) == pytest.approx(0.5)

    def test_duty_fraction_zero_elapsed(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        assert acct.duty_fraction(PowerState.IDLE, 0.0) == 0.0

    def test_mean_power(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.STANDBY)
        assert acct.mean_power(10.0) == pytest.approx(2.5)

    def test_energy_at_includes_open_span(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        acct.transition(5.0, PowerState.ACTIVE)
        assert acct.energy_at(7.0) == pytest.approx(5 * 10.2 + 2 * 13.5)
        # energy_at must not mutate accounting state.
        assert acct.energy_joules == pytest.approx(5 * 10.2)

    def test_energy_at_time_backwards_rejected(self, model):
        acct = EnergyAccountant(model, 0.0, PowerState.IDLE)
        acct.transition(5.0, PowerState.ACTIVE)
        with pytest.raises(ValueError):
            acct.energy_at(4.0)

    def test_elapsed(self, model):
        acct = EnergyAccountant(model, 2.0, PowerState.IDLE)
        assert acct.elapsed(7.0) == pytest.approx(5.0)
