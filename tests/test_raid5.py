"""Tests for the RAID5 substrate and the parity-logging RoLo-5 (§VII)."""

import pytest

from repro.core import Raid5Config, build_raid5_controller
from repro.core.base import run_trace
from repro.raid.raid5 import Raid5Layout, Raid5Segment
from repro.sim import Simulator
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from tests.conftest import make_trace, write_burst

KB = 1024
MB = 1024 * KB


@pytest.fixture
def layout():
    return Raid5Layout(n_disks=5, stripe_unit=64 * KB, data_capacity=16 * MB)


class TestRaid5Layout:
    def test_validation(self):
        with pytest.raises(ValueError):
            Raid5Layout(2, 64 * KB, MB)
        with pytest.raises(ValueError):
            Raid5Layout(5, 0, MB)
        with pytest.raises(ValueError):
            Raid5Layout(5, 64 * KB, 64 * KB + 1)
        with pytest.raises(ValueError):
            Raid5Segment(-1, 0, 1, 0)

    def test_logical_capacity(self, layout):
        assert layout.logical_capacity == 16 * MB * 4  # 4 data disks

    def test_parity_rotates_over_all_disks(self, layout):
        disks = {layout.parity_disk(r) for r in range(5)}
        assert disks == {0, 1, 2, 3, 4}

    def test_parity_distinct_from_data(self, layout):
        for row in range(10):
            parity = layout.parity_disk(row)
            data = {
                layout.data_disk(row, c)
                for c in range(layout.data_disks_per_row)
            }
            assert parity not in data
            assert len(data) == 4

    def test_map_extent_conserves_bytes(self, layout):
        for offset, nbytes in [(0, 64 * KB), (100, 300 * KB), (5 * KB, 7)]:
            segs = layout.map_extent(offset, nbytes)
            assert sum(s.nbytes for s in segs) == nbytes

    def test_segments_avoid_parity_disk(self, layout):
        segs = layout.map_extent(0, 4 * 64 * KB)  # exactly one row
        rows = {s.row for s in segs}
        assert rows == {0}
        parity = layout.parity_disk(0)
        assert all(s.disk != parity for s in segs)

    def test_round_trip(self, layout):
        for row in (0, 3, 17):
            for column in range(4):
                logical = layout.to_logical(row, column, 5)
                seg = layout.map_extent(logical, 1)[0]
                assert seg.row == row
                assert seg.disk == layout.data_disk(row, column)

    def test_out_of_range(self, layout):
        with pytest.raises(ValueError):
            layout.map_extent(layout.logical_capacity, 1)
        with pytest.raises(ValueError):
            layout.parity_disk(layout.rows)

    def test_full_stripe_detection(self, layout):
        row_bytes = 4 * 64 * KB
        assert layout.is_full_stripe(0, row_bytes, 0)
        assert layout.is_full_stripe(0, 2 * row_bytes, 1)
        assert not layout.is_full_stripe(0, row_bytes - 1, 0)
        assert not layout.is_full_stripe(64 * KB, row_bytes, 0)

    def test_iter_row_extents_partitions(self, layout):
        row_bytes = 4 * 64 * KB
        pieces = list(layout.iter_row_extents(100 * KB, row_bytes))
        assert sum(p[2] for p in pieces) == row_bytes
        assert [p[0] for p in pieces] == [0, 1]

    def test_rows_touched(self, layout):
        touched = layout.rows_touched(0, 5 * 64 * KB)
        assert touched == {0: 4, 1: 1}

    def test_spread_keeps_parity_data_relation(self):
        layout = Raid5Layout(5, 64 * KB, 16 * MB, spread=True)
        seg = layout.map_extent(0, 64 * KB)[0]
        parity_disk, parity_offset = layout.parity_offset(seg.row)
        assert parity_disk != seg.disk
        # Parity sits at the same physical row as the data it protects.
        assert parity_offset == (seg.disk_offset // (64 * KB)) * 64 * KB


def small_raid5(**overrides):
    defaults = dict(
        n_disks=5,
        stripe_unit=64 * KB,
        free_space_bytes=4 * MB,
        idle_grace_s=0.01,
    )
    defaults.update(overrides)
    return Raid5Config(**defaults)


class TestRaid5Controller:
    def test_small_write_is_rmw_on_data_and_parity(self, sim):
        controller = build_raid5_controller("raid5", sim, small_raid5())
        metrics = run_trace(controller, write_burst(1))
        # 1 data read + 1 data write + 1 parity read + 1 parity write.
        total_ops = sum(d.ops_completed for d in controller.disks)
        assert total_ops == 4
        assert controller.parity_rmw_count == 1

    def test_full_stripe_write_skips_reads(self, sim):
        controller = build_raid5_controller("raid5", sim, small_raid5())
        row_bytes = 4 * 64 * KB
        run_trace(controller, make_trace([(0.0, "w", 0, row_bytes)]))
        reads = sum(
            1 for d in controller.disks for _ in range(0)
        )
        total_ops = sum(d.ops_completed for d in controller.disks)
        # 4 data writes + 1 parity write, no reads.
        assert total_ops == 5
        assert controller.parity_rmw_count == 0

    def test_read_path_single_op(self, sim):
        controller = build_raid5_controller("raid5", sim, small_raid5())
        run_trace(controller, make_trace([(0.0, "r", 0, 64 * KB)]))
        assert sum(d.ops_completed for d in controller.disks) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Raid5Config(n_disks=2)
        with pytest.raises(ValueError):
            Raid5Config(rotate_threshold=0.0)
        with pytest.raises(ValueError):
            Raid5Config(free_space_bytes=0)

    def test_scaled(self):
        cfg = Raid5Config().scaled(0.01)
        assert cfg.free_space_bytes % cfg.stripe_unit == 0
        assert cfg.free_space_bytes < Raid5Config().free_space_bytes


class TestRolo5Controller:
    def test_small_write_logs_delta_instead_of_parity_rmw(self, sim):
        controller = build_raid5_controller("rolo-5", sim, small_raid5())
        from repro.core.base import run_trace as rt

        metrics = rt(controller, write_burst(1), drain=False)
        # 1 data read + 1 data write + 1 log append = 3 ops, no parity RMW.
        total_ops = sum(d.ops_completed for d in controller.disks)
        assert total_ops == 3
        assert controller.parity_rmw_count == 0
        assert controller.metrics.logged_bytes == 64 * KB
        assert controller.dirty_units_total() == 1

    def test_drain_updates_all_parity(self, sim):
        controller = build_raid5_controller("rolo-5", sim, small_raid5())
        # 10 consecutive units span rows 0-2 (4 data units per row).
        run_trace(controller, write_burst(10))
        controller.assert_consistent()
        assert controller.metrics.destaged_bytes == 3 * 64 * KB

    def test_faster_than_baseline_on_small_writes(self):
        trace = generate_trace(
            SyntheticTraceConfig(
                duration_s=60.0,
                iops=30.0,
                write_ratio=1.0,
                avg_request_bytes=16 * KB,
                footprint_bytes=32 * MB,
                seed=2,
            )
        )

        def run(scheme):
            sim = Simulator()
            controller = build_raid5_controller(scheme, sim, small_raid5())
            metrics = run_trace(controller, trace)
            controller.assert_consistent()
            return metrics

        baseline = run("raid5")
        rolo = run("rolo-5")
        assert rolo.response_time.mean < baseline.response_time.mean

    def test_rotation_triggers_parity_round(self, sim):
        # 4MB region, threshold 0.8 -> 52 appends of 64K rotate.
        controller = build_raid5_controller("rolo-5", sim, small_raid5())
        run_trace(controller, write_burst(60, gap=0.05))
        assert controller.metrics.rotations >= 1
        assert controller.metrics.destage_cycles >= 1
        controller.assert_consistent()

    def test_log_space_reclaimed_after_round(self, sim):
        controller = build_raid5_controller("rolo-5", sim, small_raid5())
        run_trace(controller, write_burst(60, gap=0.05))
        for region in controller.log_regions:
            region.check_invariants()
            assert region.live_bytes(0) == 0

    def test_full_stripe_write_bypasses_log(self, sim):
        controller = build_raid5_controller("rolo-5", sim, small_raid5())
        row_bytes = 4 * 64 * KB
        run_trace(controller, make_trace([(0.0, "w", 0, row_bytes)]))
        assert controller.metrics.logged_bytes == 0
        assert controller.dirty_units_total() == 0

    def test_fallback_to_rmw_when_log_full(self, sim):
        controller = build_raid5_controller(
            "rolo-5", sim, small_raid5(free_space_bytes=256 * KB)
        )
        run_trace(controller, write_burst(30, gap=0.001))
        # Some writes fell back to the synchronous path; all consistent.
        controller.assert_consistent()

    def test_parity_updates_are_background(self, sim):
        controller = build_raid5_controller("rolo-5", sim, small_raid5())
        run_trace(controller, write_burst(60, gap=0.05))
        background = sum(d.background_ops for d in controller.disks)
        assert background >= 2  # parity read+write pairs
