"""Causal span tracing and critical-path latency attribution.

The acceptance contract (ISSUE 10): for every scheme, every request's
six-phase decomposition (queue / spinup / interference / seek / rotation
/ transfer) sums to its measured response time exactly, span-traced runs
stay byte-identical to plain runs (the PR 9 observability contract), and
the causal edges — RoLo-E spin-up waits, destage interference — name
their culprit.
"""

import json
import types

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import (
    Raid5Config,
    build_controller,
    build_raid5_controller,
    run_trace,
)
from repro.disk.disk import Disk, Scheduler
from repro.disk.mechanical import MechanicalModel
from repro.disk.models import ULTRASTAR_36Z15
from repro.disk.power import PowerState
from repro.faults import FaultSchedule, run_faulted
from repro.obs import (
    PHASES,
    RecordingTracer,
    SpanRecorder,
    attribute_events,
    attribution_summary,
    format_attribution,
    read_events,
    render_explorer_html,
    slowest_requests,
    summarize_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import Simulator

KB = 1024
MB = 1024 * KB
ALL_SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")
PARITY_SCHEMES = ("raid5", "rolo-5")


def mixed_trace(writes: int = 40, reads: int = 10, gap: float = 0.05):
    spec = [
        (i * gap, "w", (i % 16) * 64 * KB, 64 * KB) for i in range(writes)
    ]
    spec += [
        (writes * gap + i * gap, "r", (i % 20) * 64 * KB, 64 * KB)
        for i in range(reads)
    ]
    return make_trace(spec, name="mixed")


def spanned_run(scheme, trace, config=None):
    sim = Simulator()
    recorder = SpanRecorder()
    controller = build_controller(
        scheme, sim, config or small_config(), tracer=recorder
    )
    metrics = run_trace(controller, trace)
    return metrics, recorder


def assert_exact_sums(attrs):
    """Every decomposition sums to the measured latency, no phase dips
    meaningfully negative."""
    assert attrs
    for a in attrs:
        total = sum(a.phases.values())
        assert abs(total - a.measured) <= 1e-9, (a.rid, total, a.measured)
        for phase in PHASES:
            assert a.phases[phase] >= -1e-9, (a.rid, phase)


# ----------------------------------------------------------------------
# Mechanics: the span layer's phase arithmetic mirrors service_time
# ----------------------------------------------------------------------
class TestSeekRotation:
    def test_matches_service_time(self):
        mech = MechanicalModel(ULTRASTAR_36Z15)
        rate = ULTRASTAR_36Z15.sustained_transfer_rate
        cases = [
            (0, 0, 64 * KB),  # sequential: transfer only
            (0, 1_000_000, 4 * KB),
            (5_000_000, 5_000_000, 128 * KB),
            (70_000_000, 1_000, 64 * KB),
            (1_000, 1_024, 512),  # same cylinder: rotation only
        ]
        for head, start, nbytes in cases:
            seek, rot = mech.seek_rotation(head, start)
            expected = mech.service_time(head, start, nbytes)
            assert seek + rot + nbytes / rate == pytest.approx(
                expected, abs=1e-15
            )

    def test_sequential_is_free(self):
        mech = MechanicalModel(ULTRASTAR_36Z15)
        assert mech.seek_rotation(1234, 1234) == (0.0, 0.0)


# ----------------------------------------------------------------------
# Completion dispatch specialization (the PR 9 contract, extended)
# ----------------------------------------------------------------------
class TestCompletionBinding:
    def _disk(self, tracer):
        return Disk(
            Simulator(),
            ULTRASTAR_36Z15,
            "D0",
            initial_state=PowerState.IDLE,
            scheduler=Scheduler("fcfs"),
            tracer=tracer,
        )

    def test_plain_disk_binds_fast_completion(self):
        disk = self._disk(None)
        assert disk._complete.__func__ is Disk._complete_fast

    def test_recording_tracer_binds_observed_completion(self):
        disk = self._disk(RecordingTracer())
        assert disk._complete.__func__ is Disk._complete_observed

    def test_span_recorder_binds_spanned_completion(self):
        disk = self._disk(SpanRecorder())
        assert disk._complete.__func__ is Disk._complete_spanned


# ----------------------------------------------------------------------
# Tentpole: exact attribution across every scheme, clean and faulted
# ----------------------------------------------------------------------
class TestAttributionSums:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_clean_run_sums_exact(self, scheme):
        metrics, recorder = spanned_run(scheme, mixed_trace())
        attrs = attribute_events(recorder.sorted_events())
        assert len(attrs) == metrics.requests
        assert_exact_sums(attrs)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_slowdown_run_sums_exact(self, scheme):
        recorder = SpanRecorder()
        result = run_faulted(
            scheme,
            small_config(),
            write_burst(40, gap=0.05),
            FaultSchedule.parse("slow@0:P0:10x30"),
            tracer=recorder,
        )
        attrs = attribute_events(recorder.sorted_events())
        assert len(attrs) == result.metrics.requests
        assert_exact_sums(attrs)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_failure_run_sums_exact(self, scheme):
        recorder = SpanRecorder()
        result = run_faulted(
            scheme,
            small_config(),
            write_burst(40, gap=0.05),
            FaultSchedule.parse("fail@1.2:M0"),
            tracer=recorder,
        )
        assert result.consistent
        attrs = attribute_events(recorder.sorted_events())
        assert_exact_sums(attrs)

    @pytest.mark.parametrize("scheme", PARITY_SCHEMES)
    def test_parity_schemes_sum_exact(self, scheme):
        sim = Simulator()
        recorder = SpanRecorder()
        controller = build_raid5_controller(
            scheme, sim, Raid5Config(n_disks=4).scaled(0.01), tracer=recorder
        )
        metrics = run_trace(controller, mixed_trace())
        attrs = attribute_events(recorder.sorted_events())
        assert len(attrs) == metrics.requests
        assert_exact_sums(attrs)


class TestByteIdentity:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES + PARITY_SCHEMES)
    def test_span_traced_equals_plain(self, scheme):
        trace = mixed_trace()
        if scheme in PARITY_SCHEMES:
            config = Raid5Config(n_disks=4).scaled(0.01)
            build = build_raid5_controller
        else:
            config = small_config()
            build = build_controller
        sim = Simulator()
        spanned = run_trace(
            build(scheme, sim, config, tracer=SpanRecorder()), trace
        )
        sim = Simulator()
        plain = run_trace(build(scheme, sim, config), trace)
        assert json.dumps(spanned.to_dict(), sort_keys=True) == json.dumps(
            plain.to_dict(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Causal edges: spin-up waits and destage interference name a culprit
# ----------------------------------------------------------------------
class TestCausalEdges:
    def test_rolo_e_cold_read_charges_spinup(self):
        # Writes keep the duty pair busy; the cold reads map to the
        # sleeping pair, so their critical path is dominated by the
        # spin-up wait of a STANDBY home disk (§III-D read miss).
        spec = [(i * 0.05, "w", i * 64 * KB, 64 * KB) for i in range(4)]
        spec += [
            (1.0, "r", 8 * MB + 64 * KB, 64 * KB),
            (1.1, "r", 8 * MB + 3 * 64 * KB, 64 * KB),
        ]
        _, recorder = spanned_run("rolo-e", make_trace(spec))
        attrs = attribute_events(recorder.sorted_events())
        assert_exact_sums(attrs)
        cold = [a for a in attrs if a.phases["spinup"] > 0]
        assert cold, "cold reads should pay a spin-up wait"
        for a in cold:
            assert a.culprit == f"spin-up:{a.disk}"
            assert a.phases["spinup"] > 1.0  # seconds, not mechanics noise

    @pytest.mark.parametrize("scheme", ("rolo-p", "rolo-r"))
    def test_destage_interference_names_process(self, scheme):
        # Saturate a tiny log so destaging overlaps foreground reads on
        # the same spindles; interfered requests must carry the destage
        # process's name as their causal culprit.
        spec = [(i * 0.02, "w", (i % 40) * 64 * KB, 64 * KB) for i in range(400)]
        spec += [
            (i * 0.02 + 0.01, "r", ((i + 7) % 40) * 64 * KB + 8 * MB, 64 * KB)
            for i in range(400)
        ]
        _, recorder = spanned_run(
            scheme,
            make_trace(sorted(spec)),
            config=small_config(free_space_bytes=1 * MB),
        )
        attrs = attribute_events(recorder.sorted_events())
        assert_exact_sums(attrs)
        interfered = [a for a in attrs if a.phases["interference"] > 0]
        assert interfered
        assert any("destage" in (a.culprit or "") for a in interfered)


# ----------------------------------------------------------------------
# Summary / report plumbing
# ----------------------------------------------------------------------
class TestSummary:
    def test_quantile_rows_are_real_requests(self):
        _, recorder = spanned_run("rolo-p", mixed_trace())
        attrs = attribute_events(recorder.sorted_events())
        summary = attribution_summary(attrs)
        assert summary["count"] == len(attrs)
        by_rid = {a.rid: a for a in attrs}
        for entry in summary["quantiles"].values():
            pick = by_rid[entry["rid"]]
            assert entry["latency_s"] == pick.measured
            assert sum(entry["phases"].values()) == pytest.approx(
                entry["latency_s"], abs=1e-9
            )
        mean = summary["mean"]
        assert sum(mean["phases"].values()) == pytest.approx(
            mean["latency_s"], abs=1e-9
        )
        text = format_attribution(summary)
        assert "p95" in text and "queue" in text

    def test_slowest_requests_ordering(self):
        _, recorder = spanned_run("rolo-p", mixed_trace())
        attrs = attribute_events(recorder.sorted_events())
        slow = slowest_requests(attrs, 5)
        assert len(slow) == 5
        assert all(
            slow[i].measured >= slow[i + 1].measured
            for i in range(len(slow) - 1)
        )
        assert slow[0].measured == max(a.measured for a in attrs)

    def test_report_gains_attribution_columns(self):
        from repro.experiments.runreport import (
            build_run_report,
            render_html,
            render_markdown,
            report_cells,
        )

        cells = report_cells(
            schemes=["rolo-p"], workloads=["rsrch_2"], scale=0.004, n_pairs=2
        )
        report = build_run_report(cells, attribution=True)
        assert report["cells"][0]["attribution"]["count"] > 0
        markdown = render_markdown(report)
        assert "Critical-path attribution" in markdown
        assert "spin-up" in markdown
        html_text = render_html(report)
        assert "Critical-path attribution" in html_text


# ----------------------------------------------------------------------
# Satellites: flow events, lazy reader, phase totals, explorer
# ----------------------------------------------------------------------
class TestExportSatellites:
    @pytest.fixture(scope="class")
    def spanned_events(self):
        _, recorder = spanned_run("rolo-p", mixed_trace())
        return recorder.sorted_events()

    def test_chrome_flow_events_link_request_spans(self, spanned_events):
        document = to_chrome_trace(spanned_events)
        flows = [
            r
            for r in document["traceEvents"]
            if r.get("cat") == "request_flow"
        ]
        assert flows
        by_id = {}
        for record in flows:
            by_id.setdefault(record["id"], []).append(record["ph"])
        for phases in by_id.values():
            # every chain starts with "s" and terminates with "f"
            assert phases[0] == "s"
            assert phases[-1] == "f"
            assert all(p == "t" for p in phases[1:-1])

    def test_chrome_round_trip_skips_flow_phases(
        self, spanned_events, tmp_path
    ):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(spanned_events, path)
        loaded = list(read_events(path))
        assert len(loaded) == len(spanned_events)

    def test_read_events_streams_jsonl_lazily(self, spanned_events, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(spanned_events, path)
        stream = read_events(path)
        assert isinstance(stream, types.GeneratorType)
        assert list(stream) == spanned_events

    def test_summarize_reports_phase_totals(self, spanned_events):
        text = summarize_events(iter(spanned_events))
        assert "span phases over" in text
        assert "seek=" in text and "queued=" in text

    def test_explorer_html_renders(self, spanned_events):
        html_text = render_explorer_html(spanned_events, top=3)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<script" not in html_text  # self-contained, no JS
        assert "<svg" in html_text
        for disk in ("P0", "M0", "P1", "M1"):
            assert disk in html_text
        for phase in PHASES:
            assert phase in html_text

    def test_explorer_handles_plain_trace(self):
        # A non-spanned RecordingTracer stream still renders (no span
        # trees, but the power lanes and occupancy survive).
        sim = Simulator()
        tracer = RecordingTracer()
        controller = build_controller(
            "rolo-p", sim, small_config(), tracer=tracer
        )
        run_trace(controller, mixed_trace())
        html_text = render_explorer_html(tracer.sorted_events(), top=2)
        assert "<svg" in html_text
