"""Differential verification harness: reference model, fuzzer, shrinking.

Three pillars:

* **parity** — the lockstep reference model and invariant checker report
  zero violations on every scheme (mirrored and parity alike), and their
  presence leaves the run byte-identical to an unchecked one;
* **fuzz** — a seeded 50-scenario sweep (the CI smoke's shape) is green,
  and its results are bit-identical across serial, parallel, and
  warm-cache execution;
* **mutation smoke** — a deliberately planted destage-accounting bug is
  detected, shrunk to a minimal reproducer, round-tripped through the
  JSON artifact, and replayed through the CLI.
"""

import json

import pytest

from repro.core.destage import DestageProcess
from repro.experiments import cache as result_cache
from repro.faults.injector import run_faulted
from repro.faults.schedule import FaultSchedule
from repro.traces.compiled import truncate_trace
from repro.verify import (
    InvariantChecker,
    ReferenceModel,
    Scenario,
    VerifyResult,
    clear_memo,
    generate_scenarios,
    load_scenario,
    run_fuzz,
    run_scenario,
    shrink,
    write_artifact,
)

MIRRORED_SCHEMES = ["raid10", "graid", "rolo-p", "rolo-r", "rolo-e"]
ALL_SCHEMES = MIRRORED_SCHEMES + ["raid5", "rolo-5"]


@pytest.fixture(autouse=True)
def _no_cache():
    result_cache.configure(enabled=False)
    clear_memo()
    yield
    result_cache.configure(enabled=False)
    clear_memo()


def scenario_for(scheme, **overrides):
    base = dict(
        scheme=scheme,
        workload="web_1",
        scale=0.02,
        n_pairs=2,
        seed=8,
        n_requests=120,
    )
    base.update(overrides)
    return Scenario(**base)


# ---------------------------------------------------------------------------
# Reference-model parity across every scheme
# ---------------------------------------------------------------------------
class TestReferenceParity:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_clean_run_has_zero_violations(self, scheme):
        result = run_scenario(scenario_for(scheme))
        assert result.ok, result.violations
        assert result.consistent
        assert result.violations == []
        assert result.oracle_checks >= 1

    @pytest.mark.parametrize("scheme", MIRRORED_SCHEMES)
    def test_faulted_run_has_zero_violations(self, scheme):
        result = run_scenario(scenario_for(scheme, fault_spec="fail@5:M0"))
        assert result.ok, result.violations
        assert result.lost_blocks == 0

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_read_heavy_run_checks_reads(self, scheme):
        result = run_scenario(scenario_for(scheme))
        # web_1's prefix mixes reads and writes, so read-your-writes
        # actually exercised (src2_2's head would give zero reads).
        assert result.reads_checked > 0
        assert result.invariant_sweeps > 0

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_verified_run_is_byte_identical(self, scheme):
        """The whole harness observes only: metrics match exactly."""
        s = scenario_for(scheme)
        prefix = truncate_trace(s.build_trace(), s.n_requests)
        plain = run_faulted(
            s.scheme, s.resolve_config(), prefix, s.schedule()
        )
        verified = run_scenario(s)
        assert json.dumps(
            plain.metrics.to_dict(), sort_keys=True
        ) == json.dumps(verified.metrics.to_dict(), sort_keys=True)

    @pytest.mark.parametrize("scheme", MIRRORED_SCHEMES)
    def test_faulted_verified_run_is_byte_identical(self, scheme):
        s = scenario_for(scheme, fault_spec="fail@5:M0,slow@2:P0:3x4")
        prefix = truncate_trace(s.build_trace(), s.n_requests)
        plain = run_faulted(
            s.scheme, s.resolve_config(), prefix, s.schedule()
        )
        verified = run_scenario(s)
        assert json.dumps(
            plain.metrics.to_dict(), sort_keys=True
        ) == json.dumps(verified.metrics.to_dict(), sort_keys=True)

    def test_reference_model_snapshot_round_trips(self):
        s = scenario_for("rolo-p")
        result = run_scenario(s)
        assert result.oracle is not None
        restored = ReferenceModel.from_dict(result.oracle)
        assert restored.to_dict()["clauses"] == result.oracle["clauses"]
        assert [c.to_dict() for c in restored.checks] == result.oracle[
            "checks"
        ]


# ---------------------------------------------------------------------------
# Scenario plumbing
# ---------------------------------------------------------------------------
class TestScenarioPlumbing:
    def test_scenario_round_trips(self):
        s = scenario_for("rolo-e", fault_spec="fail@5:M0")
        assert Scenario.from_dict(s.to_dict()) == s

    def test_clean_scenario_builds_empty_schedule(self):
        assert len(scenario_for("raid10").schedule()) == 0

    def test_generation_is_seed_deterministic(self):
        a = generate_scenarios(30, seed=8)
        b = generate_scenarios(30, seed=8)
        assert a == b
        assert a != generate_scenarios(30, seed=9)

    def test_generation_never_faults_parity_schemes(self):
        for s in generate_scenarios(
            200, seed=8
        ):
            if s.scheme in ("raid5", "rolo-5"):
                assert s.fault_spec == ""

    def test_verify_result_round_trips(self):
        result = run_scenario(scenario_for("graid"))
        restored = VerifyResult.from_dict(result.to_dict())
        assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )


# ---------------------------------------------------------------------------
# The seeded fuzz sweep (CI smoke shape) + seed stability
# ---------------------------------------------------------------------------
class TestFuzzSweep:
    def test_seeded_sweep_green(self):
        results = run_fuzz(50, seed=8, jobs=1)
        assert len(results) == 50
        failures = [r for r in results if not r.ok]
        assert failures == [], [
            (r.scenario.label(), r.violations[:2]) for r in failures
        ]
        # The sweep must actually exercise both checkers and faults.
        assert sum(r.reads_checked for r in results) > 0
        assert sum(r.invariant_sweeps for r in results) > 0
        assert any(r.scenario.fault_spec for r in results)

    def test_seed_stability_across_execution_paths(self, tmp_path):
        """Same seed => identical snapshots: serial, warm-cache, jobs=2."""
        result_cache.configure(
            directory=str(tmp_path / "cache"), enabled=True
        )
        serial = run_fuzz(12, seed=8, jobs=1)
        clear_memo()
        warm = run_fuzz(12, seed=8, jobs=1)  # persistent-cache hits only
        clear_memo()
        result_cache.configure(
            directory=str(tmp_path / "cache2"), enabled=True
        )
        parallel = run_fuzz(12, seed=8, jobs=2)

        def snapshots(results):
            return [
                json.dumps(r.to_dict(), sort_keys=True) for r in results
            ]

        assert snapshots(serial) == snapshots(warm)
        assert snapshots(serial) == snapshots(parallel)


# ---------------------------------------------------------------------------
# Planted-bug mutation smoke: detect, shrink, reproduce
# ---------------------------------------------------------------------------
@pytest.fixture
def planted_destage_bug(monkeypatch):
    """Deliberately drop the last completed batch from destage accounting.

    ``completed_units`` feeds the oracle's ``note_destage``; the planted
    bug under-reports what landed on the mirror, so quiesced units lack
    the mirror copy in their clauses — exactly the class of bookkeeping
    slip the mirror-agreement check exists to catch.  Controller state is
    untouched, so only the verifier can see it.
    """

    def buggy(self):
        upto = self._next_batch - (1 if self._in_flight else 0)
        units = []
        for batch in self._batches[: max(0, upto - 1)]:
            units.extend(self._batch_units(batch))
        return units

    monkeypatch.setattr(DestageProcess, "completed_units", buggy)


class TestPlantedBug:
    SCENARIO = Scenario(
        scheme="rolo-p",
        workload="src2_2",
        scale=0.01,
        n_pairs=2,
        seed=8,
        n_requests=120,
    )

    def test_bug_is_detected(self, planted_destage_bug):
        result = run_scenario(self.SCENARIO)
        assert not result.ok
        assert any(
            v["check"] == "mirror-agreement" for v in result.violations
        )

    def test_shrinks_to_minimal_reproducer(
        self, planted_destage_bug, tmp_path
    ):
        minimal = shrink(self.SCENARIO)
        assert minimal.n_requests <= 10
        result = run_scenario(minimal)
        assert not result.ok

        path = write_artifact(tmp_path, minimal, result)
        payload = json.loads(path.read_text())
        assert payload["command"] == f"rolo verify repro {path}"
        assert payload["violations"]
        assert load_scenario(path) == minimal

        # Replay from the artifact reproduces the same violations...
        replay = run_scenario(load_scenario(path))
        assert replay.violations == result.violations

    def test_clean_code_passes_the_reproducer(self, tmp_path):
        # ...and without the planted bug the minimal scenario is green.
        minimal = Scenario.from_dict(
            dict(self.SCENARIO.to_dict(), n_requests=4)
        )
        assert run_scenario(minimal).ok

    def test_cli_repro_exit_codes(
        self, planted_destage_bug, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main

        minimal = shrink(self.SCENARIO)
        path = write_artifact(tmp_path, minimal, run_scenario(minimal))
        assert (
            main(["verify", "repro", str(path), "--no-cache"]) == 1
        )
        assert "FAIL" in capsys.readouterr().out
        monkeypatch.undo()  # lift the planted bug; replay must pass
        assert (
            main(["verify", "repro", str(path), "--no-cache"]) == 0
        )
        assert "PASS" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Shrinking mechanics (pure, no simulation)
# ---------------------------------------------------------------------------
class TestShrinking:
    def test_shrinks_requests_and_fault_events(self):
        spec = FaultSchedule.parse(
            "slow@2:P0:3x4,lse@1:M0:2048+16"
        ).spec()
        start = scenario_for("rolo-p", n_requests=96, fault_spec=spec)

        def failing(s):
            # Fails while >= 6 requests and the slowdown is present.
            return s.n_requests >= 6 and "slow@" in s.fault_spec

        minimal = shrink(start, is_failing=failing)
        assert minimal.n_requests == 6
        assert "slow@" in minimal.fault_spec
        assert "lse@" not in minimal.fault_spec

    def test_shrink_keeps_failing_scenario_without_progress(self):
        start = scenario_for("rolo-p", n_requests=1)
        assert shrink(start, is_failing=lambda s: True) == start

    def test_shrink_respects_attempt_budget(self):
        calls = []

        def failing(s):
            calls.append(s)
            return True

        shrink(
            scenario_for("rolo-p", n_requests=4096),
            is_failing=failing,
            max_attempts=5,
        )
        assert len(calls) <= 5


# ---------------------------------------------------------------------------
# CLI sweep entry point
# ---------------------------------------------------------------------------
class TestVerifyCli:
    def test_run_green_sweep(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "verify",
                    "run",
                    "--scenarios",
                    "6",
                    "--seed",
                    "8",
                    "--no-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "scenarios=6 failures=0" in out

    def test_run_failing_sweep_writes_artifacts(
        self, planted_destage_bug, tmp_path, capsys
    ):
        from repro.cli import main

        # seed 8's first 20 scenarios include rolo destage activity, so
        # the planted bug must surface and produce at least one artifact.
        code = main(
            [
                "verify",
                "run",
                "--scenarios",
                "20",
                "--seed",
                "8",
                "--no-cache",
                "--artifacts",
                str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "rolo verify repro" in out
        artifacts = list(tmp_path.glob("repro-*.json"))
        assert artifacts
        for artifact in artifacts:
            assert json.loads(artifact.read_text())["violations"]


# ---------------------------------------------------------------------------
# Campaign integration: the shared oracle snapshot
# ---------------------------------------------------------------------------
class TestOracleSnapshotPlumbing:
    def test_fault_run_result_carries_oracle_snapshot(self):
        s = scenario_for("rolo-p", fault_spec="fail@5:M0")
        prefix = truncate_trace(s.build_trace(), s.n_requests)
        result = run_faulted(
            s.scheme, s.resolve_config(), prefix, s.schedule()
        )
        assert result.oracle is not None
        assert result.oracle["checks"]
        data = result.to_dict()
        assert "oracle" in data and "checks" not in data
        restored = type(result).from_dict(data)
        assert [c.to_dict() for c in restored.checks] == [
            c.to_dict() for c in result.checks
        ]

    def test_legacy_payload_without_oracle_still_parses(self):
        s = scenario_for("rolo-p", fault_spec="fail@5:M0")
        prefix = truncate_trace(s.build_trace(), s.n_requests)
        result = run_faulted(
            s.scheme, s.resolve_config(), prefix, s.schedule()
        )
        data = result.to_dict()
        legacy = dict(data)
        legacy["checks"] = data["oracle"]["checks"]
        del legacy["oracle"]
        restored = type(result).from_dict(legacy)
        assert restored.oracle is None
        assert [c.to_dict() for c in restored.checks] == [
            c.to_dict() for c in result.checks
        ]
