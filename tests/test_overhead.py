"""Zero-overhead instrumentation: specialization, pooling, and the gate.

The tentpole contract under test: every observe-only feature is wired at
run-setup time (loop selection, bound completion methods, oracle-note
elision, slab pools), a fully instrumented run produces byte-identical
``RunMetrics``, and tearing everything down restores the specialized
no-hook fast paths exactly.
"""

import json

import pytest

from repro import bench
from repro.core import ArrayConfig, build_controller, run_trace
from repro.core.base import _noop_note
from repro.disk.disk import (
    Disk,
    DiskOp,
    OpKind,
    acquire_op,
    op_pool_stats,
    release_op,
)
from repro.disk.models import ULTRASTAR_36Z15
from repro.faults.oracle import ConsistencyOracle
from repro.obs import MetricsRegistry, RecordingTracer, RunInstrumentation
from repro.raid.request import (
    RequestKind,
    acquire_request,
    release_request,
    request_pool_stats,
)
from repro.sim import Simulator
from repro.sim.engine import fuse_observers
from repro.traces.synthetic import SyntheticTraceConfig, generate_compiled
from repro.verify.invariants import InvariantChecker

KB = 1024
MB = 1024 * KB


def _small_cell():
    config = ArrayConfig(n_pairs=2).scaled(0.01)
    trace = generate_compiled(
        SyntheticTraceConfig(
            duration_s=5.0,
            iops=60.0,
            write_ratio=0.6,
            avg_request_bytes=32 * KB,
            size_sigma=0.5,
            footprint_bytes=8 * MB,
            seed=11,
            name="overhead-test",
        )
    )
    return config, trace


# ----------------------------------------------------------------------
# Fused observer chain + run-loop selection
# ----------------------------------------------------------------------
class TestFusedObservers:
    def test_empty_chain_is_none(self):
        assert fuse_observers() is None

    def test_single_observer_is_returned_identically(self):
        def hook(event):
            pass

        assert fuse_observers(hook) is hook

    def test_chain_preserves_registration_order(self):
        seen = []
        fused = fuse_observers(
            lambda e: seen.append("a"),
            lambda e: seen.append("b"),
            lambda e: seen.append("c"),
        )
        fused(object())
        assert seen == ["a", "b", "c"]

    def test_fresh_simulator_selects_nohook_loop(self):
        sim = Simulator()
        assert sim.event_hook is None
        assert sim._run_loop.__func__ is Simulator._run_nohook

    def test_observer_registration_swaps_loops(self):
        sim = Simulator()

        def hook(event):
            pass

        sim.add_event_observer(hook)
        assert sim.event_hook is hook
        assert sim._run_loop.__func__ is Simulator._run_hooked
        sim.remove_event_observer(hook)
        assert sim.event_hook is None
        assert sim._run_loop.__func__ is Simulator._run_nohook

    def test_hooked_loop_fires_chain_per_event(self):
        sim = Simulator()
        labels = []
        sim.add_event_observer(lambda e: labels.append(e.label))
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        assert labels == ["tick"]


# ----------------------------------------------------------------------
# The full hook stack, simultaneously
# ----------------------------------------------------------------------
class TestFullHookStack:
    def test_stacked_run_is_byte_identical_and_detaches_clean(self):
        config, trace = _small_cell()

        plain_sim = Simulator()
        plain = run_trace(
            build_controller("rolo-r", plain_sim, config), trace
        )

        sim = Simulator()
        tracer = RecordingTracer()
        controller = build_controller(
            "rolo-r", sim, config, tracer=tracer
        )
        registry = MetricsRegistry()
        instrumentation = RunInstrumentation(sim, controller, registry)
        instrumentation.install()
        checker = InvariantChecker(sample_every=16)
        checker.install(sim, controller)
        assert sim.event_hook is not None
        assert sim._run_loop.__func__ is Simulator._run_hooked

        stacked = run_trace(controller, trace)

        checker.uninstall()
        instrumentation.uninstall()
        instrumentation.harvest()

        # Byte-identical RunMetrics despite tracer + metrics + checker.
        assert json.dumps(stacked.to_dict(), sort_keys=True) == json.dumps(
            plain.to_dict(), sort_keys=True
        )
        # All layers detached: the no-hook specialized loop is re-selected.
        assert sim.event_hook is None
        assert sim._run_loop.__func__ is Simulator._run_nohook
        # Every layer actually observed the run.
        assert tracer.events
        assert checker.checks_run > 0
        scheme = controller.scheme_name
        assert registry.get("sim_events_total", scheme=scheme).value > 0

    def test_event_free_pool_census_is_harvested(self):
        config, trace = _small_cell()
        sim = Simulator()
        controller = build_controller("raid10", sim, config)
        registry = MetricsRegistry()
        instrumentation = RunInstrumentation(sim, controller, registry)
        instrumentation.install()
        run_trace(controller, trace)
        instrumentation.uninstall()
        instrumentation.harvest()
        scheme = controller.scheme_name
        size = registry.get("sim_event_free_pool_size", scheme=scheme)
        cap = registry.get("sim_event_free_pool_max", scheme=scheme)
        assert size is not None and size.value >= 0
        assert cap is not None and cap.value == float(sim.free_pool_max)
        assert sim.free_pool_size <= sim.free_pool_max


# ----------------------------------------------------------------------
# Disk completion specialization
# ----------------------------------------------------------------------
class TestDiskCompletionSpecialization:
    def test_unobserved_disk_binds_fast_completion(self):
        sim = Simulator()
        disk = Disk(sim, ULTRASTAR_36Z15, "D")
        assert disk._complete.__func__ is Disk._complete_fast

    def test_attaching_observer_swaps_to_observed_and_back(self):
        sim = Simulator()
        disk = Disk(sim, ULTRASTAR_36Z15, "D")
        disk.op_observer = lambda d, op: None
        assert disk._complete.__func__ is Disk._complete_observed
        disk.op_observer = None
        assert disk._complete.__func__ is Disk._complete_fast

    def test_tracer_selects_observed_completion(self):
        sim = Simulator()
        disk = Disk(sim, ULTRASTAR_36Z15, "D", tracer=RecordingTracer())
        assert disk._complete.__func__ is Disk._complete_observed

    def test_observed_and_fast_paths_complete_identically(self):
        def run(observed):
            sim = Simulator()
            disk = Disk(sim, ULTRASTAR_36Z15, "D")
            if observed:
                disk.op_observer = lambda d, op: None
            for sector in (0, 5000, 100):
                disk.submit(DiskOp(OpKind.WRITE, sector, 64 * KB))
            sim.run()
            return disk.ops_completed, disk.busy_time, sim.now

        assert run(False) == run(True)


# ----------------------------------------------------------------------
# Slab pools: DiskOp, IORequest
# ----------------------------------------------------------------------
class TestSlabPools:
    def test_op_pool_reuses_and_stays_bounded(self):
        before = op_pool_stats()
        ops = [
            acquire_op(OpKind.WRITE, 0, 4096) for _ in range(before["max"] + 8)
        ]
        for op in ops:
            release_op(op)
        after = op_pool_stats()
        assert after["size"] <= after["max"]
        assert after["released"] > before["released"]
        recycled = acquire_op(OpKind.READ, 7, 512)
        assert recycled.kind is OpKind.READ
        assert recycled.sector == 7
        assert recycled.on_complete is None
        release_op(recycled)

    def test_request_pool_reuses_and_stays_bounded(self):
        before = request_pool_stats()
        requests = [
            acquire_request(RequestKind.WRITE, 0, 4096, arrival_time=0.0)
            for _ in range(before["max"] + 8)
        ]
        for request in requests:
            release_request(request)
        after = request_pool_stats()
        assert after["size"] <= after["max"]
        assert after["released"] > before["released"]
        recycled = acquire_request(
            RequestKind.READ, 512, 1024, arrival_time=2.0
        )
        assert recycled.kind is RequestKind.READ
        assert recycled.offset == 512
        assert not recycled.complete
        release_request(recycled)

    def test_replay_recycles_pooled_objects(self):
        config, trace = _small_cell()
        before_ops = op_pool_stats()["released"]
        before_requests = request_pool_stats()["released"]
        sim = Simulator()
        run_trace(build_controller("raid10", sim, config), trace)
        assert op_pool_stats()["released"] > before_ops
        assert request_pool_stats()["released"] > before_requests


# ----------------------------------------------------------------------
# Oracle-note elision
# ----------------------------------------------------------------------
class TestOracleElision:
    def test_no_oracle_binds_module_noop(self):
        sim = Simulator()
        controller = build_controller(
            "raid10", sim, ArrayConfig(n_pairs=2).scaled(0.01)
        )
        assert controller.oracle is None
        assert controller._note_read is _noop_note

    def test_attaching_oracle_rebinds_and_detaching_restores(self):
        sim = Simulator()
        controller = build_controller(
            "raid10", sim, ArrayConfig(n_pairs=2).scaled(0.01)
        )
        oracle = ConsistencyOracle()
        oracle.attach(controller)
        assert controller.oracle is oracle
        assert controller._note_read.__func__ is type(oracle).note_read
        controller.oracle = None
        assert controller._note_read is _noop_note

    def test_parity_controllers_bind_parity_notes(self):
        from repro.core.raid5 import Raid5Config, Raid5Controller

        sim = Simulator()
        controller = Raid5Controller(sim, Raid5Config(n_disks=4))
        assert controller._note_parity_write is _noop_note
        assert controller._note_parity_read is _noop_note
        oracle = ConsistencyOracle()
        controller.oracle = oracle
        assert (
            controller._note_parity_write.__func__
            is type(oracle).note_parity_write
        )
        controller.oracle = None
        assert controller._note_parity_write is _noop_note


# ----------------------------------------------------------------------
# Bench family: overhead:* and its gate
# ----------------------------------------------------------------------
class TestOverheadBench:
    def test_scenario_names_include_overhead_family(self):
        names = bench.scenario_names(quick=True)
        for variant in bench.OVERHEAD_VARIANTS:
            assert f"overhead:{variant}" in names

    def test_gate_passes_when_disabled_is_free(self):
        results = {
            "overhead:plain": {"events_per_sec": 100_000.0},
            "overhead:disabled": {"events_per_sec": 99_000.0},
        }
        gate = bench.overhead_gate(results)
        assert gate["passed"]
        assert gate["disabled_vs_plain"] == pytest.approx(0.99)

    def test_gate_fails_beyond_budget_or_on_divergence(self):
        results = {
            "overhead:plain": {"events_per_sec": 100_000.0},
            "overhead:disabled": {"events_per_sec": 95_000.0},
        }
        assert not bench.overhead_gate(results)["passed"]
        results = {
            "overhead:plain": {
                "events_per_sec": 100_000.0,
                "metrics_identical": False,
            },
            "overhead:disabled": {
                "events_per_sec": 100_000.0,
                "metrics_identical": False,
            },
        }
        assert not bench.overhead_gate(results)["passed"]

    def test_gate_absent_without_the_family(self):
        assert bench.overhead_gate({"matrix:raid10:mixed": {}}) is None

    def test_overhead_runs_are_byte_identical(self):
        config, trace = _small_cell()
        digests = set()
        for variant in bench.OVERHEAD_VARIANTS:
            _, _, metrics = bench._overhead_run(variant, trace, config)
            digests.add(json.dumps(metrics.to_dict(), sort_keys=True))
        assert len(digests) == 1

    def test_slowest_matrix_scenario(self):
        results = {
            "matrix:a:b": {"events_per_sec": 50.0},
            "matrix:c:d": {"events_per_sec": 40.0},
            "hotpath:x": {"events_per_sec": 1.0},
        }
        assert bench.slowest_matrix_scenario(results) == "matrix:c:d"
        assert bench.slowest_matrix_scenario({}) is None

    def test_profile_scenario_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            bench.profile_scenario("overhead:plain")
