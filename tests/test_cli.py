"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import cache as result_cache
from repro.experiments import clear_cache


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_cache()
    result_cache.configure(enabled=False)
    yield
    result_cache.configure(enabled=False)
    clear_cache()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--scale", "0.02", "--pairs", "4"]
        )
        assert args.experiment == "fig9"
        assert args.scale == 0.02
        assert args.pairs == 4

    def test_run_parallel_and_cache_options(self):
        args = build_parser().parse_args(
            [
                "run",
                "fig10",
                "--jobs",
                "4",
                "--no-cache",
                "--cache-dir",
                "/tmp/x",
            ]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/x"

    def test_run_cache_defaults(self):
        args = build_parser().parse_args(["run", "fig10"])
        assert args.jobs is None  # resolved to os.cpu_count() at run time
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_cache_subcommand_parses(self):
        args = build_parser().parse_args(["cache", "info"])
        assert args.cache_command == "info"
        args = build_parser().parse_args(
            ["cache", "clear", "--cache-dir", "/tmp/x"]
        )
        assert args.cache_command == "clear"
        assert args.cache_dir == "/tmp/x"

    def test_cache_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "nuke"])


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "src2_2" in out

    def test_mttdl_output(self, capsys):
        assert main(["mttdl", "--mttr-days", "3"]) == 0
        out = capsys.readouterr().out
        assert "raid10" in out
        assert "rolo-r" in out

    def test_trace_info(self, capsys):
        assert main(["trace-info", "rsrch_2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "rsrch_2" in out
        assert "records=" in out

    def test_run_fig9(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["run", "fig9", "--out", str(out_file)]) == 0
        assert "MTTDL" in capsys.readouterr().out
        assert "MTTDL" in out_file.read_text()

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "rolo-p",
                    "rsrch_2",
                    "--scale",
                    "0.02",
                    "--pairs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "requests=" in out
        assert "rotations=" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_run_rejects_bad_jobs(self, capsys):
        assert main(["run", "fig9", "--jobs", "0"]) == 2


class TestCacheCommands:
    RUN_ARGS = [
        "run",
        "fig10",
        "--scale",
        "0.004",
        "--pairs",
        "2",
        "--jobs",
        "1",
    ]

    def test_cache_info_empty(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:         0" in out

    def test_warm_cache_performs_zero_simulations(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.RUN_ARGS + ["--cache-dir", cache_dir]) == 0
        cold_out = capsys.readouterr().out
        assert "computed=10" in cold_out  # 5 schemes x 2 workloads
        clear_cache()  # fresh interpreter state; only the disk cache warms
        assert main(self.RUN_ARGS + ["--cache-dir", cache_dir]) == 0
        warm_out = capsys.readouterr().out
        assert "computed=0" in warm_out
        assert "cached=10" in warm_out

        def rows(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith("[cells]")
            ]

        assert rows(warm_out) == rows(cold_out)

    def test_no_cache_flag_skips_persistence(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert (
            main(self.RUN_ARGS + ["--cache-dir", cache_dir, "--no-cache"])
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "entries:         0" in capsys.readouterr().out

    def test_cache_clear_removes_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.RUN_ARGS + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 10" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "entries:         0" in capsys.readouterr().out


class TestObservabilityCommands:
    SIM_ARGS = [
        "simulate",
        "rolo-p",
        "rsrch_2",
        "--scale",
        "0.004",
        "--pairs",
        "2",
    ]

    def test_simulate_flag_parsing(self):
        args = build_parser().parse_args(
            [
                "simulate",
                "rolo-p",
                "src2_2",
                "--trace",
                "out.json",
                "--trace-format",
                "jsonl",
                "--sample-interval",
                "0.5",
                "--samples",
                "s.csv",
                "--profile",
            ]
        )
        assert args.trace == "out.json"
        assert args.trace_format == "jsonl"
        assert args.sample_interval == 0.5
        assert args.samples == "s.csv"
        assert args.profile is True

    def test_simulate_defaults_stay_unobserved(self):
        args = build_parser().parse_args(["simulate", "rolo-p", "src2_2"])
        assert args.trace is None
        assert args.sample_interval is None
        assert args.profile is False

    def test_simulate_with_trace_and_samples(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert (
            main(self.SIM_ARGS + ["--trace", str(trace_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "requests=" in out
        assert "[trace] wrote" in out
        import json as _json

        doc = _json.loads(trace_path.read_text())
        assert doc["traceEvents"]

    def test_simulate_jsonl_by_extension(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(self.SIM_ARGS + ["--trace", str(trace_path)]) == 0
        assert "(jsonl)" in capsys.readouterr().out
        first_line = trace_path.read_text().splitlines()[0]
        import json as _json

        assert "ts" in _json.loads(first_line)

    def test_simulate_sampling_and_profile(self, capsys, tmp_path):
        csv_path = tmp_path / "samples.csv"
        assert (
            main(
                self.SIM_ARGS
                + [
                    "--sample-interval",
                    "5",
                    "--samples",
                    str(csv_path),
                    "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[samples] wrote" in out
        assert "rate=" in out
        assert csv_path.read_text().startswith("ts,")

    def test_simulate_sample_summary_without_path(self, capsys):
        assert main(self.SIM_ARGS + ["--sample-interval", "10"]) == 0
        assert "peak_queue=" in capsys.readouterr().out

    def test_trace_summarize(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(self.SIM_ARGS + ["--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "events by category" in out
        assert "power-state residency" in out

    def test_run_profile_reports_cells(self, capsys, tmp_path):
        result_cache.configure(directory=str(tmp_path), enabled=True)
        assert (
            main(
                [
                    "run",
                    "fig10",
                    "--scale",
                    "0.004",
                    "--pairs",
                    "2",
                    "--jobs",
                    "1",
                    "--profile",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[profile] per-cell timing" in out
        assert "total:" in out


class TestMetricsCommands:
    def test_metrics_flag_parsing(self):
        args = build_parser().parse_args(
            ["simulate", "rolo-p", "wdev_0", "--metrics", "m.prom"]
        )
        assert args.metrics == "m.prom"
        assert args.metrics_format == "auto"
        args = build_parser().parse_args(
            ["run", "fig10", "--progress", "--metrics-out", "m.jsonl"]
        )
        assert args.progress is True
        assert args.metrics_out == "m.jsonl"
        args = build_parser().parse_args(
            ["bench", "trend", "a.json", "b.json", "--threshold", "0.2"]
        )
        assert args.bench_command == "trend"
        assert args.files == ["a.json", "b.json"]
        assert args.threshold == 0.2
        args = build_parser().parse_args(["top", "m.jsonl"])
        assert args.file == "m.jsonl"

    SIM = ["simulate", "rolo-p", "wdev_0", "--scale", "0.02", "--pairs", "2"]

    def test_simulate_metrics_prometheus(self, capsys, tmp_path):
        out_path = tmp_path / "run.prom"
        assert main(self.SIM + ["--metrics", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "requests=" in out
        assert "p95=" in out and "p99=" in out
        text = out_path.read_text(encoding="utf-8")
        assert "# TYPE" in text
        from repro.obs.metrics import lint_prometheus

        assert lint_prometheus(text) == []

    def test_simulate_metrics_jsonl_then_top(self, capsys, tmp_path):
        out_path = tmp_path / "run.jsonl"
        assert main(self.SIM + ["--metrics", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["top", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "sim_events_total" in out
        assert "request_latency_seconds" in out

    def test_simulate_metrics_rejects_observer_combos(self, capsys, tmp_path):
        rc = main(
            self.SIM
            + ["--metrics", str(tmp_path / "m.prom"), "--profile"]
        )
        assert rc == 2

    def test_top_missing_file(self, capsys, tmp_path):
        assert main(["top", str(tmp_path / "nope.jsonl")]) == 2

    def test_bench_trend_flags_regression(self, capsys, tmp_path):
        import json as _json

        from repro import bench as _bench

        def _snap(name, rate):
            path = tmp_path / name
            path.write_text(
                _json.dumps(
                    _bench.build_report(
                        {"matrix:x": {"events_per_sec": rate, "wall_s": 1.0}},
                        mode="quick",
                    )
                )
            )
            return str(path)

        old = _snap("BENCH_1.json", 100.0)
        new = _snap("BENCH_2.json", 80.0)
        html = tmp_path / "trend.html"
        assert (
            main(["bench", "trend", old, new, "--html", str(html)]) == 0
        )
        out = capsys.readouterr().out
        assert "matrix:x" in out
        assert "flagged" in out
        assert html.exists()

    def test_bench_trend_requires_two_files(self, capsys, tmp_path):
        assert main(["bench", "trend", str(tmp_path / "one.json")]) == 2

    def test_bench_rejects_stray_files_without_trend(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "a.json"])

    def test_cache_info_reports_shm_segments(self, capsys, tmp_path):
        assert (
            main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        )
        assert "shm segments" in capsys.readouterr().out

    def test_report_command_markdown(self, capsys, tmp_path):
        out_path = tmp_path / "report.md"
        assert (
            main(
                [
                    "report",
                    "--schemes",
                    "raid10,rolo-p",
                    "--workloads",
                    "wdev_0",
                    "--scale",
                    "0.01",
                    "--pairs",
                    "2",
                    "--no-cache",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        text = out_path.read_text(encoding="utf-8")
        assert "p95 ms" in text
        assert "Power-state residency" in text
