"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--scale", "0.02", "--pairs", "4"]
        )
        assert args.experiment == "fig9"
        assert args.scale == 0.02
        assert args.pairs == 4


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "src2_2" in out

    def test_mttdl_output(self, capsys):
        assert main(["mttdl", "--mttr-days", "3"]) == 0
        out = capsys.readouterr().out
        assert "raid10" in out
        assert "rolo-r" in out

    def test_trace_info(self, capsys):
        assert main(["trace-info", "rsrch_2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "rsrch_2" in out
        assert "records=" in out

    def test_run_fig9(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["run", "fig9", "--out", str(out_file)]) == 0
        assert "MTTDL" in capsys.readouterr().out
        assert "MTTDL" in out_file.read_text()

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "rolo-p",
                    "rsrch_2",
                    "--scale",
                    "0.02",
                    "--pairs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "requests=" in out
        assert "rotations=" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])
