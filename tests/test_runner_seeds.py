"""Tests for seed-sweep utilities and the new extension experiments."""

import pytest

from repro.disk.power import PowerState
from repro.experiments import clear_cache, get_experiment
from repro.experiments.runner import (
    run_scheme_set_seeds,
    summarize_seeds,
)


class TestSeedSweep:
    def test_runs_every_seed_and_scheme(self):
        clear_cache()
        out = run_scheme_set_seeds(
            "rsrch_2", ("raid10", "rolo-p"), seeds=(1, 2), scale=0.02,
            n_pairs=2,
        )
        assert set(out) == {"raid10", "rolo-p"}
        assert len(out["raid10"]) == 2

    def test_different_seeds_differ(self):
        clear_cache()
        out = run_scheme_set_seeds(
            "rsrch_2", ("raid10",), seeds=(1, 2), scale=0.02, n_pairs=2
        )
        a, b = out["raid10"]
        assert a.total_energy_j != b.total_energy_j

    def test_summarize_math(self):
        class Fake:
            def __init__(self, rt, energy):
                self.mean_response_time_ms = rt
                self.total_energy_j = energy
                self.mean_power_w = energy / 10.0
                self.spin_cycle_count = 4

        summary = summarize_seeds([Fake(2.0, 1000.0), Fake(4.0, 3000.0)])
        mean, std = summary["response_time_ms"]
        assert mean == pytest.approx(3.0)
        assert std == pytest.approx(1.0)
        mean_e, std_e = summary["energy_kj"]
        assert mean_e == pytest.approx(2.0)
        assert std_e == pytest.approx(1.0)
        assert summary["spin_cycles"] == (4.0, 0.0)


class TestExtensionExperiments:
    def test_variance_experiment_registered(self):
        exp = get_experiment("ext-variance")
        assert "Fig. 10" in exp.paper_ref

    def test_variance_mini_run(self):
        clear_cache()
        report = get_experiment("ext-variance").run(
            scale=0.01,
            n_pairs=2,
            workloads=("rsrch_2",),
            seeds=(1, 2),
        )
        table = report.tables[0]
        assert len(table.rows) == 5
        raid10 = [r for r in table.rows if r[1] == "raid10"][0]
        # RAID10 saves nothing over itself, for every seed.
        assert raid10[6] == 0 and raid10[7] == 0

    def test_breakdown_mini_run(self):
        clear_cache()
        report = get_experiment("ext-breakdown").run(
            scale=0.01, n_pairs=2, workloads=("rsrch_2",)
        )
        table = report.tables[0]
        rows = {row[1]: row for row in table.rows}
        # RAID10 never sleeps or spins: standby and spin shares are zero,
        # and active+idle is everything.
        raid10 = rows["raid10"]
        assert raid10[4] == 0 and raid10[5] == 0
        assert raid10[2] + raid10[3] == pytest.approx(1.0)
        # RoLo-P banks a standby share.
        assert rows["rolo-p"][4] > 0

    def test_breakdown_shares_sum_to_one(self):
        clear_cache()
        report = get_experiment("ext-breakdown").run(
            scale=0.01, n_pairs=2, workloads=("rsrch_2",)
        )
        for row in report.tables[0].rows:
            assert row[2] + row[3] + row[4] + row[5] == pytest.approx(
                1.0, abs=1e-6
            )
