"""Unit tests for drive parameter sheets."""

import dataclasses

import pytest

from repro.disk.models import (
    CHEETAH_15K5,
    DISK_MODELS,
    GB,
    MB,
    SECTOR_SIZE,
    ULTRASTAR_36Z15,
    DiskSpec,
)


class TestUltrastarSheet:
    """Values straight from Table II of the paper."""

    def test_capacity(self):
        assert ULTRASTAR_36Z15.capacity_bytes == int(18.4 * GB)

    def test_rotation_speed(self):
        assert ULTRASTAR_36Z15.rpm == 15_000
        assert ULTRASTAR_36Z15.rotation_time == pytest.approx(0.004)
        assert ULTRASTAR_36Z15.avg_rotational_latency == pytest.approx(0.002)

    def test_power_states(self):
        assert ULTRASTAR_36Z15.power_active == 13.5
        assert ULTRASTAR_36Z15.power_idle == 10.2
        assert ULTRASTAR_36Z15.power_standby == 2.5

    def test_spin_parameters(self):
        assert ULTRASTAR_36Z15.spin_down_energy == 13.0
        assert ULTRASTAR_36Z15.spin_up_energy == 135.0
        assert ULTRASTAR_36Z15.spin_down_time == 1.5
        assert ULTRASTAR_36Z15.spin_up_time == 10.9

    def test_transfer_rate(self):
        assert ULTRASTAR_36Z15.sustained_transfer_rate == 55 * MB


def test_registry_contains_both_models():
    assert DISK_MODELS["ultrastar36z15"] is ULTRASTAR_36Z15
    assert DISK_MODELS["cheetah15k5"] is CHEETAH_15K5


def test_transfer_time_linear():
    t1 = ULTRASTAR_36Z15.transfer_time(1 * MB)
    t2 = ULTRASTAR_36Z15.transfer_time(2 * MB)
    assert t2 == pytest.approx(2 * t1)
    assert t1 == pytest.approx(1 * MB / (55 * MB))


def test_transfer_time_rejects_negative():
    with pytest.raises(ValueError):
        ULTRASTAR_36Z15.transfer_time(-1)


def test_capacity_sectors():
    assert (
        ULTRASTAR_36Z15.capacity_sectors
        == ULTRASTAR_36Z15.capacity_bytes // SECTOR_SIZE
    )


def test_scaled_changes_only_capacity():
    half = ULTRASTAR_36Z15.scaled(ULTRASTAR_36Z15.capacity_bytes // 2)
    assert half.capacity_bytes == ULTRASTAR_36Z15.capacity_bytes // 2
    assert half.rpm == ULTRASTAR_36Z15.rpm
    assert half.power_idle == ULTRASTAR_36Z15.power_idle
    assert half.name != ULTRASTAR_36Z15.name


class TestValidation:
    def _base(self, **overrides):
        kwargs = dict(
            name="x",
            capacity_bytes=GB,
            rpm=10_000,
            avg_seek_time=4e-3,
            track_to_track_seek_time=1e-3,
            full_stroke_seek_time=9e-3,
            sustained_transfer_rate=50 * MB,
            power_active=10.0,
            power_idle=8.0,
            power_standby=1.0,
            spin_down_energy=10.0,
            spin_up_energy=100.0,
            spin_down_time=1.0,
            spin_up_time=10.0,
        )
        kwargs.update(overrides)
        return DiskSpec(**kwargs)

    def test_valid_spec_accepted(self):
        self._base()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            self._base(capacity_bytes=0)

    def test_zero_transfer_rate_rejected(self):
        with pytest.raises(ValueError):
            self._base(sustained_transfer_rate=0)

    def test_seek_ordering_enforced(self):
        with pytest.raises(ValueError):
            self._base(avg_seek_time=10e-3)  # avg > full stroke
        with pytest.raises(ValueError):
            self._base(track_to_track_seek_time=5e-3)  # track > avg

    def test_zero_rpm_rejected(self):
        with pytest.raises(ValueError):
            self._base(rpm=0)

    def test_frozen(self):
        spec = self._base()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.rpm = 1
