"""Unit tests for the LRU cache."""

import pytest

from repro.cache import LRUCache


class TestBasics:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache = LRUCache(4)
        assert cache.get("missing") is None

    def test_contains_does_not_count_stats(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert cache.hits == 0
        assert cache.misses == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_zero_capacity_never_stores(self):
        cache = LRUCache(0)
        assert cache.put("a", 1) is None
        assert cache.get("a") is None
        assert len(cache) == 0


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        evicted = cache.put("c", 3)
        assert evicted == ("a", 1)
        assert "a" not in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        evicted = cache.put("c", 3)
        assert evicted == ("b", 2)

    def test_put_refreshes_existing_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 10) is None
        assert cache.get("a") == 10
        assert len(cache) == 2

    def test_discard(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.discard("a") is True
        assert cache.discard("a") is False
        assert "a" not in cache

    def test_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestStats:
    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("x")
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self):
        assert LRUCache(2).hit_rate == 0.0

    def test_iteration_order_is_lru_to_mru(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert list(cache) == ["b", "a"]
