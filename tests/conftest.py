"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import pytest

from repro.core import ArrayConfig
from repro.raid.request import RequestKind
from repro.sim import Simulator
from repro.traces.record import Trace, TraceRecord

KB = 1024
MB = 1024 * KB


@pytest.fixture(autouse=True, scope="session")
def assert_no_leaked_shm_segments():
    """The whole suite must leave ``/dev/shm`` the way it found it.

    Every shared-memory segment the trace store creates carries the
    ``rolo_trc_`` prefix, so any survivor here is a store whose lifecycle
    (context manager, error path, or atexit net) failed to unlink.
    """
    from repro.traces import shm

    preexisting = set(shm.leaked_segments())
    yield
    shm.detach_all()
    leaked = set(shm.leaked_segments()) - preexisting
    assert not leaked, (
        f"test suite leaked shared-memory segments: {sorted(leaked)}"
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def small_config(**overrides) -> ArrayConfig:
    """A tiny array configuration for fast controller tests."""
    defaults = dict(
        n_pairs=2,
        stripe_unit=64 * KB,
        free_space_bytes=4 * MB,
        graid_log_capacity_bytes=8 * MB,
        idle_grace_s=0.01,
        destage_batch_bytes=256 * KB,
        standby_return_s=5.0,
    )
    defaults.update(overrides)
    return ArrayConfig(**defaults)


def make_trace(
    spec: Iterable[Tuple[float, str, int, int]], name: str = "test"
) -> Trace:
    """Build a trace from (time, 'r'|'w', offset, nbytes) tuples."""
    records: List[TraceRecord] = []
    for timestamp, kind, offset, nbytes in spec:
        records.append(
            TraceRecord(
                timestamp,
                RequestKind.WRITE if kind == "w" else RequestKind.READ,
                offset,
                nbytes,
            )
        )
    return Trace(records, name=name)


def write_burst(
    count: int,
    nbytes: int = 64 * KB,
    start: float = 0.0,
    gap: float = 0.05,
    stride: Optional[int] = None,
    base: int = 0,
) -> Trace:
    """A simple all-write trace: ``count`` writes spaced ``gap`` apart."""
    if stride is None:
        stride = nbytes
    spec = [
        (start + i * gap, "w", base + (i * stride), nbytes)
        for i in range(count)
    ]
    return make_trace(spec, name="write-burst")
