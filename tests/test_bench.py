"""Tests for the pinned benchmark suite (`rolo bench`)."""

import json

import pytest

from repro import bench


# ----------------------------------------------------------------------
# Scenario matrix pinning
# ----------------------------------------------------------------------
def test_scenario_names_are_pinned():
    # These names are contract: baselines and BENCH_*.json reports key on
    # them, so renames invalidate history.  Update deliberately.
    assert bench.scenario_names(quick=False) == [
        "compile:synthetic-1m",
        "hotpath:raid10-1m",
        "matrix:raid10:write-heavy",
        "matrix:graid:write-heavy",
        "matrix:rolo-p:write-heavy",
        "matrix:rolo-r:write-heavy",
        "matrix:rolo-e:write-heavy",
        "matrix:raid10:mixed",
        "matrix:graid:mixed",
        "matrix:rolo-p:mixed",
        "matrix:rolo-r:mixed",
        "matrix:rolo-e:mixed",
        "fault:rolo-p:write-heavy",
        "overhead:plain",
        "overhead:disabled",
        "overhead:traced",
        "overhead:metered",
        "overhead:verified",
        "overhead:spanned",
        "sweep:matrix-full:jobs1",
        "sweep:matrix-full:jobs2",
        "sweep:matrix-full:jobs4",
    ]
    quick = bench.scenario_names(quick=True)
    assert quick[0] == "compile:synthetic-100k"
    assert quick[1] == "hotpath:raid10-100k"
    assert quick[2:] == bench.scenario_names(quick=False)[2:]


def test_pinned_configs_are_deterministic():
    a = bench.matrix_trace_config("write-heavy", quick=True)
    b = bench.matrix_trace_config("write-heavy", quick=True)
    assert a == b
    with pytest.raises(ValueError):
        bench.matrix_trace_config("no-such-workload", quick=True)


# ----------------------------------------------------------------------
# Comparison / regression gate
# ----------------------------------------------------------------------
def _result(rate, field="events_per_sec"):
    return {field: rate, "wall_s": 1.0}


def test_compare_passes_within_tolerance():
    current = {"a": _result(80.0), "b": _result(130.0)}
    baseline = {"a": _result(100.0), "b": _result(100.0)}
    comparison = bench.compare(current, baseline, tolerance=0.25)
    assert comparison["passed"]
    assert comparison["regressions"] == []
    assert comparison["scenarios"]["a"]["status"] == "ok"
    assert comparison["scenarios"]["a"]["speedup"] == 0.8
    assert comparison["scenarios"]["b"]["speedup"] == 1.3


def test_compare_flags_regression_beyond_tolerance():
    comparison = bench.compare(
        {"a": _result(74.0)}, {"a": _result(100.0)}, tolerance=0.25
    )
    assert not comparison["passed"]
    assert comparison["regressions"] == ["a"]
    assert comparison["scenarios"]["a"]["status"] == "regression"


def test_compare_one_sided_scenarios_never_gate():
    comparison = bench.compare(
        {"new": _result(10.0)}, {"old": _result(10.0)}, tolerance=0.25
    )
    assert comparison["passed"]
    assert comparison["scenarios"]["new"]["status"] == "new"
    assert comparison["scenarios"]["old"]["status"] == "only-baseline"


def test_compare_uses_records_rate_for_compile_scenarios():
    comparison = bench.compare(
        {"compile": _result(50.0, field="records_per_sec")},
        {"compile": _result(100.0, field="records_per_sec")},
        tolerance=0.25,
    )
    assert comparison["regressions"] == ["compile"]


# ----------------------------------------------------------------------
# Reports and baselines
# ----------------------------------------------------------------------
def test_report_roundtrip_and_baseline_formats(tmp_path):
    results = {"a": _result(100.0)}
    report = bench.build_report(results, mode="quick")
    assert report["schema"] == bench.BENCH_SCHEMA_VERSION
    assert "comparison" not in report

    path = str(tmp_path / "report.json")
    bench.write_report(report, path)
    assert bench.load_baseline(path) == results

    # Bare scenario maps (historical snapshots) load too.
    bare = str(tmp_path / "bare.json")
    with open(bare, "w") as fh:
        json.dump(results, fh)
    assert bench.load_baseline(bare) == results

    with open(bare, "w") as fh:
        json.dump([1, 2], fh)
    with pytest.raises(ValueError):
        bench.load_baseline(bare)


def test_format_table_mentions_each_scenario():
    results = {"a": _result(100.0), "c": _result(5.0, "records_per_sec")}
    comparison = bench.compare(results, {"a": _result(50.0)})
    table = bench.format_table(results, comparison)
    assert "a" in table and "c" in table
    assert "ev/s" in table and "rec/s" in table
    assert "2.0" in table  # speedup column for scenario a


# ----------------------------------------------------------------------
# The suite itself (one tiny cell, filtered)
# ----------------------------------------------------------------------
def test_run_suite_filtered_smoke():
    results = bench.run_suite(quick=True, only=["matrix:raid10:write-heavy"])
    assert list(results) == ["matrix:raid10:write-heavy"]
    entry = results["matrix:raid10:write-heavy"]
    assert entry["events"] > 0
    assert entry["events_per_sec"] > 0
    assert entry["requests"] > 0


# ----------------------------------------------------------------------
# Microbenchmark kernels double as correctness smoke tests
# ----------------------------------------------------------------------
def test_kernels_return_expected_shapes():
    assert bench.engine_event_kernel(500) == 500
    total, peak = bench.timer_rearm_kernel(2_000)
    assert total == 2_001
    assert peak > 0
    assert bench.disk_random_io_kernel(50) == 50
    assert bench.layout_mapping_kernel(100) > 0
    assert bench.logspace_kernel(2, 20) == 0
