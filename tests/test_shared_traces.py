"""Shared-memory trace store: lifecycle, zero-copy attach, fan-out parity.

The invariants pinned here:

* publish/attach round-trips are value-identical and zero-copy
  (memoryview columns over the segment, no array duplication);
* the store's parent-owned lifecycle leaves nothing in ``/dev/shm`` after
  normal exit, after a worker exception, and after a parent interrupt;
* the parent-to-worker payload (cell + TraceRef pickle) is independent of
  trace length; and
* pool execution through the store is byte-identical to serial runs,
  for plain cells and fault campaigns alike.
"""

import pickle

import pytest

from repro.experiments import cache as result_cache
from repro.experiments import clear_cache
from repro.experiments.parallel import CellExecutionError, execute_cells
from repro.experiments.runner import reset_run_stats, workload_cell
from repro.traces import shm
from repro.traces.compiled import CompiledTrace
from repro.traces.shm import SharedTraceStore, TraceRef
from repro.traces.synthetic import SyntheticTraceConfig, generate_compiled

WORKLOAD = "rsrch_2"
SCALE = 0.004
N_PAIRS = 2
SCHEMES = ("raid10", "rolo-p")


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_cache()
    reset_run_stats()
    result_cache.configure(enabled=False)
    shm.detach_all()
    yield
    shm.detach_all()
    result_cache.configure(enabled=False)
    clear_cache()
    reset_run_stats()
    assert shm.leaked_segments() == []


def _trace(n_requests: int = 500, seed: int = 9) -> CompiledTrace:
    return generate_compiled(
        SyntheticTraceConfig(
            duration_s=n_requests / 50.0,
            iops=50.0,
            write_ratio=0.7,
            footprint_bytes=16 * 1024 * 1024,
            seed=seed,
            name=f"shm-test-{n_requests}",
        )
    )


def _cells(schemes=SCHEMES, **kwargs):
    params = dict(scale=SCALE, n_pairs=N_PAIRS)
    params.update(kwargs)
    return [workload_cell(s, WORKLOAD, **params) for s in schemes]


class TestPublishAttach:
    def test_roundtrip_is_value_identical(self):
        trace = _trace()
        with SharedTraceStore() as store:
            ref = store.publish(trace)
            attached = shm.attach(ref)
            try:
                assert isinstance(attached, CompiledTrace)
                assert len(attached) == len(trace)
                assert attached.name == trace.name
                assert attached.footprint_bytes == trace.footprint_bytes
                assert attached.content_hash() == trace.content_hash()
                assert list(attached.arrivals) == list(trace.arrivals)
                assert list(attached.offsets) == list(trace.offsets)
                assert list(attached.sizes) == list(trace.sizes)
                assert list(attached.kinds) == list(trace.kinds)
                # Record views materialize identically too.
                assert attached[0] == trace[0]
                assert attached[len(trace) - 1] == trace[len(trace) - 1]
            finally:
                attached.detach()

    def test_attach_is_zero_copy(self):
        trace = _trace()
        with SharedTraceStore() as store:
            ref = store.publish(trace)
            attached = shm.attach(ref)
            try:
                # Columns are memoryviews over the segment, not copies.
                assert isinstance(attached.arrivals, memoryview)
                assert isinstance(attached.kinds, memoryview)
                assert attached.nbytes() == trace.nbytes()
            finally:
                attached.detach()

    def test_publish_dedupes_by_content_hash(self):
        trace = _trace()
        with SharedTraceStore() as store:
            first = store.publish(trace)
            again = store.publish(_trace())  # same config -> same content
            other = store.publish(_trace(seed=10))
            assert first is again
            assert len(store) == 2
            assert other.segment != first.segment
            assert store.get(first.trace_hash) is first

    def test_attach_cached_memoizes_per_process(self):
        trace = _trace()
        with SharedTraceStore() as store:
            ref = store.publish(trace)
            a = shm.attach_cached(ref)
            b = shm.attach_cached(ref)
            assert a is b
            assert shm.attached_count() == 1
            shm.detach_all()
            assert shm.attached_count() == 0

    def test_empty_trace_publishes(self):
        from repro.traces.compiled import compiled_from_events

        empty = compiled_from_events([], name="empty")
        assert len(empty) == 0
        with SharedTraceStore() as store:
            ref = store.publish(empty)
            attached = shm.attach(ref)
            try:
                assert len(attached) == 0
                assert attached.duration == 0.0
            finally:
                attached.detach()


class TestLifecycle:
    def test_close_unlinks_all_segments(self):
        store = SharedTraceStore()
        ref = store.publish(_trace())
        assert shm.leaked_segments() == [ref.segment]
        store.close()
        assert shm.leaked_segments() == []
        with pytest.raises(FileNotFoundError):
            shm.attach(ref)

    def test_close_is_idempotent(self):
        store = SharedTraceStore()
        store.publish(_trace())
        store.close()
        store.close()
        assert shm.leaked_segments() == []

    def test_publish_after_close_raises(self):
        store = SharedTraceStore()
        store.close()
        with pytest.raises(RuntimeError):
            store.publish(_trace())

    def test_context_manager_unlinks_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedTraceStore() as store:
                store.publish(_trace())
                raise RuntimeError("boom")
        assert shm.leaked_segments() == []


class TestTraceRefPayload:
    def test_payload_size_independent_of_trace_length(self):
        short = _trace(200)
        long = _trace(20_000)
        assert long.nbytes() > 50 * short.nbytes()
        with SharedTraceStore() as store:
            cell = _cells()[0]
            small = pickle.dumps((cell, store.publish(short)))
            large = pickle.dumps((cell, store.publish(long)))
        # TraceRef-only payloads: a 100x longer trace costs the same
        # handful of bytes on the wire.
        assert abs(len(large) - len(small)) < 64
        assert len(large) < 4096

    def test_ref_pickles_and_restores(self):
        with SharedTraceStore() as store:
            ref = store.publish(_trace())
            clone = pickle.loads(pickle.dumps(ref))
            assert clone == ref
            assert isinstance(clone, TraceRef)
            assert clone.n_records > 0


class TestPoolParity:
    def test_pool_results_byte_identical_to_serial(self):
        cells = _cells()
        serial = [c.execute().to_dict() for c in cells]
        clear_cache()
        stats = execute_cells(cells, jobs=2)
        from repro.experiments.runner import lookup_cached

        assert stats.computed == len(cells)
        assert [lookup_cached(c.key()).to_dict() for c in cells] == serial
        assert shm.leaked_segments() == []

    def test_campaign_pool_identical_to_serial(self):
        from repro.faults import build_campaign, run_campaign
        from repro.faults.campaign import clear_memo

        def grid():
            return build_campaign(
                schemes=("raid10", "rolo-p"),
                workloads=(WORKLOAD,),
                fault_times=(5.0,),
                disks=("M0",),
                scale=SCALE,
                n_pairs=N_PAIRS,
            )

        serial = [r.to_dict() for r in run_campaign(grid(), jobs=1)]
        clear_memo()
        parallel = [r.to_dict() for r in run_campaign(grid(), jobs=2)]
        clear_memo()
        assert parallel == serial
        assert shm.leaked_segments() == []


class TestPoolCleanup:
    def test_worker_exception_names_cell_and_cleans_up(self):
        # An unknown scheme passes trace building in the parent but makes
        # build_controller raise inside the worker.
        cells = _cells(schemes=("raid10", "no-such-scheme"))
        with pytest.raises(CellExecutionError, match="no-such-scheme"):
            execute_cells(cells, jobs=2)
        assert shm.leaked_segments() == []

    def test_parent_interrupt_cleans_up(self, monkeypatch):
        from repro.experiments import runner as runner_mod

        def _interrupt(key, metrics):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod, "install_result", _interrupt)
        with pytest.raises(KeyboardInterrupt):
            execute_cells(_cells(), jobs=2)
        assert shm.leaked_segments() == []
