"""Unit tests for the logger rotation policy."""

import pytest

from repro.core.rotation import RotationPolicy


def make_policy(occupancies, threshold=0.8):
    return RotationPolicy(
        len(occupancies), threshold, lambda i: occupancies[i]
    )


class TestNextLogger:
    def test_round_robin(self):
        occ = [0.9, 0.0, 0.0, 0.0]
        policy = make_policy(occ)
        assert policy.next_logger(0) == 1

    def test_skips_full_candidates(self):
        occ = [0.9, 0.95, 0.0, 0.0]
        policy = make_policy(occ)
        assert policy.next_logger(0) == 2

    def test_wraps_around(self):
        occ = [0.1, 0.9, 0.9, 0.9]
        policy = make_policy(occ)
        assert policy.next_logger(2) == 0

    def test_none_when_all_full(self):
        occ = [0.9, 0.9, 0.9]
        policy = make_policy(occ)
        assert policy.next_logger(0) is None

    def test_excluded_candidates_skipped(self):
        occ = [0.9, 0.0, 0.0]
        policy = make_policy(occ)
        assert policy.next_logger(0, excluded=[1]) == 2

    def test_exclusion_can_exhaust(self):
        occ = [0.9, 0.0, 0.0]
        policy = make_policy(occ)
        assert policy.next_logger(0, excluded=[1, 2]) is None

    def test_threshold_boundary(self):
        occ = [0.9, 0.8]
        policy = make_policy(occ, threshold=0.8)
        # occupancy == threshold is NOT eligible
        assert policy.next_logger(0) is None

    def test_rotation_counter(self):
        occ = [0.9, 0.0]
        policy = make_policy(occ)
        policy.next_logger(0)
        policy.next_logger(0)
        assert policy.rotations == 2

    def test_peek_does_not_count(self):
        occ = [0.9, 0.0]
        policy = make_policy(occ)
        assert policy.peek_next(0) == 1
        assert policy.rotations == 0

    def test_current_out_of_range(self):
        policy = make_policy([0.0, 0.0])
        with pytest.raises(ValueError):
            policy.next_logger(5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RotationPolicy(1, 0.8, lambda i: 0.0)
        with pytest.raises(ValueError):
            RotationPolicy(3, 0.0, lambda i: 0.0)
        with pytest.raises(ValueError):
            RotationPolicy(3, 1.5, lambda i: 0.0)
