"""Property-based tests (hypothesis) on the core data structures."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache import LRUCache
from repro.core.destage import coalesce_units
from repro.core.logspace import LogSpaceError, RegionAllocator
from repro.raid.layout import Raid10Layout
from repro.reliability import AbsorbingCTMC
from repro.sim.stats import StreamingStat
from repro.traces.synthetic import (
    ALIGNMENT,
    SyntheticTraceConfig,
    generate_trace,
)

KB = 1024
MB = 1024 * KB


# ----------------------------------------------------------------------
# RegionAllocator: allocate/free sequences preserve accounting invariants.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(1, 64)), min_size=1, max_size=60
    )
)
def test_allocator_invariants_under_random_ops(ops):
    alloc = RegionAllocator(256 * KB)
    live = []  # (offset, size)
    for is_alloc, units in ops:
        size = units * KB
        if is_alloc or not live:
            try:
                offset = alloc.allocate(size)
            except LogSpaceError:
                continue
            for o, s in live:  # freshly allocated space must not overlap
                assert offset + size <= o or o + s <= offset
            live.append((offset, size))
        else:
            offset, size = live.pop(0)
            alloc.free(offset, size)
        alloc.check_invariants()
        assert alloc.allocated == sum(s for _, s in live)


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(1, 32), min_size=1, max_size=30))
def test_allocator_free_all_restores_full_coalesced_space(sizes):
    total = sum(sizes) * KB
    alloc = RegionAllocator(total)
    allocations = [(alloc.allocate(s * KB), s * KB) for s in sizes]
    for offset, size in reversed(allocations):
        alloc.free(offset, size)
    assert alloc.free_bytes == total
    assert alloc.fragments == 1
    assert alloc.largest_free_extent == total


# ----------------------------------------------------------------------
# RAID10 layout: mapping is a partition and (with spread) a bijection.
# ----------------------------------------------------------------------
layout_params = st.tuples(
    st.integers(2, 8),          # pairs
    st.sampled_from([16, 32, 64]),  # stripe unit KB
    st.booleans(),              # spread
)


@settings(max_examples=60, deadline=None)
@given(
    params=layout_params,
    offset=st.integers(0, 4 * MB - 1),
    nbytes=st.integers(1, 512 * KB),
)
def test_layout_partitions_extent(params, offset, nbytes):
    pairs, unit_kb, spread = params
    layout = Raid10Layout(pairs, unit_kb * KB, 8 * MB, spread=spread)
    assume(offset + nbytes <= layout.logical_capacity)
    segments = layout.map_extent(offset, nbytes)
    assert sum(s.nbytes for s in segments) == nbytes
    for seg in segments:
        assert 0 <= seg.pair < pairs
        assert 0 <= seg.disk_offset < layout.data_capacity
        assert seg.end_offset <= layout.data_capacity
        # Segments never straddle a stripe unit.
        unit = unit_kb * KB
        assert seg.disk_offset // unit == (seg.end_offset - 1) // unit


@settings(max_examples=60, deadline=None)
@given(params=layout_params, logical=st.integers(0, 16 * MB - 1))
def test_layout_round_trip(params, logical):
    pairs, unit_kb, spread = params
    layout = Raid10Layout(pairs, unit_kb * KB, 8 * MB, spread=spread)
    assume(logical < layout.logical_capacity)
    seg = layout.map_extent(logical, 1)[0]
    assert layout.to_logical(seg.pair, seg.disk_offset) == logical


# ----------------------------------------------------------------------
# LRU cache: size bound and exact hit semantics vs a model.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(1, 8),
    keys=st.lists(st.integers(0, 12), min_size=1, max_size=80),
)
def test_lru_matches_reference_model(capacity, keys):
    cache = LRUCache(capacity)
    model = []  # LRU->MRU order
    hits = 0
    for key in keys:
        if cache.get(key) is not None:
            assert key in model
            hits += 1
            model.remove(key)
            model.append(key)
        else:
            assert key not in model
            cache.put(key, key)
            if key in model:
                model.remove(key)
            model.append(key)
            if len(model) > capacity:
                model.pop(0)
        assert len(cache) == len(model)
        assert list(cache) == model
    assert cache.hits == hits


# ----------------------------------------------------------------------
# Destage coalescing: conservation and batch bounds.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    units=st.sets(st.integers(0, 200), min_size=1, max_size=60),
    batch_units=st.integers(1, 16),
)
def test_coalesce_conserves_units(units, batch_units):
    unit = 64 * KB
    offsets = [u * unit for u in units]
    batches = coalesce_units(offsets, unit, batch_units * unit)
    assert sum(n for _, n in batches) == len(units) * unit
    covered = set()
    for offset, nbytes in batches:
        assert nbytes <= batch_units * unit
        assert offset % unit == 0 and nbytes % unit == 0
        for base in range(offset, offset + nbytes, unit):
            assert base // unit in units
            assert base not in covered
            covered.add(base)
    assert len(covered) == len(units)


# ----------------------------------------------------------------------
# StreamingStat matches the naive computation.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100
    )
)
def test_streaming_stat_matches_naive(values):
    stat = StreamingStat()
    for v in values:
        stat.add(v)
    mean = sum(values) / len(values)
    assert stat.mean == pytest_approx(mean)
    assert stat.min == min(values)
    assert stat.max == max(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    assert abs(stat.variance - var) <= max(1e-6, abs(var) * 1e-6) + 1e-3


def pytest_approx(x):
    import pytest

    return pytest.approx(x, rel=1e-9, abs=1e-6)


# ----------------------------------------------------------------------
# CTMC: scaling laws of the mirrored-pair chain.
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    lam=st.floats(1e-7, 1e-3),
    mu=st.floats(1e-3, 1.0),
    factor=st.floats(1.5, 10.0),
)
def test_ctmc_time_rescaling(lam, mu, factor):
    """Scaling all rates by k divides the absorption time by k."""
    from repro.reliability.mttdl import mirrored_pair_chain

    base = mirrored_pair_chain(lam, mu).mean_time_to_absorption(0)
    scaled = mirrored_pair_chain(
        lam * factor, mu * factor
    ).mean_time_to_absorption(0)
    assert scaled * factor == pytest_approx_rel(base, 1e-6)


def pytest_approx_rel(x, rel):
    import pytest

    return pytest.approx(x, rel=rel)


@settings(max_examples=40, deadline=None)
@given(lam=st.floats(1e-7, 1e-4), mu=st.floats(1e-3, 1.0))
def test_absorption_probabilities_sum_to_one(lam, mu):
    chain = AbsorbingCTMC()
    chain.add_state("a", absorbing=True)
    chain.add_state("b", absorbing=True)
    chain.add_transition(0, 1, 2 * lam)
    chain.add_transition(1, 0, mu)
    chain.add_transition(1, "a", lam)
    chain.add_transition(1, "b", lam)
    probs = chain.absorption_probabilities(0)
    # Tolerance accommodates the conditioning of extreme mu/lambda ratios.
    assert abs(sum(probs.values()) - 1.0) < 1e-6


# ----------------------------------------------------------------------
# Trace generator: structural guarantees for arbitrary configurations.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    iops=st.floats(1.0, 60.0),
    write_ratio=st.floats(0.3, 1.0),
    seq=st.floats(0.0, 1.0),
    locality=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
)
def test_generated_traces_always_wellformed(
    iops, write_ratio, seq, locality, seed
):
    config = SyntheticTraceConfig(
        duration_s=30.0,
        iops=iops,
        write_ratio=write_ratio,
        avg_request_bytes=16 * KB,
        size_sigma=0.5,
        footprint_bytes=8 * MB,
        write_sequential_fraction=seq,
        read_locality=locality,
        seed=seed,
    )
    trace = generate_trace(config)
    prev = 0.0
    for record in trace:
        assert record.timestamp >= prev
        prev = record.timestamp
        assert record.timestamp < 30.0
        assert record.offset % ALIGNMENT == 0
        assert record.nbytes % ALIGNMENT == 0
        assert record.offset + record.nbytes <= config.footprint_bytes
