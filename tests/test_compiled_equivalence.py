"""Equivalence suite: compiled/streamed replay is bit-identical to legacy.

The hot-path overhaul (compiled traces, indexed arrival streaming, heap
hygiene, pooled events) is pure mechanics — it must not change a single
reported number.  These tests replay the same workload through
:func:`run_trace` twice, once from a legacy :class:`Trace` and once from
its :class:`CompiledTrace` counterpart, and require the serialized
:class:`RunMetrics` to be *byte-identical* (``json.dumps`` of
``to_dict()``), for every scheme, with tracing attached, and under fault
injection.

``events_processed`` is asserted equal as well: both replay paths schedule
exactly one arrival event per trace record (the driver keeps only the next
arrival in the heap either way), so the arrival-streaming delta is zero.
"""

import json

import pytest

from repro.core import ArrayConfig, build_controller, run_trace
from repro.faults.injector import FaultInjector
from repro.faults.oracle import ConsistencyOracle
from repro.faults.schedule import FaultSchedule
from repro.obs.tracer import RecordingTracer
from repro.sim import Simulator
from repro.traces import (
    Burstiness,
    SyntheticTraceConfig,
    compile_trace,
    generate_compiled,
    generate_trace,
)

MB = 1024 * 1024

SCHEMES = ["raid10", "graid", "rolo-p", "rolo-r", "rolo-e"]

TRACE_CONFIG = SyntheticTraceConfig(
    duration_s=20.0,
    iops=100,
    write_ratio=0.8,
    avg_request_bytes=64 * 1024,
    size_sigma=0.5,
    footprint_bytes=96 * MB,
    burstiness=Burstiness.MEDIUM,
    burst_cycle_s=8.0,
    read_locality=0.6,
    seed=99,
    name="equiv",
)

ARRAY_CONFIG = ArrayConfig(n_pairs=4).scaled(0.01)


def _metrics_bytes(metrics) -> bytes:
    return json.dumps(metrics.to_dict(), sort_keys=True).encode()


def _replay(scheme, trace, *, tracer=None, fault_spec=None):
    sim = Simulator()
    if fault_spec is None:
        controller = build_controller(scheme, sim, ARRAY_CONFIG, tracer=tracer)
        metrics = run_trace(controller, trace)
        controller.assert_consistent()
        return sim, controller, metrics
    oracle = ConsistencyOracle()
    controller = build_controller(scheme, sim, ARRAY_CONFIG, oracle=oracle)
    injector = FaultInjector(
        sim, controller, FaultSchedule.parse(fault_spec), oracle=oracle
    )
    injector.arm()
    metrics = run_trace(controller, trace)
    injector._check("end")
    return sim, controller, metrics


@pytest.fixture(scope="module")
def traces():
    legacy = generate_trace(TRACE_CONFIG)
    compiled = generate_compiled(TRACE_CONFIG)
    assert list(compiled) == legacy.records  # precondition for everything below
    return legacy, compiled


@pytest.mark.parametrize("scheme", SCHEMES)
def test_metrics_byte_identical_across_schemes(scheme, traces):
    legacy, compiled = traces
    sim_a, _, metrics_a = _replay(scheme, legacy)
    sim_b, _, metrics_b = _replay(scheme, compiled)
    assert _metrics_bytes(metrics_a) == _metrics_bytes(metrics_b)
    # One arrival event per record on both paths: zero streaming delta.
    assert sim_a.events_processed == sim_b.events_processed


def test_metrics_byte_identical_with_tracer(traces):
    legacy, compiled = traces
    tracer_a, tracer_b = RecordingTracer(), RecordingTracer()
    _, _, metrics_a = _replay("rolo-p", legacy, tracer=tracer_a)
    _, _, metrics_b = _replay("rolo-p", compiled, tracer=tracer_b)
    assert _metrics_bytes(metrics_a) == _metrics_bytes(metrics_b)
    assert len(tracer_a.events) == len(tracer_b.events) > 0


def test_metrics_byte_identical_under_fault_injection(traces):
    legacy, compiled = traces
    spec = "fail@10:M1"
    sim_a, _, metrics_a = _replay("rolo-p", legacy, fault_spec=spec)
    sim_b, _, metrics_b = _replay("rolo-p", compiled, fault_spec=spec)
    assert _metrics_bytes(metrics_a) == _metrics_bytes(metrics_b)
    assert sim_a.events_processed == sim_b.events_processed


def test_compile_trace_of_workload_replays_identically(traces):
    # compile_trace() on an existing legacy trace (not just the generator
    # fast path) feeds the indexed driver the same columns.
    legacy, _ = traces
    recompiled = compile_trace(legacy)
    _, _, metrics_a = _replay("raid10", legacy)
    _, _, metrics_b = _replay("raid10", recompiled)
    assert _metrics_bytes(metrics_a) == _metrics_bytes(metrics_b)
