"""Unit tests for the mechanical timing model."""

import random

import pytest

from repro.disk.mechanical import MechanicalModel
from repro.disk.models import SECTOR_SIZE, ULTRASTAR_36Z15


@pytest.fixture
def model():
    return MechanicalModel(ULTRASTAR_36Z15)


class TestSeekCurve:
    def test_zero_distance_is_free(self, model):
        assert model.seek_time(1000, 1000) == 0.0

    def test_same_cylinder_is_free(self, model):
        # Two sectors within one cylinder.
        assert model.seek_time(0, 1) == 0.0

    def test_full_stroke_matches_spec(self, model):
        last = ULTRASTAR_36Z15.capacity_sectors - 1
        assert model.seek_time(0, last) == pytest.approx(
            ULTRASTAR_36Z15.full_stroke_seek_time, rel=0.01
        )

    def test_monotone_in_distance(self, model):
        sectors = ULTRASTAR_36Z15.capacity_sectors
        times = [
            model.seek_time(0, int(sectors * f))
            for f in (0.1, 0.3, 0.5, 0.8, 0.99)
        ]
        assert times == sorted(times)

    def test_bounded_by_track_and_full_stroke(self, model):
        sectors = ULTRASTAR_36Z15.capacity_sectors
        rng = random.Random(7)
        for _ in range(200):
            a = rng.randrange(sectors)
            b = rng.randrange(sectors)
            t = model.seek_time(a, b)
            if t > 0:
                assert (
                    ULTRASTAR_36Z15.track_to_track_seek_time
                    <= t
                    <= ULTRASTAR_36Z15.full_stroke_seek_time
                )

    def test_mean_random_seek_near_spec_average(self, model):
        """Calibration check: E[seek] over random pairs ~ avg_seek_time."""
        sectors = ULTRASTAR_36Z15.capacity_sectors
        rng = random.Random(11)
        total = 0.0
        n = 3000
        for _ in range(n):
            total += model.seek_time(rng.randrange(sectors), rng.randrange(sectors))
        assert total / n == pytest.approx(
            ULTRASTAR_36Z15.avg_seek_time, rel=0.08
        )

    def test_symmetry(self, model):
        assert model.seek_time(0, 10_000_000) == model.seek_time(
            10_000_000, 0
        )

    def test_negative_sector_rejected(self, model):
        with pytest.raises(ValueError):
            model.cylinder_of(-1)


class TestServiceTime:
    def test_sequential_pays_transfer_only(self, model):
        t = model.service_time(512, 512, 64 * 1024)
        assert t == pytest.approx(ULTRASTAR_36Z15.transfer_time(64 * 1024))

    def test_random_includes_rotation_and_seek(self, model):
        sectors = ULTRASTAR_36Z15.capacity_sectors
        t = model.service_time(0, sectors // 2, 64 * 1024)
        expected = (
            model.seek_time(0, sectors // 2)
            + ULTRASTAR_36Z15.avg_rotational_latency
            + ULTRASTAR_36Z15.transfer_time(64 * 1024)
        )
        assert t == pytest.approx(expected)

    def test_nearby_nonsequential_pays_rotation(self, model):
        # Same cylinder, different sector: no seek but rotational latency.
        t = model.service_time(0, 4, 4096)
        assert t == pytest.approx(
            ULTRASTAR_36Z15.avg_rotational_latency
            + ULTRASTAR_36Z15.transfer_time(4096)
        )

    def test_larger_transfer_takes_longer(self, model):
        t1 = model.service_time(0, 1_000_000, 64 * 1024)
        t2 = model.service_time(0, 1_000_000, 1024 * 1024)
        assert t2 > t1


class TestEndSector:
    def test_exact_multiple(self):
        assert MechanicalModel.end_sector(100, 512 * 8) == 108

    def test_rounds_up_partial_sector(self):
        assert MechanicalModel.end_sector(100, 513) == 102

    def test_cylinder_mapping_monotone(self, model):
        cyls = [
            model.cylinder_of(s)
            for s in range(0, ULTRASTAR_36Z15.capacity_sectors, 1_000_000)
        ]
        assert cyls == sorted(cyls)
        assert max(cyls) <= ULTRASTAR_36Z15.cylinders - 1
