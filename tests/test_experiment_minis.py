"""Micro-scale smoke runs of the remaining experiment families."""

import pytest

from repro.experiments import clear_cache, get_experiment


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield


class TestSweepExperiments:
    def test_fig11_mini(self):
        report = get_experiment("fig11").run(
            scale=0.01, pair_counts=(2, 3), workloads=("rsrch_2",)
        )
        table = report.tables[0]
        assert [row[1] for row in table.rows] == [4, 6]

    def test_fig12_mini(self):
        report = get_experiment("fig12").run(
            scale=0.01, pair_counts=(2,), workloads=("rsrch_2",)
        )
        table = report.tables[0]
        # Response times are positive for every scheme column.
        assert all(v > 0 for v in table.rows[0][2:])

    def test_fig13_mini(self):
        report = get_experiment("fig13").run(
            scale=0.01,
            n_pairs=2,
            free_space_gb=(8, 4),
            workloads=("rsrch_2",),
        )
        table = report.tables[0]
        assert [row[1] for row in table.rows] == [8, 4]
        rotations = report.get_table(
            "rotations per run (the paper's explanation)"
        )
        assert rotations is not None

    def test_fig14_mini(self):
        report = get_experiment("fig14").run(
            scale=0.01, n_pairs=2, workloads=("rsrch_2",)
        )
        energy = report.tables[0]
        assert energy.rows[0][1] == pytest.approx(1.0)  # raid10 norm

    def test_sens_stripe_mini(self):
        report = get_experiment("sens-stripe").run(
            scale=0.01,
            n_pairs=2,
            stripe_units_kb=(64,),
            workloads=("rsrch_2",),
        )
        assert len(report.tables[0].rows) == 1

    def test_sens_disksize_mini(self):
        report = get_experiment("sens-disksize").run(
            scale=0.01,
            n_pairs=2,
            rolo_free_gb=(8,),
            workloads=("rsrch_2",),
        )
        assert len(report.tables[0].rows) == 1


class TestExtensionMinis:
    def test_ext_recovery_mini(self):
        report = get_experiment("ext-recovery").run(
            scale=0.005, n_pairs=2, rebuild_mb=16
        )
        table = report.tables[0]
        assert len(table.rows) == 10  # 5 schemes x 2 failure classes
        # Rebuild times are positive everywhere.
        assert all(row[3] > 0 for row in table.rows)

    def test_ext_raid5_mini(self):
        report = get_experiment("ext-raid5").run(
            scale=0.005,
            n_disks=4,
            iops_levels=(20,),
            request_kb=(8,),
            duration_s=30.0,
        )
        table = report.tables[0]
        assert len(table.rows) == 1
        assert table.rows[0][4] > 0.9  # speedup sanity

    def test_ext_idleslots_mini(self):
        report = get_experiment("ext-idleslots").run(
            scale=0.005, iops_levels=(50,), duration_s=60.0
        )
        table = report.tables[0]
        assert table.rows  # both roles measured
        assert all(0 <= row[3] <= 1 for row in table.rows)


class TestCliSvg:
    def test_run_with_svg_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(["run", "fig9", "--svg-dir", str(tmp_path)]) == 0
        )
        svgs = list(tmp_path.glob("*.svg"))
        assert svgs
        assert "<svg" in svgs[0].read_text()
