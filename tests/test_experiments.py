"""Tests for the experiment harness (registry, report, quick runs)."""

import pytest

from repro.experiments import (
    Report,
    Series,
    Table,
    clear_cache,
    get_experiment,
    list_experiments,
)
from repro.experiments.runner import (
    DEFAULT_SCALES,
    run_scheme_set,
    simulate_workload,
    workload_scale,
)

EXPECTED_IDS = {
    "fig2",
    "fig3",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table1",
    "table4",
    "table5",
    "sens-stripe",
    "sens-disksize",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {e.experiment_id for e in list_experiments()}
        assert EXPECTED_IDS <= ids

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_experiments_carry_paper_refs(self):
        for exp in list_experiments():
            assert exp.paper_ref
            assert exp.title


class TestReportRendering:
    def test_table_rendering_aligned(self):
        table = Table("t", ["a", "long_header"])
        table.add_row(1, 2.5)
        table.add_row(10, 0.333333)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== t =="
        assert "long_header" in lines[1]
        assert len(lines) == 5

    def test_table_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_column(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_series_render(self):
        series = Series("s", "x", "y")
        series.add(1, 0.5)
        assert "(1, 0.5)" in series.render()
        assert series.ys() == [0.5]

    def test_report_to_text(self):
        report = Report("id", "Title")
        report.parameters["scale"] = 0.1
        report.add_table(Table("t", ["a"])).add_row(1)
        report.add_series(Series("s", "x", "y"))
        text = report.to_text()
        assert "### id: Title" in text
        assert "scale=0.1" in text
        assert "== t ==" in text

    def test_report_lookup(self):
        report = Report("id", "t")
        table = report.add_table(Table("x", ["a"]))
        assert report.get_table("x") is table
        assert report.get_table("nope") is None
        series = report.add_series(Series("s", "x", "y"))
        assert report.get_series("s") is series
        assert report.get_series("nope") is None


class TestRunner:
    def test_workload_scale_defaults(self):
        assert workload_scale("src2_2", None) == DEFAULT_SCALES["src2_2"]
        assert workload_scale("src2_2", 0.01) == 0.01
        assert workload_scale("unknown", None) == 0.05

    def test_simulate_workload_cached(self):
        clear_cache()
        a = simulate_workload(
            "raid10", "rsrch_2", scale=0.02, n_pairs=2
        )
        b = simulate_workload(
            "raid10", "rsrch_2", scale=0.02, n_pairs=2
        )
        assert a is b

    def test_config_overrides_change_cache_key(self):
        clear_cache()
        a = simulate_workload(
            "rolo-p", "rsrch_2", scale=0.02, n_pairs=2
        )
        b = simulate_workload(
            "rolo-p",
            "rsrch_2",
            scale=0.02,
            n_pairs=2,
            free_space_bytes=2 * 1024 * 1024,
        )
        assert a is not b

    def test_run_scheme_set_returns_all(self):
        results = run_scheme_set(
            "rsrch_2", schemes=("raid10", "rolo-p"), scale=0.02, n_pairs=2
        )
        assert set(results) == {"raid10", "rolo-p"}


class TestQuickExperimentRuns:
    """Tiny-scale smoke runs of each experiment family."""

    def test_fig9_values_match_paper_equations(self):
        report = get_experiment("fig9").run()
        table = report.get_table("Fig 9: MTTDL (years, closed forms)")
        assert len(table.rows) == 7
        # RoLo-R column dominates RAID10 column everywhere.
        rolo_r = table.column("rolo-r")
        raid10 = table.column("raid10")
        assert all(r > b for r, b in zip(rolo_r, raid10))

    def test_fig10_mini(self):
        clear_cache()
        report = get_experiment("fig10").run(
            scale=0.01, n_pairs=2, workloads=("rsrch_2",)
        )
        energy = report.get_table(
            "Fig 10(a): energy consumption (normalized to RAID10)"
        )
        assert len(energy.rows) == 1
        row = energy.rows[0]
        assert row[1] == pytest.approx(1.0)  # raid10 vs itself

    def test_fig2_mini(self):
        report = get_experiment("fig2").run(
            scale=0.01,
            iops_levels=(50,),
            capacities_gb=(8,),
            target_cycles=2,
        )
        ratios = report.get_table("Fig 2(c): destaging interval ratio")
        assert len(ratios.rows) == 1
        assert 0 < ratios.rows[0][2] < 1

    def test_fig3_mini(self):
        report = get_experiment("fig3").run(
            scale=0.01, iops_levels=(50,), duration_s=120.0
        )
        table = report.get_table("Fig 3: duty fractions")
        idle = table.rows[0][1]
        assert 0.5 < idle <= 1.0

    def test_table1_mini(self):
        clear_cache()
        report = get_experiment("table1").run(
            scale=0.01, n_pairs=2, workloads=("rsrch_2",)
        )
        table = report.tables[0]
        raid10_index = table.headers.index("raid10")
        assert table.rows[0][raid10_index] == 0
