"""Deeper tests of RoLo-E internals: cache space accounting, the SPINNING
phase, and partial-segment hit logic."""

import pytest

from tests.conftest import make_trace, small_config
from repro.core import RoloEController, run_trace
from repro.core.base import run_trace as run_trace_base
from repro.core.rolo_e import _Mode
from repro.disk.power import PowerState
from repro.sim import Simulator

KB = 1024
MB = 1024 * KB


def build(sim, **overrides):
    return RoloEController(sim, small_config(**overrides))


class TestCacheSpaceAccounting:
    def test_cache_fill_charges_log_space(self, sim):
        controller = build(sim)
        run_trace_base(
            controller,
            make_trace([(0.0, "r", 64 * KB, 64 * KB)]),
            drain=False,
        )
        total_cache = sum(
            r.cache_used
            for r in controller.primary_logs + controller.mirror_logs
        )
        assert total_cache == 64 * KB

    def test_eviction_releases_space(self, sim):
        # Cache capacity: 30% of 4MB = 1.2MB -> 19 units of 64K.
        controller = build(sim)
        capacity_units = controller._cache.capacity
        # Odd stripe numbers all map to pair 1 (the off-duty pair), so
        # every read is a cacheable miss.
        reads = [
            (float(i), "r", (1 + 2 * i) * 64 * KB, 64 * KB)
            for i in range(capacity_units + 5)
        ]
        run_trace_base(controller, make_trace(reads), drain=False)
        assert controller._cache.evictions >= 5
        total_cache = sum(
            r.cache_used
            for r in controller.primary_logs + controller.mirror_logs
        )
        # Live cache charge never exceeds the configured capacity.
        assert total_cache <= capacity_units * 64 * KB
        for region in controller.primary_logs + controller.mirror_logs:
            region.check_invariants()

    def test_cache_cleared_on_cycle_end(self, sim):
        controller = build(sim)
        trace = make_trace(
            [(0.0, "r", 64 * KB, 64 * KB)]
            + [(1.0 + 0.05 * i, "w", i * 64 * KB, 64 * KB) for i in range(55)]
        )
        run_trace(controller, trace)
        assert len(controller._cache) == 0
        for region in controller.primary_logs + controller.mirror_logs:
            assert region.cache_used == 0


class TestSpinningPhase:
    def test_logging_continues_while_array_wakes(self, sim):
        """Writes during the SPINNING window keep landing in the log."""
        controller = build(sim)
        # 52 writes cross the 0.8 threshold; several more arrive during
        # the ~11 s spin-up window.
        trace = make_trace(
            [(0.05 * i, "w", (i % 30) * 64 * KB, 64 * KB) for i in range(80)]
        )
        metrics = run_trace_base(controller, trace, drain=False)
        assert metrics.requests == 80
        # Logging continued past the destage trigger (52 units at the
        # 0.8 threshold): more than 52 writes were absorbed by the log.
        writes_logged = controller.metrics.logged_bytes // (2 * 64 * KB)
        assert writes_logged > 52
        # And the bulk of writes stayed fast (the tiny test region cannot
        # buffer the whole 11 s wake window, so the tail may stall).
        assert metrics.response_histogram.quantile(0.8) < 0.1

    def test_mode_returns_to_logging(self, sim):
        controller = build(sim)
        trace = make_trace(
            [(0.05 * i, "w", (i % 30) * 64 * KB, 64 * KB) for i in range(60)]
        )
        run_trace(controller, trace)
        assert controller._mode is _Mode.LOGGING


class TestSegmentHitLogic:
    def test_partially_covered_segment_is_miss(self, sim):
        """A read spanning a cached unit AND a cold unit must miss."""
        controller = build(sim)
        trace = make_trace(
            [
                (0.0, "w", 64 * KB, 64 * KB),  # unit 1 logged (hit-able)
                # Read covering units 1 and 2 of the same pair: unit 2
                # (offset 192K maps to pair 1 row 1) is cold.
                (5.0, "r", 64 * KB, 64 * KB),
                (6.0, "r", 192 * KB, 64 * KB),
            ]
        )
        metrics = run_trace_base(controller, trace, drain=False)
        assert metrics.read_hits == 1
        assert metrics.read_misses == 1

    def test_duty_pair_counts_as_hit_without_cache(self, sim):
        controller = build(sim, read_cache=False)
        metrics = run_trace_base(
            controller,
            make_trace([(0.0, "r", 0, 64 * KB)]),
            drain=False,
        )
        assert metrics.read_hits == 1


class TestWriteFallback:
    def test_oversized_write_goes_in_place(self, sim):
        """A write larger than the whole log region falls back in place."""
        controller = build(sim, free_space_bytes=512 * KB)
        metrics = run_trace(
            controller, make_trace([(0.0, "w", 0, 1 * MB)])
        )
        assert metrics.requests == 1
        controller.assert_consistent()
        # Both home disks of each touched pair received in-place writes.
        assert controller.primaries[0].foreground_ops > 0
        assert controller.mirrors[0].foreground_ops > 0
