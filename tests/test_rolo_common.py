"""Edge-path tests for the shared rotated-logging machinery."""

import pytest

from tests.conftest import make_trace, small_config, write_burst
from repro.core import RoloPController, run_trace
from repro.core.base import run_trace as run_trace_base
from repro.disk.power import PowerState
from repro.sim import Simulator

KB = 1024
MB = 1024 * KB


def build(sim, **overrides):
    return RoloPController(sim, small_config(**overrides))


class TestAppendTarget:
    def test_prefers_current_on_duty(self, sim):
        controller = build(sim)
        assert controller._append_target(0, 64 * KB) == 0

    def test_previous_used_while_current_spinning_up(self, sim):
        controller = build(sim, n_pairs=3)
        # Simulate a rotation: slot 0 moved to mirror 1 (still STANDBY),
        # previous duty was mirror 0 (spinning).
        controller._on_duty = [1]
        controller._previous_duty = [0]
        assert controller._append_target(0, 64 * KB) == 0

    def test_current_used_once_spun_up(self, sim):
        controller = build(sim, n_pairs=3)
        controller._on_duty = [1]
        controller._previous_duty = [0]
        controller.mirrors[1].request_spin_up()
        sim.run()
        assert controller._append_target(0, 64 * KB) == 1

    def test_none_when_nowhere_fits(self, sim):
        controller = build(sim, free_space_bytes=512 * KB)
        # Fill the on-duty region completely.
        controller.mirror_logs[0].append(512 * KB, {0: 512 * KB}, 0)
        controller._previous_duty = [None]
        # Current cannot fit; no previous: in-place fallback.
        assert controller._append_target(0, 64 * KB) is None

    def test_inplace_fallback_still_completes_request(self, sim):
        controller = build(sim, free_space_bytes=512 * KB)
        controller.mirror_logs[0].append(512 * KB, {0: 512 * KB}, 0)
        metrics = run_trace_base(controller, write_burst(1), drain=False)
        assert metrics.requests == 1
        # Second copy went in place to the target mirror.
        assert controller.mirrors[0].foreground_ops == 1


class TestPrewake:
    def test_next_candidate_woken_before_rotation(self, sim):
        controller = build(sim, n_pairs=3)
        # 4MB region; prewake at 0.5 * 0.8 = 40% => ~26 writes of 64K.
        run_trace_base(controller, write_burst(30), drain=False)
        assert controller._prewoken
        next_mirror = controller.mirrors[1]
        assert next_mirror.state.spun_up or (
            next_mirror.state is PowerState.SPINNING_UP
        )

    def test_prewake_flag_resets_after_rotation(self, sim):
        controller = build(sim, n_pairs=3)
        run_trace(controller, write_burst(55, gap=0.05))
        assert controller.metrics.rotations >= 1
        # After the rotation the flag must be clear for the next period.
        assert not controller._prewoken

    def test_no_prewake_below_fraction(self, sim):
        controller = build(sim, n_pairs=3)
        run_trace_base(controller, write_burst(5), drain=False)
        assert not controller._prewoken
        assert controller.mirrors[1].state is PowerState.STANDBY


class TestEpochReclaim:
    def test_rotation_epoch_boundaries(self, sim):
        controller = build(sim, n_pairs=3)
        assert controller._epoch == 0
        run_trace_base(controller, write_burst(55, gap=0.05), drain=False)
        assert controller._epoch == controller.metrics.rotations

    def test_destage_reclaims_only_older_epochs(self, sim):
        controller = build(sim, n_pairs=3)
        # Fill to rotate once, then write a few more into epoch 1.
        run_trace_base(controller, write_burst(58, gap=0.05), drain=False)
        sim.run(until=sim.now + 60.0)  # let decentralized destage finish
        # Epoch-1 appends (on the new on-duty logger) must still be live.
        live_new = sum(
            region.live_bytes(p)
            for region in controller.mirror_logs
            for p in range(3)
        )
        current_dirty = sum(len(s) for s in controller._dirty)
        if current_dirty > 0:
            assert live_new > 0
