"""Unit tests for the statistics collectors."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, StreamingStat, TimeWeightedStat


class TestStreamingStat:
    def test_empty(self):
        s = StreamingStat()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.min == 0.0
        assert s.max == 0.0
        assert s.total == 0.0

    def test_single_value(self):
        s = StreamingStat()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.min == 5.0
        assert s.max == 5.0
        assert s.variance == 0.0

    def test_mean_and_total(self):
        s = StreamingStat()
        for v in [1.0, 2.0, 3.0, 4.0]:
            s.add(v)
        assert s.mean == pytest.approx(2.5)
        assert s.total == pytest.approx(10.0)

    def test_variance_matches_numpy_definition(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        s = StreamingStat()
        for v in values:
            s.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert s.variance == pytest.approx(var)
        assert s.stdev == pytest.approx(math.sqrt(var))

    def test_min_max_track_extremes(self):
        s = StreamingStat()
        for v in [3.0, -1.0, 10.0, 2.0]:
            s.add(v)
        assert s.min == -1.0
        assert s.max == 10.0

    def test_merge_equals_combined_stream(self):
        a, b, combined = StreamingStat(), StreamingStat(), StreamingStat()
        for v in [1.0, 2.0, 3.0]:
            a.add(v)
            combined.add(v)
        for v in [10.0, 20.0]:
            b.add(v)
            combined.add(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.min == combined.min
        assert a.max == combined.max

    def test_merge_into_empty(self):
        a, b = StreamingStat(), StreamingStat()
        b.add(4.0)
        a.merge(b)
        assert a.count == 1
        assert a.mean == 4.0

    def test_merge_empty_is_noop(self):
        a, b = StreamingStat(), StreamingStat()
        a.add(4.0)
        a.merge(b)
        assert a.count == 1


class TestTimeWeightedStat:
    def test_integral_of_constant(self):
        t = TimeWeightedStat(level=3.0)
        t.close(10.0)
        assert t.integral == pytest.approx(30.0)

    def test_piecewise_levels(self):
        t = TimeWeightedStat()
        t.update(2.0, 5.0)   # level 0 for [0,2)
        t.update(4.0, 1.0)   # level 5 for [2,4)
        t.close(10.0)        # level 1 for [4,10)
        assert t.integral == pytest.approx(0 * 2 + 5 * 2 + 1 * 6)

    def test_mean(self):
        t = TimeWeightedStat()
        t.update(5.0, 10.0)
        assert t.mean(10.0) == pytest.approx((0 * 5 + 10 * 5) / 10)

    def test_time_backwards_rejected(self):
        t = TimeWeightedStat()
        t.update(5.0, 1.0)
        with pytest.raises(ValueError):
            t.update(4.0, 2.0)

    def test_mean_with_zero_elapsed(self):
        t = TimeWeightedStat()
        assert t.mean(0.0) == 0.0


class TestCounter:
    def test_default_zero(self):
        c = Counter()
        assert c["missing"] == 0

    def test_incr(self):
        c = Counter()
        c.incr("a")
        c.incr("a", 2)
        assert c["a"] == 3
        assert c.total == 3

    def test_as_dict_is_copy(self):
        c = Counter()
        c.incr("a")
        d = c.as_dict()
        d["a"] = 99
        assert c["a"] == 1


class TestHistogram:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_bucket_assignment(self):
        h = Histogram([1.0, 10.0, 100.0])
        for v in [0.5, 1.0]:
            h.add(v)
        h.add(5.0)
        h.add(1000.0)
        assert h.counts == [2, 1, 0, 1]
        assert h.count == 4

    def test_exponential_constructor(self):
        h = Histogram.exponential(1.0, 2.0, 4)
        assert h.bounds == [1.0, 2.0, 4.0, 8.0]

    def test_quantile(self):
        h = Histogram([1.0, 2.0, 3.0, 4.0])
        for v in [0.5] * 50 + [1.5] * 40 + [2.5] * 10:
            h.add(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.9) == 2.0
        assert h.quantile(0.95) == 3.0
        assert h.quantile(1.0) == 3.0

    def test_quantile_overflow_is_inf(self):
        h = Histogram([1.0])
        h.add(5.0)
        assert h.quantile(0.9) == math.inf

    def test_quantile_validation(self):
        h = Histogram([1.0])
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_empty(self):
        h = Histogram([1.0])
        assert h.quantile(0.5) == 0.0

    def test_nonzero_buckets(self):
        h = Histogram([1.0, 2.0])
        h.add(0.5)
        h.add(9.0)
        assert h.nonzero_buckets() == [(1.0, 1), (math.inf, 1)]
