#!/usr/bin/env python3
"""Reliability analysis: Figure 9 plus the spin-derated combined measure.

Run with::

    python examples/reliability_analysis.py

Prints the MTTDL-vs-MTTR sweep (closed forms and exact CTMC solutions) and
then combines MTTDL with measured disk-spin frequencies — the paper's
argument for why RoLo-P/R beat GRAID even where raw MTTDL is close.
"""

from repro.reliability import (
    SpinDerating,
    mttdl_closed_form,
    mttdl_ctmc,
    mttdl_sweep,
)
from repro.reliability.mttdl import HOURS_PER_DAY, HOURS_PER_YEAR

LAMBDA = 1e-5  # one failure per 10^5 hours, as in the paper
SCHEMES = ("rolo-r", "raid10", "rolo-p", "graid", "rolo-e")


def main() -> None:
    print("Figure 9: MTTDL (years) vs MTTR (days), lambda = 1e-5 / hour")
    header = f"{'MTTR':>5s}" + "".join(f"{s:>10s}" for s in SCHEMES)
    print(header)
    for days, values in mttdl_sweep(
        lam=LAMBDA, schemes=("rolo-r", "raid10", "rolo-p", "graid")
    ):
        mu = 1.0 / (days * HOURS_PER_DAY)
        cells = ""
        for scheme in SCHEMES:
            years = mttdl_closed_form(scheme, LAMBDA, mu) / HOURS_PER_YEAR
            cells += f"{years:10.0f}"
        print(f"{days:4.0f}d{cells}")

    mu = 1.0 / (3 * HOURS_PER_DAY)
    print("\nExact CTMC solutions at MTTR = 3 days (years):")
    for scheme in SCHEMES:
        years = mttdl_ctmc(scheme, LAMBDA, mu) / HOURS_PER_YEAR
        print(f"  {scheme:7s} {years:10.0f}")

    # The paper's Table I spin counts, interpreted over a 24 h proj_0
    # replay on a 41-disk installation.
    print(
        "\nCombined measure: MTTDL after derating lambda for disk-spin "
        "wear\n(Table I proj_0 spin counts, 24h horizon, 41 disks):"
    )
    derate = SpinDerating(base_lambda_per_hour=LAMBDA)
    spin_counts = {
        "raid10": 0,
        "graid": 120,
        "rolo-p": 12,
        "rolo-r": 12,
        "rolo-e": 2874,
    }
    adjusted = derate.compare(
        mu, spin_counts, horizon_hours=24.0, n_disks=41
    )
    for scheme in SCHEMES:
        plain = mttdl_closed_form(scheme, LAMBDA, mu) / HOURS_PER_YEAR
        print(
            f"  {scheme:7s} plain {plain:8.0f}y -> "
            f"spin-derated {adjusted[scheme]:8.0f}y "
            f"({spin_counts[scheme]} spins)"
        )


if __name__ == "__main__":
    main()
