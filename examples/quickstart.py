#!/usr/bin/env python3
"""Quickstart: simulate RoLo-P against plain RAID10 on a small workload.

Run with::

    python examples/quickstart.py

This builds a 10-pair RAID10 array of IBM Ultrastar 36Z15 drives, replays
the same write-heavy synthetic trace through the plain-RAID10 baseline and
the RoLo-P rotated-logging controller, and prints the energy/performance
comparison — the 60-second version of the paper's Figure 10.
"""

from repro.core import ArrayConfig, build_controller, run_trace
from repro.sim import Simulator
from repro.traces import SyntheticTraceConfig, generate_trace

KB = 1024
MB = 1024 * KB


def main() -> None:
    # A 10-pair array, with capacities scaled down 50x so the demo's
    # 5-minute trace spans multiple logging periods (see DESIGN.md §3).
    config = ArrayConfig(n_pairs=10).scaled(0.02)

    # 40 write IOPS of 64 KB requests, mildly sequential, over a 256 MiB
    # working set - a miniature of the paper's src2_2 trace.
    trace = generate_trace(
        SyntheticTraceConfig(
            duration_s=300.0,
            iops=40.0,
            write_ratio=0.98,
            avg_request_bytes=64 * KB,
            footprint_bytes=256 * MB,
            write_sequential_fraction=0.3,
            read_locality=0.8,
            seed=7,
        )
    )
    print(f"trace: {len(trace)} requests over {trace.duration:.0f}s\n")

    results = {}
    for scheme in ("raid10", "rolo-p"):
        sim = Simulator()
        controller = build_controller(scheme, sim, config)
        metrics = run_trace(controller, trace)
        controller.assert_consistent()  # every mirror byte is back in sync
        results[scheme] = metrics
        print(
            f"{scheme:8s}  mean response = {metrics.mean_response_time_ms:7.3f} ms   "
            f"mean power = {metrics.mean_power_w:6.1f} W   "
            f"disk spins = {metrics.spin_cycle_count}   "
            f"logger rotations = {metrics.rotations}"
        )

    base, rolo = results["raid10"], results["rolo-p"]
    saved = 1 - rolo.total_energy_j / base.total_energy_j
    slowdown = rolo.response_time.mean / base.response_time.mean - 1
    print(
        f"\nRoLo-P saved {saved:.1%} energy for a "
        f"{slowdown:+.1%} response-time change."
    )


if __name__ == "__main__":
    main()
