#!/usr/bin/env python3
"""Failure-recovery drill: who wakes up when a disk dies? (paper §III-C)

Run with::

    python examples/failure_recovery.py

Primes every scheme with the same write stream, then fails (a) a primary
disk and (b) a mirrored disk, and reports how many sleeping disks each
scheme must spin up to rebuild — the paper's argument for why RoLo-P's
MTTDL beats GRAID's in Figure 9 — plus the measured rebuild times.
It also demonstrates §III-D's logging-service continuity: when RoLo-P's
on-duty logger fails, the next mirror takes over immediately.
"""

from repro.core import (
    ArrayConfig,
    RecoveryProcess,
    build_controller,
    plan_recovery,
)
from repro.core.base import run_trace as run_trace_base
from repro.sim import Simulator
from repro.traces import build_workload_trace

MB = 1024 * 1024
SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")


def drill(scheme: str, failure_role: str) -> str:
    sim = Simulator()
    config = ArrayConfig(n_pairs=10).scaled(0.01)
    controller = build_controller(scheme, sim, config)
    trace = build_workload_trace("src2_2", scale=0.01)
    run_trace_base(controller, trace, drain=False)

    victim = controller.disks_by_role()[failure_role][0]
    plan = plan_recovery(controller, victim)
    plan.rebuild_bytes = 512 * MB  # uniform rebuild volume for comparison
    process = RecoveryProcess(sim, controller, plan)
    process.start()
    sim.run()
    continuity = "yes" if plan.logging_continues else "NO"
    return (
        f"{scheme:8s} {failure_role:8s} woke {plan.disks_woken:2d} disks, "
        f"rebuilt in {process.rebuild_time:6.1f}s, "
        f"logging continues: {continuity}"
    )


def main() -> None:
    print("Failing the first PRIMARY disk of each scheme:")
    for scheme in SCHEMES:
        print("  " + drill(scheme, "primary"))
    print("\nFailing the first MIRROR disk of each scheme:")
    for scheme in SCHEMES:
        print("  " + drill(scheme, "mirror"))
    print(
        "\nNote how GRAID's centralized log forces every mirror awake for "
        "a primary rebuild,\nwhile RoLo-P wakes only the mirrors that "
        "still hold live log copies, and RoLo-R\n(whose third copy lives "
        "on an always-on primary) wakes just the pair partner."
    )


if __name__ == "__main__":
    main()
