#!/usr/bin/env python3
"""RoLo on a parity array: fixing RAID5's small-write problem (§VII).

Run with::

    python examples/parity_logging.py

A RAID5 small write costs four I/Os (read old data, read old parity, write
data, write parity).  RoLo-5 — the paper's proposed future work, built
here — logs the XOR delta to a rotating on-duty log region instead and
refreshes parity through idle slots, cutting the foreground cost to three
I/Os of which one is a cheap sequential append.
"""

from repro.core import Raid5Config, build_raid5_controller
from repro.core.base import run_trace
from repro.sim import Simulator
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

KB = 1024
MB = 1024 * KB


def main() -> None:
    trace = generate_trace(
        SyntheticTraceConfig(
            duration_s=300.0,
            iops=40.0,
            write_ratio=1.0,
            avg_request_bytes=8 * KB,  # classic OLTP-style small writes
            footprint_bytes=256 * MB,
            write_sequential_fraction=0.1,
            seed=13,
        )
    )
    print(
        f"workload: {len(trace)} small writes "
        f"({trace.records[0].nbytes // KB} KB each) over "
        f"{trace.duration:.0f}s\n"
    )
    config = Raid5Config(n_disks=10).scaled(0.05)
    for scheme in ("raid5", "rolo-5"):
        sim = Simulator()
        controller = build_raid5_controller(scheme, sim, config)
        metrics = run_trace(controller, trace)
        controller.assert_consistent()
        ops = sum(d.ops_completed for d in controller.disks)
        print(
            f"{scheme:7s} mean rt = {metrics.mean_response_time_ms:7.3f} ms   "
            f"disk ops = {ops:6d}   parity RMWs = "
            f"{controller.parity_rmw_count:6d}   rotations = "
            f"{controller.metrics.rotations}"
        )


if __name__ == "__main__":
    main()
