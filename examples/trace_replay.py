#!/usr/bin/env python3
"""Replay an MSR Cambridge format trace file through any scheme.

Run with::

    python examples/trace_replay.py [path/to/trace.csv] [--scheme rolo-p]

Without an argument the example first *exports* a calibrated synthetic
replica of wdev_0 to MSR CSV format (so the round trip through the real
file format is exercised), then loads and replays it.  Point it at a real
SNIA MSR Cambridge volume file to replay production I/O.
"""

import argparse
import tempfile
from pathlib import Path

from repro.core import ArrayConfig, build_controller, run_trace
from repro.sim import Simulator
from repro.traces import build_workload_trace, characterize
from repro.traces.msr import load_msr_trace, save_msr_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="MSR CSV trace file")
    parser.add_argument("--scheme", default="rolo-p")
    parser.add_argument("--pairs", type=int, default=10)
    parser.add_argument("--max-records", type=int, default=100_000)
    args = parser.parse_args()

    if args.trace:
        path = Path(args.trace)
    else:
        path = Path(tempfile.gettempdir()) / "wdev_0_replica.csv"
        replica = build_workload_trace("wdev_0", scale=0.05)
        save_msr_trace(replica, path)
        print(f"exported synthetic wdev_0 replica to {path}")

    trace = load_msr_trace(path, max_records=args.max_records)
    stats = characterize(trace)
    print(stats.row())
    print(
        f"  {stats.records} records, {stats.duration_s:.0f}s, "
        f"footprint {stats.footprint_bytes / 2**20:.0f} MiB"
    )

    config = ArrayConfig(n_pairs=args.pairs).scaled(0.05)
    if trace.footprint_bytes > config.layout().logical_capacity:
        raise SystemExit(
            "trace footprint exceeds the array's logical capacity; "
            "increase --pairs"
        )
    sim = Simulator()
    controller = build_controller(args.scheme, sim, config)
    metrics = run_trace(controller, trace)
    controller.assert_consistent()
    print(f"\n{args.scheme}: {metrics.summary()}")
    print(
        f"  rotations={metrics.rotations} "
        f"destage_cycles={metrics.destage_cycles} "
        f"logged={metrics.logged_bytes / 2**20:.0f}MiB "
        f"destaged={metrics.destaged_bytes / 2**20:.0f}MiB"
    )


if __name__ == "__main__":
    main()
