#!/usr/bin/env python3
"""Five-scheme energy/performance comparison on the paper's main traces.

Run with::

    python examples/energy_comparison.py [--scale 0.05] [--pairs 20]

This is the programmatic version of ``rolo run fig10``: it replays
calibrated replicas of the MSR Cambridge src2_2 and proj_0 traces through
RAID10, GRAID and RoLo-P/R/E, then prints Figure 10's normalized energy
and response-time panels plus the Table I spin counts.
"""

import argparse

from repro.experiments.runner import run_scheme_set

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="trace time-scale (default: per-workload)")
    parser.add_argument("--pairs", type=int, default=20)
    args = parser.parse_args()

    for workload in ("src2_2", "proj_0"):
        print(f"\n=== {workload} ({2 * args.pairs} disks) ===")
        results = run_scheme_set(
            workload, SCHEMES, scale=args.scale, n_pairs=args.pairs
        )
        base = results["raid10"]
        print(
            f"{'scheme':8s} {'rt (ms)':>10s} {'rt/RAID10':>10s} "
            f"{'power (W)':>10s} {'saved':>7s} {'spins':>6s} {'hit%':>6s}"
        )
        for scheme in SCHEMES:
            m = results[scheme]
            saved = 1 - m.total_energy_j / base.total_energy_j
            print(
                f"{scheme:8s} {m.mean_response_time_ms:10.2f} "
                f"{m.response_time.mean / base.response_time.mean:10.2f} "
                f"{m.mean_power_w:10.1f} {saved:7.1%} "
                f"{m.spin_cycle_count:6d} {m.read_hit_rate:6.1%}"
            )


if __name__ == "__main__":
    main()
