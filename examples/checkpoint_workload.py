#!/usr/bin/env python3
"""RoLo-E for HPC checkpointing — the paper's §III-B3 motivating scenario.

Run with::

    python examples/checkpoint_workload.py

High-performance-computing checkpoint storage is nearly write-only: every
few minutes the application dumps a large state snapshot, and reads happen
only on (rare) restarts.  The paper argues this is RoLo-E's sweet spot —
one mirrored pair absorbs the bursts sequentially while the other 38 disks
sleep.  This example builds such a workload, runs RAID10 / GRAID / RoLo-E,
and shows the energy gap.
"""

from repro.core import ArrayConfig, build_controller, run_trace
from repro.raid.request import RequestKind
from repro.sim import Simulator
from repro.traces.record import Trace, TraceRecord

KB = 1024
MB = 1024 * KB


def checkpoint_trace(
    n_checkpoints: int = 12,
    interval_s: float = 300.0,
    snapshot_bytes: int = 96 * MB,
    chunk_bytes: int = 1 * MB,
    dump_rate: float = 30 * MB,  # application-side dump bandwidth
) -> Trace:
    """Periodic full-state dumps written as a sequential chunk stream."""
    records = []
    for checkpoint in range(n_checkpoints):
        start = checkpoint * interval_s
        offset = 0
        chunk_gap = chunk_bytes / dump_rate
        for i in range(snapshot_bytes // chunk_bytes):
            records.append(
                TraceRecord(
                    start + i * chunk_gap,
                    RequestKind.WRITE,
                    offset,
                    chunk_bytes,
                )
            )
            offset += chunk_bytes
    return Trace(records, name="hpc-checkpoint")


def main() -> None:
    trace = checkpoint_trace()
    print(
        f"checkpoint workload: {len(trace)} writes, "
        f"{sum(r.nbytes for r in trace) / MB:.0f} MiB total, "
        f"{trace.duration / 60:.0f} minutes\n"
    )
    config = ArrayConfig(n_pairs=20).scaled(0.05)

    results = {}
    for scheme in ("raid10", "graid", "rolo-e"):
        sim = Simulator()
        controller = build_controller(scheme, sim, config)
        metrics = run_trace(controller, trace)
        controller.assert_consistent()
        results[scheme] = metrics
        print(
            f"{scheme:8s} mean rt = {metrics.mean_response_time_ms:8.2f} ms   "
            f"power = {metrics.mean_power_w:6.1f} W   "
            f"spins = {metrics.spin_cycle_count:4d}   "
            f"destage cycles = {metrics.destage_cycles}"
        )

    base = results["raid10"].total_energy_j
    for scheme in ("graid", "rolo-e"):
        saved = 1 - results[scheme].total_energy_j / base
        print(f"\n{scheme} saves {saved:.1%} energy over RAID10")
    print(
        "\nWith zero reads there are no miss-induced spin-ups, so RoLo-E "
        "keeps 38 of 40 disks asleep between checkpoint bursts."
    )


if __name__ == "__main__":
    main()
