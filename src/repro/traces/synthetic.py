"""Synthetic block-trace generator.

The generator's knobs cover every trace characteristic the paper reports
(Tables III, V, VI): arrival intensity (IOPS), burstiness, read/write mix,
request-size distribution, footprint, write sequentiality, and the temporal
read locality that determines RoLo-E's read hit rate.

All randomness flows from a single seed, so traces are reproducible.
"""

from __future__ import annotations

import dataclasses
import enum
import math
import random
from collections import deque
from typing import Deque, Iterator, Optional, Tuple

from repro.raid.request import RequestKind
from repro.traces.compiled import CompiledTrace, compiled_from_events
from repro.traces.record import Trace, TraceRecord

KB = 1024
MB = 1024 * KB

#: All generated offsets/sizes are aligned to this many bytes (one sector,
#: matching the granularity of the MSR traces).
ALIGNMENT = 512


class Burstiness(enum.Enum):
    """Arrival-process burstiness levels.

    NONE is a plain Poisson process.  The others modulate the rate with an
    ON/OFF envelope: the tuple is (fraction of time ON, OFF-rate as a
    fraction of the mean rate).  The ON rate is derived so the long-run mean
    equals the configured IOPS.
    """

    NONE = (1.0, 1.0)
    LOW = (0.8, 0.6)
    MEDIUM = (0.6, 0.3)
    HIGH = (0.4, 0.1)
    VERY_HIGH = (0.25, 0.05)

    def __init__(self, on_fraction: float, off_rate_fraction: float) -> None:
        self.on_fraction = on_fraction
        self.off_rate_fraction = off_rate_fraction

    def on_rate_multiplier(self) -> float:
        """Rate multiplier during ON periods preserving the mean rate."""
        f, off = self.on_fraction, self.off_rate_fraction
        return (1.0 - (1.0 - f) * off) / f


@dataclasses.dataclass
class SyntheticTraceConfig:
    """Parameters of one synthetic trace."""

    duration_s: float
    iops: float
    write_ratio: float = 1.0
    avg_request_bytes: int = 64 * KB
    #: Request sizes: fixed when 0, else lognormal sigma.
    size_sigma: float = 0.0
    footprint_bytes: int = 1024 * MB
    #: Probability that a write continues sequentially from the previous one.
    write_sequential_fraction: float = 0.3
    #: Probability that a read targets a recently written/read block
    #: (temporal locality; drives RoLo-E's read hit rate).
    read_locality: float = 0.5
    #: How many recent block addresses the locality window remembers.
    locality_window: int = 4096
    burstiness: Burstiness = Burstiness.NONE
    #: Mean length of one ON+OFF burst cycle, seconds.
    burst_cycle_s: float = 60.0
    #: Temporal clustering of reads: reads only occur during the first
    #: ``read_session_fraction`` of every ``read_session_cycle_s`` window
    #: (with proportionally boosted probability, so the overall read ratio
    #: is preserved).  1.0 disables clustering.
    read_session_fraction: float = 1.0
    read_session_cycle_s: float = 600.0
    #: Spatial skew: probability that a randomly placed request falls in
    #: the hot region (the first ``hotspot_span`` of the footprint).
    #: 0.0 disables skew.
    hotspot_fraction: float = 0.0
    hotspot_span: float = 0.1
    seed: int = 42
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.iops <= 0:
            raise ValueError("duration and iops must be positive")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0,1]")
        if not 0.0 <= self.write_sequential_fraction <= 1.0:
            raise ValueError("write_sequential_fraction must be in [0,1]")
        if not 0.0 <= self.read_locality <= 1.0:
            raise ValueError("read_locality must be in [0,1]")
        if self.avg_request_bytes < ALIGNMENT:
            raise ValueError(f"avg request must be >= {ALIGNMENT} bytes")
        if not 0.0 < self.read_session_fraction <= 1.0:
            raise ValueError("read_session_fraction must be in (0, 1]")
        if self.read_session_fraction < 1.0 - self.write_ratio:
            raise ValueError(
                "read sessions too narrow to carry the configured read ratio"
            )
        if self.read_session_cycle_s <= 0:
            raise ValueError("read_session_cycle_s must be positive")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if not 0.0 < self.hotspot_span <= 1.0:
            raise ValueError("hotspot_span must be in (0, 1]")
        if self.footprint_bytes < 4 * self.avg_request_bytes:
            raise ValueError("footprint too small for the request size")


class _ArrivalProcess:
    """Poisson arrivals, optionally modulated by an ON/OFF envelope."""

    def __init__(self, config: SyntheticTraceConfig, rng: random.Random):
        self._rng = rng
        self._mean_rate = config.iops
        self._burst = config.burstiness
        on_frac = self._burst.on_fraction
        self._on_len = max(1e-9, config.burst_cycle_s * on_frac)
        self._off_len = max(0.0, config.burst_cycle_s * (1.0 - on_frac))
        self._on_rate = config.iops * self._burst.on_rate_multiplier()
        self._off_rate = config.iops * self._burst.off_rate_fraction

    def _rate_at(self, t: float) -> float:
        if self._burst is Burstiness.NONE:
            return self._mean_rate
        phase = math.fmod(t, self._on_len + self._off_len)
        return self._on_rate if phase < self._on_len else self._off_rate

    def next_after(self, t: float) -> float:
        """Next arrival strictly after ``t`` (thinning algorithm)."""
        max_rate = max(self._on_rate, self._off_rate, self._mean_rate)
        while True:
            t += self._rng.expovariate(max_rate)
            if self._rng.random() * max_rate <= self._rate_at(t):
                return t


def _align(value: float) -> int:
    """Round to the nearest alignment multiple (unbiased, min one unit)."""
    return max(ALIGNMENT, int(value / ALIGNMENT + 0.5) * ALIGNMENT)


def _pick_size(config: SyntheticTraceConfig, rng: random.Random) -> int:
    if config.size_sigma <= 0:
        return _align(config.avg_request_bytes)
    sigma = config.size_sigma
    mu = math.log(config.avg_request_bytes) - sigma * sigma / 2.0
    size = rng.lognormvariate(mu, sigma)
    size = min(size, 16 * config.avg_request_bytes)
    return _align(size)


def _aligned_footprint(config: SyntheticTraceConfig) -> int:
    return (config.footprint_bytes // ALIGNMENT) * ALIGNMENT


def _iter_events(
    config: SyntheticTraceConfig,
) -> Iterator[Tuple[float, bool, int, int]]:
    """Yield ``(time, is_write, offset, size)`` for one synthetic trace.

    This is the single source of truth for the generator's RNG stream:
    :func:`generate_trace` and :func:`generate_compiled` both consume it,
    so for a given config they produce record-for-record identical traces.
    """
    rng = random.Random(config.seed)
    arrivals = _ArrivalProcess(config, rng)
    recent: Deque[Tuple[int, int]] = deque(maxlen=config.locality_window)
    footprint = _aligned_footprint(config)
    next_sequential: Optional[int] = None

    read_ratio = 1.0 - config.write_ratio
    session_fraction = config.read_session_fraction
    session_cycle = config.read_session_cycle_s

    def write_probability(now: float) -> float:
        if session_fraction >= 1.0 or read_ratio <= 0.0:
            return config.write_ratio
        phase = math.fmod(now, session_cycle)
        if phase < session_fraction * session_cycle:
            return 1.0 - read_ratio / session_fraction
        return 1.0

    t = arrivals.next_after(0.0)
    while t < config.duration_s:
        size = _pick_size(config, rng)
        is_write = rng.random() < write_probability(t)
        if is_write:
            if (
                next_sequential is not None
                and rng.random() < config.write_sequential_fraction
                and next_sequential + size <= footprint
            ):
                offset = next_sequential
            else:
                offset = _placed_offset(config, rng, footprint, size)
            next_sequential = offset + size
        else:
            if recent and rng.random() < config.read_locality:
                offset, ref_size = recent[rng.randrange(len(recent))]
                size = min(size, ref_size)
            else:
                offset = _placed_offset(config, rng, footprint, size)
        offset = min(offset, footprint - size)
        yield t, is_write, offset, size
        recent.append((offset, size))
        t = arrivals.next_after(t)


def generate_trace(config: SyntheticTraceConfig) -> Trace:
    """Materialize a synthetic trace as boxed :class:`TraceRecord` objects."""
    records = [
        TraceRecord(
            t, RequestKind.WRITE if is_write else RequestKind.READ, offset, size
        )
        for t, is_write, offset, size in _iter_events(config)
    ]
    return Trace(
        records, name=config.name, footprint_bytes=_aligned_footprint(config)
    )


def generate_compiled(config: SyntheticTraceConfig) -> CompiledTrace:
    """Generate the same trace as :func:`generate_trace`, columnar form.

    No per-request objects are materialized: events stream straight from
    the generator into the compiled columns.
    """
    return compiled_from_events(
        _iter_events(config),
        name=config.name,
        footprint_bytes=_aligned_footprint(config),
    )


def _random_offset(rng: random.Random, footprint: int, size: int) -> int:
    span = max(ALIGNMENT, footprint - size)
    return rng.randrange(0, span // ALIGNMENT) * ALIGNMENT


def _placed_offset(
    config: SyntheticTraceConfig,
    rng: random.Random,
    footprint: int,
    size: int,
) -> int:
    """Random placement, optionally skewed into the hot region."""
    if (
        config.hotspot_fraction > 0
        and rng.random() < config.hotspot_fraction
    ):
        hot_span = max(4 * size, int(footprint * config.hotspot_span))
        return _random_offset(rng, min(hot_span, footprint), size)
    return _random_offset(rng, footprint, size)
