"""MSR Cambridge trace format support.

The SNIA release of the MSR Cambridge traces is CSV with columns::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where ``Timestamp`` is a Windows FILETIME (100 ns ticks since 1601),
``Type`` is ``Read``/``Write``, ``Offset``/``Size`` are bytes, and
``ResponseTime`` is in 100 ns ticks.  :func:`load_msr_trace` normalizes
timestamps so the first record is at t=0 seconds.

The writer exists so synthetic traces can be exported to the same format
(handy for cross-checking against other simulators).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Union

from repro.raid.request import RequestKind
from repro.traces.record import Trace, TraceRecord

#: Windows FILETIME ticks per second.
TICKS_PER_SECOND = 10_000_000


class MsrFormatError(ValueError):
    """Raised on malformed MSR CSV rows."""


def _parse_kind(raw: str) -> RequestKind:
    value = raw.strip().lower()
    if value == "read":
        return RequestKind.READ
    if value == "write":
        return RequestKind.WRITE
    raise MsrFormatError(f"unknown request type {raw!r}")


def load_msr_trace(
    path: Union[str, Path],
    name: Optional[str] = None,
    disk_number: Optional[int] = None,
    max_records: Optional[int] = None,
) -> Trace:
    """Load an MSR Cambridge CSV trace file.

    ``disk_number`` filters to one volume of a multi-volume trace;
    ``max_records`` truncates long traces for quick experiments.
    """
    path = Path(path)
    records: List[TraceRecord] = []
    base_ticks: Optional[int] = None
    with path.open(newline="") as fh:
        for line_no, row in enumerate(csv.reader(fh), start=1):
            if not row or row[0].startswith("#"):
                continue
            if len(row) < 6:
                raise MsrFormatError(
                    f"{path}:{line_no}: expected >=6 columns, got {len(row)}"
                )
            try:
                ticks = int(row[0])
                disk = int(row[2])
                kind = _parse_kind(row[3])
                offset = int(row[4])
                size = int(row[5])
            except (ValueError, MsrFormatError) as exc:
                raise MsrFormatError(f"{path}:{line_no}: {exc}") from exc
            if disk_number is not None and disk != disk_number:
                continue
            if size <= 0:
                continue
            if base_ticks is None:
                base_ticks = ticks
            timestamp = (ticks - base_ticks) / TICKS_PER_SECOND
            if timestamp < 0:
                raise MsrFormatError(
                    f"{path}:{line_no}: timestamps not monotone"
                )
            records.append(TraceRecord(timestamp, kind, offset, size))
            if max_records is not None and len(records) >= max_records:
                break
    return Trace(records, name=name or path.stem)


def save_msr_trace(
    trace: Trace, path: Union[str, Path], hostname: str = "synthetic"
) -> None:
    """Write a trace in MSR Cambridge CSV format."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        for record in trace:
            writer.writerow(
                [
                    int(round(record.timestamp * TICKS_PER_SECOND)),
                    hostname,
                    0,
                    "Write" if record.is_write else "Read",
                    record.offset,
                    record.nbytes,
                    0,
                ]
            )
