"""Columnar compiled traces.

A :class:`CompiledTrace` lowers a trace into four parallel stdlib ``array``
columns — arrival time, byte offset, request size, and kind — instead of one
``TraceRecord`` object per request.  A 10⁶-request trace costs four flat
buffers (~25 MB total) rather than a million boxed records, and the replay
path in :class:`repro.core.base.TraceDriver` reads the columns by index
without materializing records at all.

Compiled traces are a drop-in for :class:`repro.traces.record.Trace`
everywhere the codebase consumes traces (``len``, iteration, indexing,
``duration``, ``footprint_bytes``, ``name``); iteration and indexing
materialize ``TraceRecord`` views on demand for legacy consumers.

Each compiled trace carries a sha256 content hash over its columns, which
the PR 1 result cache folds into cell keys.  Bump
:data:`TRACE_COMPILER_VERSION` whenever the compiled format or the
generator lowering changes observable content; the cache stamps it into
every key, so stale payloads become unreachable instead of silently mixing
formats.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.raid.request import RequestKind
from repro.traces.record import Trace, TraceRecord

#: Version of the trace-compiler output format / lowering semantics.
TRACE_COMPILER_VERSION = 1

#: Column codes for the ``kind`` column.
KIND_READ = 0
KIND_WRITE = 1


class CompiledTrace:
    """A trace lowered to parallel columns.

    Columns (all the same length):

    ``arrivals``
        ``array('d')`` — arrival timestamps, seconds, non-decreasing.
    ``offsets``
        ``array('q')`` — byte offsets.
    ``sizes``
        ``array('q')`` — request sizes in bytes.
    ``kinds``
        ``array('B')`` — :data:`KIND_READ` / :data:`KIND_WRITE`.
    """

    __slots__ = ("arrivals", "offsets", "sizes", "kinds", "name", "_footprint", "_hash")

    def __init__(
        self,
        arrivals: array,
        offsets: array,
        sizes: array,
        kinds: array,
        name: str = "trace",
        footprint_bytes: Optional[int] = None,
    ) -> None:
        n = len(arrivals)
        if not (len(offsets) == len(sizes) == len(kinds) == n):
            raise ValueError("compiled trace columns must have equal length")
        self.arrivals = arrivals
        self.offsets = offsets
        self.sizes = sizes
        self.kinds = kinds
        self.name = name
        self._footprint = footprint_bytes
        self._hash: Optional[str] = None

    # -- Trace drop-in surface -------------------------------------------

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self) -> Iterator[TraceRecord]:
        arrivals = self.arrivals
        offsets = self.offsets
        sizes = self.sizes
        kinds = self.kinds
        for i in range(len(arrivals)):
            kind = RequestKind.WRITE if kinds[i] else RequestKind.READ
            yield TraceRecord(arrivals[i], kind, offsets[i], sizes[i])

    def __getitem__(self, idx: int) -> TraceRecord:
        kind = RequestKind.WRITE if self.kinds[idx] else RequestKind.READ
        return TraceRecord(
            self.arrivals[idx], kind, self.offsets[idx], self.sizes[idx]
        )

    @property
    def duration(self) -> float:
        """Seconds from time zero to the last arrival."""
        return self.arrivals[-1] if self.arrivals else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Highest byte address the trace touches (exclusive)."""
        if self._footprint is not None:
            return self._footprint
        if not self.arrivals:
            return 0
        offsets = self.offsets
        sizes = self.sizes
        return max(offsets[i] + sizes[i] for i in range(len(offsets)))

    # -- compiled-only surface -------------------------------------------

    def content_hash(self) -> str:
        """sha256 over the column payloads plus footprint (cached)."""
        if self._hash is None:
            h = hashlib.sha256()
            h.update(b"rolo-compiled-trace-v%d\0" % TRACE_COMPILER_VERSION)
            h.update(str(self.footprint_bytes).encode("ascii"))
            for column in (self.arrivals, self.offsets, self.sizes, self.kinds):
                h.update(column.typecode.encode("ascii"))
                h.update(column.tobytes())
            self._hash = h.hexdigest()
        return self._hash

    def cache_key(self) -> str:
        """Stable identity for the result cache (format-version qualified)."""
        return f"ct{TRACE_COMPILER_VERSION}:{self.content_hash()}"

    def nbytes(self) -> int:
        """Total column storage in bytes (introspection / benchmarks)."""
        return sum(
            len(col) * col.itemsize
            for col in (self.arrivals, self.offsets, self.sizes, self.kinds)
        )

    def to_trace(self) -> Trace:
        """Materialize a legacy object-per-record :class:`Trace`."""
        return Trace(iter(self), name=self.name, footprint_bytes=self._footprint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledTrace {self.name!r} n={len(self)} "
            f"dur={self.duration:.1f}s {self.nbytes() // 1024}KiB>"
        )


#: Anything the replay/experiment layers accept as a trace.
AnyTrace = Union[Trace, CompiledTrace]


def _columns_from_events(
    events: Iterable[Tuple[float, bool, int, int]],
) -> Tuple[array, array, array, array]:
    arrivals = array("d")
    offsets = array("q")
    sizes = array("q")
    kinds = array("B")
    append_t = arrivals.append
    append_o = offsets.append
    append_s = sizes.append
    append_k = kinds.append
    for t, is_write, offset, size in events:
        append_t(t)
        append_o(offset)
        append_s(size)
        append_k(KIND_WRITE if is_write else KIND_READ)
    return arrivals, offsets, sizes, kinds


def compiled_from_events(
    events: Iterable[Tuple[float, bool, int, int]],
    name: str = "trace",
    footprint_bytes: Optional[int] = None,
) -> CompiledTrace:
    """Build a compiled trace from ``(time, is_write, offset, size)`` tuples."""
    arrivals, offsets, sizes, kinds = _columns_from_events(events)
    return CompiledTrace(
        arrivals, offsets, sizes, kinds, name=name, footprint_bytes=footprint_bytes
    )


def truncate_trace(trace, n_requests: Optional[int]) -> CompiledTrace:
    """First ``n_requests`` of a compiled trace as a fresh trace.

    Accepts anything exposing the compiled column surface (including the
    shared-memory :class:`~repro.traces.shm.SharedCompiledTrace` drop-in);
    the columns are copied, so the result owns its storage and is safe to
    keep past a shared segment's lifetime.  ``n_requests`` of ``None`` (or
    one at least the trace length) returns ``trace`` unchanged.  The
    footprint is left derived: the truncated trace's highest touched
    address, not the parent's.
    """
    if n_requests is None or n_requests >= len(trace.arrivals):
        return trace
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    n = n_requests
    return CompiledTrace(
        array("d", trace.arrivals[:n]),
        array("q", trace.offsets[:n]),
        array("q", trace.sizes[:n]),
        array("B", trace.kinds[:n]),
        name=f"{trace.name}[:{n}]",
    )


def compile_trace(trace: AnyTrace) -> CompiledTrace:
    """Lower a legacy :class:`Trace` into columns (idempotent)."""
    if isinstance(trace, CompiledTrace):
        return trace
    events = (
        (r.timestamp, r.kind is RequestKind.WRITE, r.offset, r.nbytes)
        for r in trace.records
    )
    return compiled_from_events(
        events,
        name=trace.name,
        footprint_bytes=trace._footprint,  # preserve explicit-vs-derived
    )
