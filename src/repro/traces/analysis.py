"""Trace characterization — reproduces the columns of Tables III and VI."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.sim.stats import StreamingStat
from repro.traces.record import Trace

KB = 1024
GB = 1024 * 1024 * KB


@dataclasses.dataclass(frozen=True)
class TraceStats:
    """Aggregate characteristics of a trace (Table III / VI columns)."""

    name: str
    records: int
    duration_s: float
    write_ratio: float
    iops: float
    avg_request_bytes: float
    write_capacity_bytes: int
    read_capacity_bytes: int
    avg_read_bytes: float
    avg_write_bytes: float
    footprint_bytes: int

    def row(self) -> str:
        """One formatted table row matching the paper's columns."""
        return (
            f"{self.name:>10}  write={self.write_ratio * 100:6.2f}%  "
            f"iops={self.iops:7.2f}  "
            f"avg={self.avg_request_bytes / KB:7.2f}KB  "
            f"written={self.write_capacity_bytes / GB:7.2f}GB"
        )


def burstiness_index(trace: Trace, window_s: float = 1.0) -> float:
    """Index of dispersion of windowed arrival counts (var/mean).

    1.0 for a Poisson process; ≫1 for bursty arrivals.  This quantifies
    the paper's qualitative Table V "Burstiness" column.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    if not len(trace):
        return 0.0
    horizon = trace.duration + window_s
    n_windows = max(1, int(horizon / window_s))
    counts = [0] * n_windows
    for record in trace:
        index = min(n_windows - 1, int(record.timestamp / window_s))
        counts[index] += 1
    mean = sum(counts) / n_windows
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in counts) / n_windows
    return variance / mean


def classify_burstiness(index: float) -> str:
    """Map an index of dispersion to the paper's qualitative labels."""
    if index < 2.0:
        return "Very Low"
    if index < 8.0:
        return "Low"
    if index < 30.0:
        return "Medium"
    if index < 100.0:
        return "High"
    return "Very High"


def characterize(trace: Trace, duration_s: Optional[float] = None) -> TraceStats:
    """Compute aggregate statistics of a trace.

    ``duration_s`` overrides the horizon used for the IOPS computation
    (defaults to the last arrival time).
    """
    sizes = StreamingStat()
    reads = StreamingStat()
    writes = StreamingStat()
    footprint_end = 0
    for record in trace:
        sizes.add(record.nbytes)
        if record.is_write:
            writes.add(record.nbytes)
        else:
            reads.add(record.nbytes)
        end = record.offset + record.nbytes
        if end > footprint_end:
            footprint_end = end
    horizon = duration_s if duration_s is not None else trace.duration
    count = len(trace)
    return TraceStats(
        name=trace.name,
        records=count,
        duration_s=horizon,
        write_ratio=writes.count / count if count else 0.0,
        iops=count / horizon if horizon > 0 else 0.0,
        avg_request_bytes=sizes.mean,
        write_capacity_bytes=int(writes.total),
        read_capacity_bytes=int(reads.total),
        avg_read_bytes=reads.mean,
        avg_write_bytes=writes.mean,
        footprint_bytes=footprint_end,
    )
