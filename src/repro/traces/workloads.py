"""Calibrated stand-ins for the paper's seven MSR Cambridge traces.

Each preset encodes the published per-trace characteristics (Tables III, V
and VI of the paper): write ratio, IOPS, mean request size, total write
capacity, burstiness and — for the two main traces — the read temporal
locality implied by the RoLo-E read hit rates of Table V.

The *full-scale* duration of a preset is derived from its write capacity:
``duration = write_capacity / (iops * write_ratio * avg_request)``, i.e. the
horizon over which replaying the preset writes exactly the published volume.
Experiments replay time-scaled replicas (see DESIGN.md §3): ``scale``
multiplies the duration and footprint while leaving rates, sizes and ratios
unchanged, which preserves logging-cycle/rotation/destage *counts* when the
log capacities are scaled by the same factor.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.traces.compiled import AnyTrace
from repro.traces.record import Trace
from repro.traces.synthetic import (
    Burstiness,
    SyntheticTraceConfig,
    generate_compiled,
    generate_trace,
)

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclasses.dataclass(frozen=True)
class WorkloadPreset:
    """Published characteristics of one paper trace."""

    name: str
    write_ratio: float
    iops: float
    avg_request_bytes: int
    write_capacity_bytes: int
    burstiness: Burstiness
    read_locality: float
    footprint_bytes: int
    write_sequential_fraction: float = 0.3
    #: Full-scale ON/OFF burst cycle length; scaled with the trace so burst
    #: volume keeps the same proportion to the (scaled) logging capacity.
    burst_cycle_full_s: float = 300.0
    #: Temporal read clustering (1.0 = reads spread uniformly).
    read_session_fraction: float = 1.0
    read_session_cycle_full_s: float = 6000.0

    @property
    def full_duration_s(self) -> float:
        """Horizon over which the preset writes its published capacity."""
        write_rate = self.iops * self.write_ratio * self.avg_request_bytes
        return self.write_capacity_bytes / write_rate

    def to_config(
        self, scale: float = 1.0, seed: int = 42
    ) -> SyntheticTraceConfig:
        """Build the generator configuration for a time-scaled replica."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return SyntheticTraceConfig(
            duration_s=self.full_duration_s * scale,
            iops=self.iops,
            write_ratio=self.write_ratio,
            avg_request_bytes=self.avg_request_bytes,
            size_sigma=0.5,
            footprint_bytes=max(
                int(self.footprint_bytes * scale), 64 * MB // 16
            ),
            write_sequential_fraction=self.write_sequential_fraction,
            read_locality=self.read_locality,
            burstiness=self.burstiness,
            burst_cycle_s=max(5.0, self.burst_cycle_full_s * scale),
            read_session_fraction=self.read_session_fraction,
            read_session_cycle_s=max(
                60.0, self.read_session_cycle_full_s * scale
            ),
            seed=seed,
            name=f"{self.name}@{scale:g}",
        )


def _preset(
    name: str,
    write_ratio: float,
    iops: float,
    avg_kb: float,
    capacity_gb: float,
    burstiness: Burstiness,
    read_locality: float,
    footprint_gb: float,
) -> WorkloadPreset:
    return WorkloadPreset(
        name=name,
        write_ratio=write_ratio,
        iops=iops,
        avg_request_bytes=int(avg_kb * KB),
        write_capacity_bytes=int(capacity_gb * GB),
        burstiness=burstiness,
        read_locality=read_locality,
        footprint_bytes=int(footprint_gb * GB),
    )


#: The seven traces of Tables III and VI.  ``read_locality`` for src2_2 and
#: proj_0 is calibrated to the read hit rates of Table V (90.59% / 26.67%);
#: the five non-write-intensive traces get a neutral 0.5.
PAPER_WORKLOADS: Dict[str, WorkloadPreset] = {
    "src2_2": _preset(
        "src2_2", 0.9962, 78.80, 63.64, 33.0, Burstiness.VERY_HIGH, 0.92, 8.0
    ),
    "proj_0": dataclasses.replace(
        _preset(
            "proj_0", 0.9490, 23.89, 51.42, 99.3, Burstiness.NONE, 0.25, 24.0
        ),
        # proj_0's published RoLo-E behaviour (75.8% energy saved *and* a
        # -584% response-time hit *and* only ~2.9k spin events, Tables I/IV)
        # is only jointly consistent if its reads arrive in temporal
        # sessions; see EXPERIMENTS.md.
        read_session_fraction=0.12,
    ),
    "mds_0": _preset(
        "mds_0", 0.8811, 2.00, 9.20, 7.0, Burstiness.MEDIUM, 0.5, 3.0
    ),
    "wdev_0": _preset(
        "wdev_0", 0.7992, 1.89, 9.08, 7.15, Burstiness.MEDIUM, 0.5, 3.0
    ),
    "web_1": _preset(
        "web_1", 0.4589, 0.27, 29.07, 0.648, Burstiness.MEDIUM, 0.5, 1.0
    ),
    "rsrch_2": _preset(
        "rsrch_2", 0.3431, 0.35, 4.08, 0.288, Burstiness.MEDIUM, 0.5, 0.5
    ),
    "hm_1": _preset(
        "hm_1", 0.0466, 1.02, 15.16, 0.540, Burstiness.MEDIUM, 0.5, 1.0
    ),
}


def build_workload_trace(
    name: str, scale: float = 1.0, seed: int = 42, compiled: bool = False
) -> AnyTrace:
    """Generate the time-scaled replica of a named paper trace.

    With ``compiled=True`` the trace is lowered straight into columnar
    :class:`~repro.traces.compiled.CompiledTrace` form (record-for-record
    identical to the legacy object form — both consume the same generator
    stream).
    """
    try:
        preset = PAPER_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(PAPER_WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    config = preset.to_config(scale=scale, seed=seed)
    if compiled:
        return generate_compiled(config)
    return generate_trace(config)
