"""Zero-copy shared-memory publication of compiled traces.

The experiment matrix reuses each trace many times: a five-scheme sweep
replays the same :class:`~repro.traces.compiled.CompiledTrace` five times,
and before this module existed every process-pool worker *regenerated* the
trace from its configuration (or would have paid a multi-megabyte pickle).
A :class:`SharedTraceStore` makes trace bytes cross the process boundary
once per distinct trace instead of once per cell:

* the **parent** publishes a compiled trace's columns into one
  ``multiprocessing.shared_memory`` segment, keyed by the trace's existing
  sha256 content hash (publishing the same content twice returns the same
  segment), and hands workers a tiny :class:`TraceRef` — hash, segment
  name, column dtypes/lengths/offsets — whose pickled size is independent
  of trace length;
* a **worker** :func:`attach`\\ es by mapping the segment and wrapping the
  buffer in :class:`SharedCompiledTrace` — ``memoryview`` columns behind
  the ordinary :class:`CompiledTrace` surface, so the replay fast path in
  :class:`repro.core.base.TraceDriver` reads them untouched and zero-copy;
  :func:`attach_cached` memoizes attachments per process, so consecutive
  same-trace cells pay nothing.

Lifecycle is parent-owned: the store is a context manager whose
:meth:`~SharedTraceStore.close` unlinks every segment, with an ``atexit``
safety net for parents that die without unwinding.  Workers never create
or unlink segments; on Linux, unlinking while workers are still attached
is safe (the kernel frees the memory on last unmap).
"""

from __future__ import annotations

import atexit
import dataclasses
import itertools
import os
from typing import Dict, List, Optional, Tuple

from repro.traces.compiled import CompiledTrace

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    shared_memory = None  # type: ignore[assignment]

#: Every segment this module creates starts with this prefix, so leak
#: checks (tests, CI) can census ``/dev/shm`` without false positives.
SEGMENT_PREFIX = "rolo_trc_"

#: Column starts are padded to this many bytes so ``memoryview.cast`` on
#: 8-byte dtypes ('d'/'q') is always aligned.
_ALIGN = 8

_ITEMSIZE = {"d": 8, "q": 8, "B": 1}

#: Segment names created by this process and not yet unlinked (the
#: fallback census for platforms without a scannable /dev/shm).
_CREATED: Dict[str, bool] = {}

_seq = itertools.count()


def available() -> bool:
    """Whether shared-memory trace publication is usable here."""
    return shared_memory is not None


@dataclasses.dataclass(frozen=True)
class TraceRef:
    """Wire-format handle to a published trace.

    This — not the trace — is what crosses the process boundary per cell.
    ``columns`` holds one ``(typecode, length, byte_offset)`` triple per
    column in :class:`CompiledTrace` order (arrivals, offsets, sizes,
    kinds); everything else restores the trace's identity without touching
    the payload, so the pickled size is a few hundred bytes regardless of
    trace length.
    """

    trace_hash: str
    segment: str
    name: str
    footprint_bytes: int
    columns: Tuple[Tuple[str, int, int], ...]

    @property
    def n_records(self) -> int:
        return self.columns[0][1] if self.columns else 0


class SharedCompiledTrace(CompiledTrace):
    """A :class:`CompiledTrace` whose columns live in a shared segment.

    Columns are ``memoryview``\\ s cast onto the mapped buffer — reads go
    straight to the shared pages, no copy, and the stdlib-``array`` and
    ``memoryview`` element types are identical, so replay results are
    byte-for-byte those of the original trace.  Call :meth:`detach` when
    done to release the views and the mapping (attached traces held by the
    per-process memo are detached at :func:`detach_all`).
    """

    __slots__ = ("_shm",)

    def detach(self) -> None:
        """Release the column views and close this process's mapping."""
        if self._shm is None:
            return
        for view in (self.arrivals, self.offsets, self.sizes, self.kinds):
            view.release()
        self._shm.close()
        self._shm = None


class SharedTraceStore:
    """Parent-side registry of traces published to shared memory.

    Content-addressed: :meth:`publish` keys segments by
    ``CompiledTrace.content_hash()``, so the five cells of a scheme sweep
    share one segment.  Owns every segment it creates; :meth:`close`
    (or the ``with`` statement, or the ``atexit`` safety net) unlinks them
    all.  Workers must only ever :func:`attach`.
    """

    def __init__(self) -> None:
        if shared_memory is None:  # pragma: no cover - exotic builds
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable"
            )
        self._segments: Dict[str, "shared_memory.SharedMemory"] = {}
        self._refs: Dict[str, TraceRef] = {}
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def publish(self, trace: CompiledTrace) -> TraceRef:
        """Copy ``trace``'s columns into a shared segment (idempotent).

        Publishing a trace whose content hash is already in the store
        returns the existing ref without touching the trace again.
        """
        if self._closed:
            raise RuntimeError("SharedTraceStore is closed")
        trace_hash = trace.content_hash()
        ref = self._refs.get(trace_hash)
        if ref is not None:
            return ref

        columns = (trace.arrivals, trace.offsets, trace.sizes, trace.kinds)
        specs: List[Tuple[str, int, int]] = []
        offset = 0
        for column in columns:
            typecode = getattr(column, "typecode", None) or column.format
            offset = _aligned(offset)
            specs.append((typecode, len(column), offset))
            offset += len(column) * _ITEMSIZE[typecode]

        name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_seq)}_{trace_hash[:8]}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(offset, 1)
        )
        _CREATED[name] = True
        buf = segment.buf
        for column, (typecode, length, start) in zip(columns, specs):
            if length:
                raw = memoryview(column).cast("B")
                buf[start : start + len(raw)] = raw
                raw.release()

        ref = TraceRef(
            trace_hash=trace_hash,
            segment=name,
            name=trace.name,
            footprint_bytes=trace.footprint_bytes,
            columns=tuple(specs),
        )
        self._segments[name] = segment
        self._refs[trace_hash] = ref
        return ref

    def get(self, trace_hash: str) -> Optional[TraceRef]:
        """The ref published under this content hash, if any."""
        return self._refs.get(trace_hash)

    def __len__(self) -> int:
        return len(self._refs)

    @property
    def segment_names(self) -> List[str]:
        return sorted(self._segments)

    def nbytes(self) -> int:
        """Total shared bytes held by this store's segments."""
        return sum(seg.size for seg in self._segments.values())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every segment this store created (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for name, segment in self._segments.items():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _CREATED.pop(name, None)
        self._segments.clear()
        self._refs.clear()

    def __enter__(self) -> "SharedTraceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process memo of attached traces, keyed by content hash.  Workers
#: executing consecutive same-trace cells hit this and pay zero attach
#: cost; pool workers are short-lived, so entries die with the process.
_ATTACHED: Dict[str, SharedCompiledTrace] = {}

#: Memo hit/miss counts for this process — dispatcher telemetry reads the
#: deltas around each cell to report shm attach locality.
_ATTACH_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def attach_stats() -> Dict[str, int]:
    """A copy of this process's attach-memo hit/miss counters."""
    return dict(_ATTACH_STATS)


def attach(ref: TraceRef) -> SharedCompiledTrace:
    """Map ``ref``'s segment and wrap it as a zero-copy compiled trace."""
    if shared_memory is None:  # pragma: no cover - exotic builds
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    segment = shared_memory.SharedMemory(name=ref.segment)
    views = []
    for typecode, length, start in ref.columns:
        nbytes = length * _ITEMSIZE[typecode]
        views.append(segment.buf[start : start + nbytes].cast(typecode))
    trace = SharedCompiledTrace(
        *views, name=ref.name, footprint_bytes=ref.footprint_bytes
    )
    trace._hash = ref.trace_hash  # pre-seeded: never re-hash 25 MB
    trace._shm = segment
    return trace


def attach_cached(ref: TraceRef) -> SharedCompiledTrace:
    """Attach with the per-process memo (the pool workers' entry point)."""
    trace = _ATTACHED.get(ref.trace_hash)
    if trace is None:
        _ATTACH_STATS["misses"] += 1
        trace = attach(ref)
        _ATTACHED[ref.trace_hash] = trace
    else:
        _ATTACH_STATS["hits"] += 1
    return trace


def attached_count() -> int:
    """How many traces this process currently has memo-attached."""
    return len(_ATTACHED)


def detach_all() -> None:
    """Drop the attach memo, releasing every mapping this process holds."""
    for trace in _ATTACHED.values():
        trace.detach()
    _ATTACHED.clear()


# ----------------------------------------------------------------------
# Leak census (tests / CI)
# ----------------------------------------------------------------------
def leaked_segments() -> List[str]:
    """Names of rolo trace segments still present on the system.

    On Linux this scans ``/dev/shm`` for :data:`SEGMENT_PREFIX` entries —
    the authoritative census CI asserts empty.  Elsewhere it probes the
    names this process created and has not unlinked.
    """
    if os.path.isdir("/dev/shm"):
        try:
            names = os.listdir("/dev/shm")
        except OSError:  # pragma: no cover - permission oddities
            names = []
        return sorted(n for n in names if n.startswith(SEGMENT_PREFIX))
    leaked = []  # pragma: no cover - non-Linux fallback
    for name in list(_CREATED):
        try:
            probe = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            _CREATED.pop(name, None)
        else:
            probe.close()
            leaked.append(name)
    return sorted(leaked)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN
