"""Trace substrate.

The paper replays MSR Cambridge block traces.  Those files are not
redistributable, so this package provides (a) a parser for the SNIA CSV
format for users who have them (:mod:`repro.traces.msr`), (b) a synthetic
generator whose knobs cover every characteristic the paper publishes about
its traces (:mod:`repro.traces.synthetic`), and (c) calibrated presets for
the seven traces the evaluation uses (:mod:`repro.traces.workloads`).
"""

from repro.traces.analysis import TraceStats, characterize
from repro.traces.compiled import (
    TRACE_COMPILER_VERSION,
    AnyTrace,
    CompiledTrace,
    compile_trace,
    compiled_from_events,
)
from repro.traces.record import Trace, TraceRecord
from repro.traces.shm import (
    SharedCompiledTrace,
    SharedTraceStore,
    TraceRef,
)
from repro.traces.synthetic import (
    Burstiness,
    SyntheticTraceConfig,
    generate_compiled,
    generate_trace,
)
from repro.traces.workloads import (
    PAPER_WORKLOADS,
    WorkloadPreset,
    build_workload_trace,
)

__all__ = [
    "Trace",
    "TraceRecord",
    "TraceStats",
    "characterize",
    "AnyTrace",
    "CompiledTrace",
    "TRACE_COMPILER_VERSION",
    "compile_trace",
    "compiled_from_events",
    "SharedCompiledTrace",
    "SharedTraceStore",
    "TraceRef",
    "Burstiness",
    "SyntheticTraceConfig",
    "generate_trace",
    "generate_compiled",
    "WorkloadPreset",
    "PAPER_WORKLOADS",
    "build_workload_trace",
]
