"""Trace records: the unit of work a controller replays."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.raid.request import RequestKind


class TraceRecord:
    """One block-level request from a trace."""

    __slots__ = ("timestamp", "kind", "offset", "nbytes")

    def __init__(
        self, timestamp: float, kind: RequestKind, offset: int, nbytes: int
    ) -> None:
        if timestamp < 0:
            raise ValueError("negative timestamp")
        if offset < 0 or nbytes <= 0:
            raise ValueError("invalid extent")
        self.timestamp = timestamp
        self.kind = kind
        self.offset = offset
        self.nbytes = nbytes

    @property
    def is_write(self) -> bool:
        return self.kind is RequestKind.WRITE

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TraceRecord({self.timestamp:.4f}, {self.kind.value}, "
            f"{self.offset}, {self.nbytes})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.timestamp == other.timestamp
            and self.kind == other.kind
            and self.offset == other.offset
            and self.nbytes == other.nbytes
        )

    def __hash__(self) -> int:
        return hash((self.timestamp, self.kind, self.offset, self.nbytes))


class Trace:
    """A time-ordered sequence of records plus identifying metadata."""

    def __init__(
        self,
        records: Iterable[TraceRecord],
        name: str = "trace",
        footprint_bytes: Optional[int] = None,
    ) -> None:
        self.records: List[TraceRecord] = list(records)
        for a, b in zip(self.records, self.records[1:]):
            if b.timestamp < a.timestamp:
                raise ValueError("trace records must be time-ordered")
        self.name = name
        self._footprint = footprint_bytes

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, idx: int) -> TraceRecord:
        return self.records[idx]

    @property
    def duration(self) -> float:
        """Seconds from time zero to the last arrival."""
        return self.records[-1].timestamp if self.records else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Highest byte address the trace touches (exclusive)."""
        if self._footprint is not None:
            return self._footprint
        if not self.records:
            return 0
        return max(r.offset + r.nbytes for r in self.records)
