"""Cache substrate (used by RoLo-E's popular-block read cache)."""

from repro.cache.lru import LRUCache

__all__ = ["LRUCache"]
