"""A capacity-bounded LRU cache over hashable keys.

RoLo-E uses one of these to track which read blocks are currently replicated
in the on-duty logging space (§III-B3): hits are served by the spinning
logger pair, misses force a spin-up of the block's home disk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Ordered-dict LRU with hit/miss/eviction statistics."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        """Membership test; does NOT update recency or statistics."""
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def get(self, key: K) -> Optional[V]:
        """Look up ``key``, updating recency and hit/miss counters."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert/refresh ``key``; returns the evicted (key, value), if any."""
        if self.capacity == 0:
            return None
        evicted: Optional[Tuple[K, V]] = None
        if key in self._data:
            self._data.move_to_end(key)
        elif len(self._data) >= self.capacity:
            evicted = self._data.popitem(last=False)
            self.evictions += 1
        self._data[key] = value
        return evicted

    def discard(self, key: K) -> bool:
        """Remove ``key`` if present (no statistics impact)."""
        if key in self._data:
            del self._data[key]
            return True
        return False

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
