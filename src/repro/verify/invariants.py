"""Runtime invariant checker: observe-only structural checks per run.

The checker chains onto the engine event hook (after any metrics
instrumentation already installed), samples the controller every
``sample_every`` events plus once at uninstall, and records violations of
five invariant families without perturbing the run — like the oracle and
the metrics layer, checked runs stay byte-identical to plain runs:

* **log-space accounting** — every :class:`~repro.core.logspace.LogRegion`
  and its allocator satisfy ``used + free == capacity`` with a sorted,
  disjoint free list (delegates to their ``check_invariants``);
* **power-state legality** — a disk with an operation in service is in
  ACTIVE; in particular nothing is ever serviced on a STANDBY or
  spinning-up/-down disk (the §III-B spin-up gating);
* **rotation legality** — while a rotated-logging scheme is active
  (neither de-activated nor draining) exactly ``n_on_duty`` distinct,
  live mirrors hold the duty token (§III-C); RoLo-E's duty pair and
  RoLo-5's on-duty log index stay in range;
* **destage progress** — once a drain starts, the dirty backlog never
  grows (monotone within one in-flight batch per pair of slack, the
  counting granularity of ``dirty_units_total``); a disk failure resets
  the baseline because aborted destages legally re-dirty their units;
* **energy monotonicity** — cumulative array energy never decreases.

Violations are structured dicts (``check``/``time``/``detail``).  When a
metrics registry is supplied (or ambient metrics are enabled), the
checker counts sweeps and violations under
:data:`repro.obs.metrics.VERIFY_CHECKS_TOTAL` /
:data:`repro.obs.metrics.VERIFY_VIOLATIONS_TOTAL`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.disk.power import PowerState


class InvariantChecker:
    """Samples structural invariants through the engine event hook."""

    def __init__(
        self, sample_every: int = 64, registry=None
    ) -> None:
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.sample_every = sample_every
        self.registry = registry
        self.violations: List[Dict[str, Any]] = []
        self.checks_run = 0
        self.sim = None
        self.controller = None
        self._prev_hook = None
        self._installed = False
        self._tick = 0
        self._last_energy = 0.0
        self._drain_floor: Optional[int] = None
        self._failed_count = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    def install(self, sim, controller) -> None:
        """Register on ``sim``'s fused event hook; call before the run.

        Registers through :meth:`Simulator.add_event_observer`, so any
        observers already installed (metrics instrumentation, profilers)
        keep firing first and each layer unwinds independently — the
        engine fuses the chain into a single closure, the run loop never
        tests per event.
        """
        if self._installed:
            raise RuntimeError("invariant checker already installed")
        self._installed = True
        self.sim = sim
        self.controller = controller
        if self.registry is None:
            from repro.obs import metrics as obs_metrics

            self.registry = obs_metrics.active()
        self._last_energy = self._energy_now()
        self._drain_floor = None
        self._failed_count = sum(
            1 for d in controller.all_disks() if d.failed
        )
        sim.add_event_observer(self._on_event)

    def uninstall(self) -> None:
        """Run a final sweep and deregister from the event hook.

        Removing the last observer restores the engine's no-hook
        specialized run loop (``sim.event_hook`` reads ``None`` again).
        """
        if not self._installed:
            return
        self._check_now()
        self.sim.remove_event_observer(self._on_event)
        self._prev_hook = None
        self._installed = False

    # ------------------------------------------------------------------
    def _on_event(self, event) -> None:
        self._tick += 1
        if self._tick % self.sample_every:
            return
        self._check_now()

    def _violate(self, check: str, detail: str) -> None:
        self.violations.append(
            {
                "check": check,
                "time": self.sim.now if self.sim is not None else 0.0,
                "detail": detail,
            }
        )
        if self.registry is not None:
            from repro.obs.metrics import VERIFY_VIOLATIONS_TOTAL

            self.registry.counter(
                VERIFY_VIOLATIONS_TOTAL,
                "Invariant violations detected by the verify checker.",
                check=check,
            ).inc()

    def _energy_now(self) -> float:
        controller = self.controller
        fn = getattr(controller, "total_energy_now", None)
        if fn is not None:
            return fn()
        now = self.sim.now
        return sum(
            d.power.energy_at(now) for d in controller.all_disks()
        )

    # ------------------------------------------------------------------
    def _check_now(self) -> None:
        self.checks_run += 1
        if self.registry is not None:
            from repro.obs.metrics import VERIFY_CHECKS_TOTAL

            self.registry.counter(
                VERIFY_CHECKS_TOTAL,
                "Invariant sweeps run by the verify checker.",
            ).inc()
        self._check_log_space()
        self._check_power_legality()
        self._check_rotation()
        self._check_destage_progress()
        self._check_energy()

    def _check_log_space(self) -> None:
        regions = getattr(self.controller, "log_regions", None)
        if regions is None:  # plain RAID5 has no logging space
            return
        # RoLo-5 shadows the base method with a plain list attribute.
        regions = regions() if callable(regions) else regions
        for region in regions:
            try:
                region.check_invariants()
            except AssertionError as exc:
                self._violate("log-space", f"{region.name}: {exc}")

    def _check_power_legality(self) -> None:
        for disk in self.controller.all_disks():
            if disk.busy and disk.state is not PowerState.ACTIVE:
                self._violate(
                    "power-legality",
                    f"{disk.name} has an op in service while "
                    f"{disk.state.value} (service requires ACTIVE)",
                )

    def _check_rotation(self) -> None:
        controller = self.controller
        on_duty = getattr(controller, "_on_duty", None)
        if isinstance(on_duty, list):
            # RotatedLoggingController (RoLo-P / RoLo-R): §III-C duty set.
            active = not controller._deactivated and not controller._draining
            if active:
                expected = controller.config.n_on_duty
                if len(on_duty) != expected or len(set(on_duty)) != len(
                    on_duty
                ):
                    self._violate(
                        "rotation-legality",
                        f"on-duty set {on_duty} is not {expected} "
                        "distinct loggers",
                    )
                for index in on_duty:
                    if controller.mirrors[index].failed:
                        self._violate(
                            "rotation-legality",
                            f"failed mirror M{index} still holds the "
                            "duty token",
                        )
        elif isinstance(on_duty, int):
            # RoLo-5: a single rotating on-duty log region index.
            if not 0 <= on_duty < controller.config.n_disks:
                self._violate(
                    "rotation-legality",
                    f"on-duty log index {on_duty} out of range",
                )
        duty_pair = getattr(controller, "_duty_pair", None)
        if isinstance(duty_pair, int):
            # RoLo-E: exactly one duty pair, always a valid pair index.
            if not 0 <= duty_pair < controller.config.n_pairs:
                self._violate(
                    "rotation-legality",
                    f"duty pair {duty_pair} out of range",
                )

    def _check_destage_progress(self) -> None:
        controller = self.controller
        failed = sum(1 for d in controller.all_disks() if d.failed)
        if failed != self._failed_count:
            # Failures abort destage processes and legally re-dirty their
            # unfinished units; restart the monotonicity baseline.
            self._failed_count = failed
            self._drain_floor = None
        if not getattr(controller, "_draining", False):
            self._drain_floor = None
            return
        dirty = controller.dirty_units_total()
        config = controller.config
        slack = getattr(
            config, "n_pairs", getattr(config, "n_disks", 1)
        )
        if self._drain_floor is not None and dirty > (
            self._drain_floor + slack
        ):
            self._violate(
                "destage-progress",
                f"dirty backlog grew to {dirty} during drain "
                f"(floor {self._drain_floor}, slack {slack})",
            )
        if self._drain_floor is None or dirty < self._drain_floor:
            self._drain_floor = dirty

    def _check_energy(self) -> None:
        energy = self._energy_now()
        if energy < self._last_energy - 1e-9:
            self._violate(
                "energy-monotonicity",
                f"cumulative energy fell from {self._last_energy:.6f} J "
                f"to {energy:.6f} J",
            )
        self._last_energy = energy


__all__ = ["InvariantChecker"]
