"""Lockstep reference model for differential verification.

:class:`ReferenceModel` is an obviously-correct shadow block store: a
dictionary from stripe unit to the set of disks holding the unit's latest
acknowledged contents, maintained straight from the oracle note stream the
controllers already emit (writes, destages, rebuilds, cache fills) plus
the read-path notes added for verification.  It subclasses
:class:`repro.faults.ConsistencyOracle`, so the CNF reconstructability
sweeps keep running unchanged; on top of them it checks the mirrored-array
consistency properties Thomasian's RAID tutorial enumerates:

* **read-your-writes** — every completed read is served by a disk that
  holds the unit's latest acknowledged contents (home reads, balanced
  RAID10 reads, RoLo-E log hits);
* **mirror agreement at quiesce** — once the controller reports zero
  dirty units after a drain, both home copies of every healthy pair
  appear in every CNF clause of every tracked unit (destage completed
  everywhere, per §III-D's decentralized destaging contract);
* **redundancy restored after rebuild** — subsumed by the inherited
  oracle sweeps (``post-rebuild`` checks) plus the quiesce check, which
  the rebuilt replacement must satisfy by name;
* **trace coverage** — the set of tracked units equals the set of units
  the driving trace wrote, so no acknowledged write escaped the oracle
  note stream (a lockstep check against the trace itself).

Degraded and destage-window reads are checked leniently (pair-local
routing only): a symbolic simulation serves them from the pair's
reconstructed state, so demanding a strict holder there would flag the
paper's intended §III-D recovery behavior, not a bug.  RoLo-E's popular
-block cache is tracked as a monotone over-approximation (evictions and
rotations do not clear it) — this can only weaken the read check, never
produce a false alarm.

Like the oracle it extends, the model only observes: runs with a
reference model attached are byte-identical to plain runs.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.faults.oracle import ConsistencyOracle

#: Read kinds checked strictly against the holder map.
_STRICT_KINDS = ("home", "balanced")
#: Read kinds checked for pair-local routing only.
_LENIENT_KINDS = ("degraded", "destaging")


class ReferenceModel(ConsistencyOracle):
    """Dict-based shadow store checked in lockstep with a controller."""

    def __init__(self, trace=None) -> None:
        super().__init__()
        #: Optional driving trace; enables the coverage check at ``end``.
        self.trace = trace
        #: (pair, base) -> names currently holding the latest contents.
        self.holders: Dict[Tuple[int, int], FrozenSet[str]] = {}
        #: (pair, base) -> every name that ever held any version.
        self.ever: Dict[Tuple[int, int], FrozenSet[str]] = {}
        #: (pair, base) -> names holding a cached copy (RoLo-E).
        self.cache_holders: Dict[Tuple[int, int], FrozenSet[str]] = {}
        #: (disk, base) -> owner name, for the parity (RAID5/RoLo-5) path.
        self.parity_holders: Dict[Tuple[int, int], str] = {}
        self.reads_checked = 0
        self.writes_tracked = 0
        self.violations: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def _violate(self, check: str, detail: str) -> None:
        self.violations.append(
            {
                "check": check,
                "time": self.controller.sim.now if self.controller else 0.0,
                "detail": detail,
            }
        )

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    # Write-path notes (extend the oracle's bookkeeping with a holder map)
    # ------------------------------------------------------------------
    def note_write(
        self, pair: int, base: int, copies: List[str], full: bool
    ) -> None:
        super().note_write(pair, base, copies, full)
        names = frozenset(copies)
        key = (pair, base)
        if full or key not in self.holders:
            self.holders[key] = names
        else:
            # Partial overwrite: the latest contents span old and new
            # copies; only their union can serve the whole unit.
            self.holders[key] = self.holders[key] | names
        self.ever[key] = self.ever.get(key, frozenset()) | names
        self.writes_tracked += 1

    def note_destage(
        self, pair: int, units: List[int], targets: List[str]
    ) -> None:
        super().note_destage(pair, units, targets)
        names = frozenset(targets)
        for base in units:
            key = (pair, base)
            if key in self.holders:
                self.holders[key] = self.holders[key] | names
                self.ever[key] = self.ever[key] | names

    def note_rebuilt(
        self, role: str, index: int, replacement_name: str
    ) -> None:
        super().note_rebuilt(role, index, replacement_name)
        if role == "log":
            return
        extra = frozenset((replacement_name,))
        for key in self.holders:
            if key[0] == index:
                self.holders[key] = self.holders[key] | extra
                self.ever[key] = self.ever[key] | extra

    def note_cache_fill(
        self, pair: int, base: int, disk_names: List[str]
    ) -> None:
        key = (pair, base)
        self.cache_holders[key] = self.cache_holders.get(
            key, frozenset()
        ) | frozenset(disk_names)

    # ------------------------------------------------------------------
    # Read-path checks
    # ------------------------------------------------------------------
    def note_read(self, controller, seg, disk_name: str, kind: str) -> None:
        unit = controller.layout.stripe_unit
        first = (seg.disk_offset // unit) * unit
        last = ((seg.end_offset - 1) // unit) * unit
        pair = seg.pair
        for base in range(first, last + 1, unit):
            self.reads_checked += 1
            key = (pair, base)
            if kind in _LENIENT_KINDS:
                members = {
                    controller.primaries[pair].name,
                    controller.mirrors[pair].name,
                }
                if disk_name not in members:
                    self._violate(
                        "read-routing",
                        f"{kind} read of pair {pair} unit {base} served by "
                        f"{disk_name}, not a pair member {sorted(members)}",
                    )
                continue
            holders = self.holders.get(key)
            if holders is None:
                continue  # never written during this run
            valid = holders | self.cache_holders.get(key, frozenset())
            if kind == "log-hit":
                # RoLo-E hits are served from the current duty pair; dirty
                # backlog legally survives a rotation (§III-C), so the
                # duty disks and historical holders are all acceptable.
                valid |= self.ever.get(key, frozenset())
                duty = getattr(controller, "_duty_pair", None)
                if duty is not None:
                    valid |= {
                        controller.primaries[duty].name,
                        controller.mirrors[duty].name,
                    }
            if disk_name not in valid:
                self._violate(
                    "read-your-writes",
                    f"{kind} read of pair {pair} unit {base} served by "
                    f"{disk_name}; latest contents live on {sorted(valid)}",
                )

    # ------------------------------------------------------------------
    # Parity (RAID5 / RoLo-5) notes: single-copy ownership per data unit
    # ------------------------------------------------------------------
    def _parity_units(self, controller, seg):
        unit = controller.layout.stripe_unit
        first = (seg.disk_offset // unit) * unit
        last = ((seg.disk_offset + seg.nbytes - 1) // unit) * unit
        for base in range(first, last + 1, unit):
            yield (seg.disk, base)

    def note_parity_write(self, controller, seg) -> None:
        owner = controller.disks[seg.disk].name
        for key in self._parity_units(controller, seg):
            self.parity_holders[key] = owner
            self.writes_tracked += 1

    def note_parity_read(self, controller, seg, disk_name: str) -> None:
        for key in self._parity_units(controller, seg):
            self.reads_checked += 1
            owner = self.parity_holders.get(key)
            if owner is not None and disk_name != owner:
                self._violate(
                    "read-your-writes",
                    f"parity-array read of disk {key[0]} unit {key[1]} "
                    f"served by {disk_name}; owner is {owner}",
                )

    # ------------------------------------------------------------------
    # Final lockstep checks, run on the oracle's ``end`` sweep
    # ------------------------------------------------------------------
    def check(self, event: str):
        report = super().check(event)
        if event == "end" and self.controller is not None:
            self._final_checks()
        return report

    def _final_checks(self) -> None:
        controller = self.controller
        if hasattr(controller, "primaries"):
            self._check_quiesce_mirrored(controller)
            if self.trace is not None:
                self._check_coverage_mirrored(controller)
        else:
            self._check_quiesce_parity(controller)
            if self.trace is not None:
                self._check_coverage_parity(controller)

    def _check_quiesce_mirrored(self, controller) -> None:
        """Mirror agreement: after a clean drain, both home copies of
        every healthy pair must appear in every clause of every unit."""
        if controller.dirty_units_total() != 0:
            # Degraded scheme state (e.g. an unrebuilt failure pinned the
            # destage backlog): agreement is not expected to hold, and the
            # inherited reconstructability sweep still covers safety.
            return
        for (pair, base), clauses in sorted(self._clauses.items()):
            if controller._pair_degraded(pair):
                continue
            home = {
                controller.primaries[pair].name,
                controller.mirrors[pair].name,
            }
            for clause in clauses:
                if not home <= clause:
                    self._violate(
                        "mirror-agreement",
                        f"pair {pair} unit {base} quiesced without both "
                        f"home copies: clause {sorted(clause)} lacks "
                        f"{sorted(home - clause)}",
                    )
                    break

    def _check_coverage_mirrored(self, controller) -> None:
        expected: Set[Tuple[int, int]] = set()
        for record in self.trace:
            if not record.is_write:
                continue
            for pair, base, _full in controller._unit_coverage(
                record.offset, record.nbytes
            ):
                expected.add((pair, base))
        self._compare_coverage(expected, set(self._clauses))

    def _check_quiesce_parity(self, controller) -> None:
        if controller.dirty_units_total() != 0:
            self._violate(
                "quiesce-dirty",
                f"{controller.dirty_units_total()} dirty rows/units "
                "remain after drain",
            )

    def _check_coverage_parity(self, controller) -> None:
        layout = controller.layout
        unit = layout.stripe_unit
        expected: Set[Tuple[int, int]] = set()
        for record in self.trace:
            if not record.is_write:
                continue
            for row, row_off, row_len in layout.iter_row_extents(
                record.offset, record.nbytes
            ):
                base_addr = row * layout.data_disks_per_row * unit
                for seg in layout.map_extent(base_addr + row_off, row_len):
                    first = (seg.disk_offset // unit) * unit
                    last = (
                        (seg.disk_offset + seg.nbytes - 1) // unit
                    ) * unit
                    for base in range(first, last + 1, unit):
                        expected.add((seg.disk, base))
        self._compare_coverage(expected, set(self.parity_holders))

    def _compare_coverage(
        self, expected: Set[Tuple[int, int]], tracked: Set[Tuple[int, int]]
    ) -> None:
        if expected == tracked:
            return
        missing = sorted(expected - tracked)[:5]
        extra = sorted(tracked - expected)[:5]
        self._violate(
            "trace-coverage",
            f"tracked units diverge from the trace's written units: "
            f"{len(expected - tracked)} missing (first {missing}), "
            f"{len(tracked - expected)} unexpected (first {extra})",
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = super().to_dict()
        data["violations"] = list(self.violations)
        data["reads_checked"] = self.reads_checked
        data["writes_tracked"] = self.writes_tracked
        return data


__all__ = ["ReferenceModel"]
