"""Seedable scenario fuzzer with greedy shrinking.

A :class:`Scenario` is one randomized verification run: a scheme, a
workload preset truncated to ``n_requests``, an array size, and a fault
spec (possibly empty) drawn from :mod:`repro.faults.schedule`'s random
generators.  :func:`run_scenario` replays it with a lockstep
:class:`~repro.verify.ReferenceModel` and a runtime
:class:`~repro.verify.InvariantChecker` attached and reports every
violation either finds, plus the inherited oracle verdict.

:func:`run_fuzz` executes a seeded batch of scenarios with the same
two-layer caching (in-process memo + persistent result cache) and
shared-memory trace fan-out as the experiment matrix — each distinct
``(workload, scale, seed)`` trace is published once and every scenario
truncates its own prefix in the worker, so big sweeps stay cheap and
serial/parallel/warm-cache results are bit-identical.

A failing scenario is minimized by :func:`shrink`: a greedy fixpoint over
candidates that halve/decrement the request prefix and drop fault events
one at a time, keeping a candidate only while it still fails.  The result
is written by :func:`write_artifact` as a JSON reproducer embedding the
scenario, the violations, and the full oracle snapshot, replayable with
``rolo verify repro FILE``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import ArrayConfig, RAID5_SCHEMES
from repro.core.metrics import RunMetrics
from repro.core.raid5 import Raid5Config
from repro.experiments.cache import active_cache
from repro.faults.injector import run_faulted
from repro.faults.schedule import FaultSchedule
from repro.traces.compiled import CompiledTrace, truncate_trace
from repro.traces.workloads import build_workload_trace
from repro.verify.invariants import InvariantChecker
from repro.verify.reference import ReferenceModel

#: Bump when scenario semantics or the verify payload schema change; the
#: cache folds it into every key, unreachable-stale like the trace format.
VERIFY_SCHEMA_VERSION = 1

#: Mirrored schemes the fuzzer draws from (parity schemes lack the
#: fail-stop surface, so they are exercised by the clean parity tests).
FUZZ_SCHEMES: Tuple[str, ...] = (
    "raid10", "graid", "rolo-p", "rolo-r", "rolo-e"
)

#: (workload, scale) presets: small prefixes of the paper's traces.
FUZZ_WORKLOADS: Tuple[Tuple[str, float], ...] = (
    ("src2_2", 0.01),
    ("web_1", 0.02),
    ("rsrch_2", 0.02),
    ("hm_1", 0.02),
)

#: In-process memo of completed scenarios (key -> payload dict).
_MEMO: Dict[Tuple, Dict[str, Any]] = {}

#: In-process memo of full (untruncated) workload traces.
_TRACES: Dict[Tuple, CompiledTrace] = {}


def clear_memo() -> None:
    _MEMO.clear()


def _full_trace(workload: str, scale: float, seed: int) -> CompiledTrace:
    key = (workload, scale, seed)
    trace = _TRACES.get(key)
    if trace is None:
        trace = build_workload_trace(
            workload, scale=scale, seed=seed, compiled=True
        )
        _TRACES[key] = trace
    return trace


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Scenario:
    """One randomized verification run, JSON round-trippable."""

    scheme: str
    workload: str
    scale: float
    n_pairs: int
    seed: int
    #: Request-prefix length; ``None`` replays the whole trace.
    n_requests: Optional[int]
    #: ``FaultSchedule`` spec string; empty means a clean run.
    fault_spec: str = ""

    def key(self) -> Tuple:
        return (
            self.scheme,
            self.workload,
            self.scale,
            self.n_pairs,
            self.seed,
            self.n_requests,
            self.fault_spec,
        )

    def label(self) -> str:
        fault = f" + [{self.fault_spec}]" if self.fault_spec else ""
        return (
            f"{self.scheme}/{self.workload}@{self.scale:g}"
            f" x{self.n_requests} pairs={self.n_pairs}"
            f" seed={self.seed}{fault}"
        )

    def slug(self) -> str:
        digest = hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        ).hexdigest()
        return f"{self.scheme}-{self.workload}-{digest[:10]}"

    def schedule(self) -> FaultSchedule:
        # parse("") raises by design; a clean run is the empty schedule.
        if not self.fault_spec:
            return FaultSchedule(())
        return FaultSchedule.parse(self.fault_spec)

    def resolve_config(self):
        if self.scheme in RAID5_SCHEMES:
            return Raid5Config(n_disks=2 * self.n_pairs).scaled(self.scale)
        return ArrayConfig(n_pairs=self.n_pairs).scaled(self.scale)

    def build_trace(self) -> CompiledTrace:
        return _full_trace(self.workload, self.scale, self.seed)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        return cls(
            scheme=data["scheme"],
            workload=data["workload"],
            scale=data["scale"],
            n_pairs=data["n_pairs"],
            seed=data["seed"],
            n_requests=data["n_requests"],
            fault_spec=data.get("fault_spec", ""),
        )


def random_scenario(
    rng: random.Random,
    schemes: Tuple[str, ...] = FUZZ_SCHEMES,
) -> Scenario:
    """Draw one scenario from the scheme x workload x fault space."""
    scheme = rng.choice(schemes)
    workload, scale = rng.choice(FUZZ_WORKLOADS)
    n_pairs = rng.choice((2, 3, 4))
    seed = rng.choice((8, 42, 1234))
    n_requests = rng.randrange(30, 181)
    fault_spec = ""
    kind = rng.choice(("clean", "clean", "fail", "fail", "soup"))
    if kind != "clean" and scheme not in RAID5_SCHEMES:
        duration = truncate_trace(
            _full_trace(workload, scale, seed), n_requests
        ).duration
        if duration > 0.5:
            disks = [f"P{i}" for i in range(n_pairs)] + [
                f"M{i}" for i in range(n_pairs)
            ]
            t_min = 0.1 * duration
            t_max = 0.9 * duration
            if kind == "fail":
                schedule = FaultSchedule.random_single_failure(
                    rng, disks, t_min, t_max, rebuild=True
                )
            else:
                config = ArrayConfig(n_pairs=n_pairs).scaled(scale)
                schedule = FaultSchedule.random_soup(
                    rng,
                    disks,
                    t_min,
                    t_max,
                    n_slowdowns=1,
                    n_lse=1,
                    data_capacity_bytes=config.data_capacity_bytes,
                )
            fault_spec = schedule.spec()
    return Scenario(
        scheme=scheme,
        workload=workload,
        scale=scale,
        n_pairs=n_pairs,
        seed=seed,
        n_requests=n_requests,
        fault_spec=fault_spec,
    )


def generate_scenarios(n_scenarios: int, seed: int) -> List[Scenario]:
    rng = random.Random(seed)
    return [random_scenario(rng) for _ in range(n_scenarios)]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclasses.dataclass
class VerifyResult:
    """Outcome of one verified scenario run, JSON round-trippable."""

    scenario: Scenario
    ok: bool
    violations: List[Dict[str, Any]]
    consistent: bool
    lost_blocks: int
    oracle_checks: int
    reads_checked: int
    invariant_sweeps: int
    metrics: RunMetrics
    oracle: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "ok": self.ok,
            "violations": self.violations,
            "consistent": self.consistent,
            "lost_blocks": self.lost_blocks,
            "oracle_checks": self.oracle_checks,
            "reads_checked": self.reads_checked,
            "invariant_sweeps": self.invariant_sweeps,
            "metrics": self.metrics.to_dict(),
            "oracle": self.oracle,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerifyResult":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            ok=data["ok"],
            violations=data["violations"],
            consistent=data["consistent"],
            lost_blocks=data["lost_blocks"],
            oracle_checks=data["oracle_checks"],
            reads_checked=data["reads_checked"],
            invariant_sweeps=data["invariant_sweeps"],
            metrics=RunMetrics.from_dict(data["metrics"]),
            oracle=data.get("oracle"),
        )


def run_scenario(
    scenario: Scenario, trace=None, registry=None
) -> VerifyResult:
    """Replay one scenario with the full verification harness attached.

    ``trace`` substitutes a shared-memory attachment for the full
    workload trace (the scenario's prefix is cut here either way);
    ``registry`` optionally meters the run.  Both observe only, so the
    simulation stays byte-identical to an unverified run.
    """
    if trace is None:
        trace = scenario.build_trace()
    prefix = truncate_trace(trace, scenario.n_requests)
    reference = ReferenceModel(trace=prefix)
    checker = InvariantChecker(registry=registry)
    result = run_faulted(
        scenario.scheme,
        scenario.resolve_config(),
        prefix,
        scenario.schedule(),
        registry=registry,
        oracle=reference,
        checker=checker,
    )
    violations = list(reference.violations) + list(checker.violations)
    return VerifyResult(
        scenario=scenario,
        ok=result.consistent and not violations,
        violations=violations,
        consistent=result.consistent,
        lost_blocks=result.lost_blocks_total,
        oracle_checks=len(result.checks),
        reads_checked=reference.reads_checked,
        invariant_sweeps=checker.checks_run,
        metrics=result.metrics,
        oracle=result.oracle,
    )


@dataclasses.dataclass(frozen=True, eq=False)
class VerifyCell:
    """run_grouped adapter: scenario + shared-trace identity."""

    scenario: Scenario

    def key(self) -> Tuple:
        return ("verify", VERIFY_SCHEMA_VERSION, self.scenario.key())

    def label(self) -> str:
        return self.scenario.label()

    def trace_key(self) -> Tuple:
        s = self.scenario
        return ("workload", s.workload, s.scale, s.seed)

    def build_trace(self) -> CompiledTrace:
        return self.scenario.build_trace()

    def execute(self, trace=None) -> VerifyResult:
        return run_scenario(self.scenario, trace=trace)


def _lookup(key: Tuple) -> Optional[Dict[str, Any]]:
    hit = _MEMO.get(key)
    if hit is not None:
        return hit
    disk = active_cache()
    if disk is not None:
        payload = disk.get_payload(key)
        if payload is not None:
            _MEMO[key] = payload
            return payload
    return None


def _install(key: Tuple, payload: Dict[str, Any]) -> None:
    _MEMO[key] = payload
    disk = active_cache()
    if disk is not None:
        disk.put_payload(key, payload)


def _compute_verify_cell(cell: VerifyCell, ref=None) -> Dict[str, Any]:
    """Worker entry point: run one scenario, ship its payload back."""
    from repro.traces import shm

    trace = shm.attach_cached(ref) if ref is not None else None
    return cell.execute(trace=trace).to_dict()


def run_fuzz(
    n_scenarios: int,
    seed: int = 8,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    scenarios: Optional[List[Scenario]] = None,
) -> List[VerifyResult]:
    """Run a seeded scenario batch; results in generation order.

    Uses the in-process memo + persistent result cache and, with
    ``jobs > 1``, the locality-aware shared-trace pool — outputs are
    bit-identical across serial, parallel, and warm-cache paths.
    """
    if scenarios is None:
        scenarios = generate_scenarios(n_scenarios, seed)
    cells = [VerifyCell(s) for s in scenarios]
    unique: Dict[Tuple, VerifyCell] = {}
    for cell in cells:
        unique.setdefault(cell.key(), cell)
    pending = [
        (key, cell)
        for key, cell in unique.items()
        if _lookup(key) is None
    ]
    done = len(unique) - len(pending)

    def _note(cell: VerifyCell) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(f"[{done}/{len(unique)}] {cell.label()}")

    if pending and jobs > 1:
        from repro.experiments.parallel import run_grouped

        def _handle(key: Tuple, cell: VerifyCell, payload: Dict[str, Any]):
            _install(key, payload)
            _note(cell)

        run_grouped(pending, jobs, _compute_verify_cell, _handle)
    else:
        for key, cell in pending:
            _install(key, cell.execute().to_dict())
            _note(cell)
    return [
        VerifyResult.from_dict(_lookup(cell.key())) for cell in cells
    ]


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _shrink_candidates(scenario: Scenario):
    n = scenario.n_requests
    if n is not None and n > 1:
        for cand in (n // 2, (3 * n) // 4, n - 1):
            if 0 < cand < n:
                yield dataclasses.replace(scenario, n_requests=cand)
    if scenario.fault_spec:
        events = scenario.schedule().events
        for drop in range(len(events)):
            remaining = FaultSchedule(
                tuple(e for i, e in enumerate(events) if i != drop)
            )
            yield dataclasses.replace(
                scenario, fault_spec=remaining.spec()
            )


def shrink(
    scenario: Scenario,
    is_failing: Optional[Callable[[Scenario], bool]] = None,
    max_attempts: int = 48,
) -> Scenario:
    """Greedily minimize a failing scenario while it keeps failing.

    Candidates shorten the request prefix (halve, three-quarters,
    decrement — which also shortens the horizon) and drop fault events
    one at a time; each accepted candidate restarts the pass, so the
    result is a local fixpoint within the attempt budget.  ``is_failing``
    defaults to re-running the scenario through the full harness.
    """
    if is_failing is None:
        def is_failing(s: Scenario) -> bool:
            return not run_scenario(s).ok

    current = scenario
    attempts = 0
    tried = {current.key()}
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in _shrink_candidates(current):
            if attempts >= max_attempts:
                break
            if candidate.key() in tried:
                continue
            tried.add(candidate.key())
            attempts += 1
            if is_failing(candidate):
                current = candidate
                progressed = True
                break
    return current


# ----------------------------------------------------------------------
# Reproducer artifacts
# ----------------------------------------------------------------------
def write_artifact(
    directory, scenario: Scenario, result: VerifyResult
) -> Path:
    """Write a ready-to-run JSON reproducer; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"repro-{scenario.slug()}.json"
    payload = {
        "version": VERIFY_SCHEMA_VERSION,
        "scenario": scenario.to_dict(),
        "ok": result.ok,
        "violations": result.violations,
        "oracle": result.oracle,
        "command": f"rolo verify repro {path}",
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_scenario(path) -> Scenario:
    """Load a scenario from an artifact (or bare scenario) JSON file."""
    data = json.loads(Path(path).read_text())
    if "scenario" in data:
        data = data["scenario"]
    return Scenario.from_dict(data)


__all__ = [
    "FUZZ_SCHEMES",
    "FUZZ_WORKLOADS",
    "Scenario",
    "VerifyCell",
    "VerifyResult",
    "clear_memo",
    "generate_scenarios",
    "load_scenario",
    "random_scenario",
    "run_fuzz",
    "run_scenario",
    "shrink",
    "write_artifact",
]
