"""Differential verification harness.

Three observe-only layers over the simulation stack:

* :class:`ReferenceModel` — a lockstep dict-based shadow block store
  (subclassing the fault oracle) checking read-your-writes, mirror
  agreement at quiesce, and trace coverage;
* :class:`InvariantChecker` — a sampled runtime checker for log-space
  accounting, power-state legality, rotation legality, destage progress,
  and energy monotonicity, chained onto the engine event hook;
* the scenario fuzzer — seedable random scheme x workload x fault
  scenarios (:func:`run_fuzz`), with greedy :func:`shrink`-ing of
  failures into minimal JSON reproducers replayable via
  ``rolo verify repro``.

All three leave the simulation byte-identical to an unverified run.
"""

from repro.verify.fuzzer import (
    FUZZ_SCHEMES,
    FUZZ_WORKLOADS,
    Scenario,
    VerifyCell,
    VerifyResult,
    clear_memo,
    generate_scenarios,
    load_scenario,
    random_scenario,
    run_fuzz,
    run_scenario,
    shrink,
    write_artifact,
)
from repro.verify.invariants import InvariantChecker
from repro.verify.reference import ReferenceModel

__all__ = [
    "FUZZ_SCHEMES",
    "FUZZ_WORKLOADS",
    "InvariantChecker",
    "ReferenceModel",
    "Scenario",
    "VerifyCell",
    "VerifyResult",
    "clear_memo",
    "generate_scenarios",
    "load_scenario",
    "random_scenario",
    "run_fuzz",
    "run_scenario",
    "shrink",
    "write_artifact",
]
