"""rolo-repro: a full reproduction of RoLo (ICDCS 2010).

Public API highlights:

* :mod:`repro.sim` — discrete-event engine.
* :mod:`repro.disk` — disk mechanical + power simulator.
* :mod:`repro.raid` — RAID10 address math and logical requests.
* :mod:`repro.traces` — MSR-format parsing and calibrated synthetic traces.
* :mod:`repro.core` — the RoLo-P/R/E controllers and the RAID10/GRAID
  baselines, plus :func:`repro.core.run_trace`.
* :mod:`repro.reliability` — MTTDL analysis (paper §IV).
* :mod:`repro.experiments` — one registered experiment per paper figure and
  table.
"""

__version__ = "1.0.0"
