"""RAID substrate: striping/mirroring address math and logical requests."""

from repro.raid.layout import Raid10Layout, StripeSegment
from repro.raid.request import IORequest, RequestKind

__all__ = ["Raid10Layout", "StripeSegment", "IORequest", "RequestKind"]
