"""RAID5 address mapping (left-symmetric rotating parity).

Substrate for the paper's stated future work (§VII): "a study on the
feasibility and efficiency of RoLo deployed in parity-based storage
systems".  A stripe row holds ``n_disks - 1`` data units plus one parity
unit; the parity column rotates right-to-left across rows so parity I/O is
spread over all disks.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterator, List, Tuple


@dataclasses.dataclass(frozen=True)
class Raid5Segment:
    """A contiguous piece of a logical request on one disk."""

    disk: int
    disk_offset: int
    nbytes: int
    #: Stripe row this segment belongs to (parity bookkeeping needs it).
    row: int

    def __post_init__(self) -> None:
        if min(self.disk, self.disk_offset, self.row) < 0 or self.nbytes <= 0:
            raise ValueError(f"invalid segment {self!r}")


class Raid5Layout:
    """Striping + rotating parity math for a RAID5 array."""

    def __init__(
        self,
        n_disks: int,
        stripe_unit: int,
        data_capacity: int,
        spread: bool = False,
    ) -> None:
        if n_disks < 3:
            raise ValueError("RAID5 needs at least three disks")
        if stripe_unit <= 0:
            raise ValueError("stripe unit must be positive")
        if data_capacity <= 0 or data_capacity % stripe_unit:
            raise ValueError(
                "per-disk capacity must be a positive multiple of the unit"
            )
        self.n_disks = n_disks
        self.stripe_unit = stripe_unit
        self.data_capacity = data_capacity
        self.spread = spread
        self._rows = data_capacity // stripe_unit
        multiplier = max(1, int(self._rows / 1.618))
        while math.gcd(multiplier, self._rows) != 1:
            multiplier += 1
        self._multiplier = multiplier

    @property
    def data_disks_per_row(self) -> int:
        return self.n_disks - 1

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def logical_capacity(self) -> int:
        return self._rows * self.data_disks_per_row * self.stripe_unit

    # ------------------------------------------------------------------
    def parity_disk(self, row: int) -> int:
        """Disk holding row ``row``'s parity (left-symmetric rotation)."""
        if not 0 <= row < self._rows:
            raise ValueError(f"row {row} out of range")
        return (self.n_disks - 1 - row % self.n_disks) % self.n_disks

    def _physical_row(self, row: int) -> int:
        if not self.spread:
            return row
        return (row * self._multiplier) % self._rows

    def parity_offset(self, row: int) -> Tuple[int, int]:
        """(disk, byte offset) of row ``row``'s parity unit."""
        return (
            self.parity_disk(row),
            self._physical_row(row) * self.stripe_unit,
        )

    def data_disk(self, row: int, column: int) -> int:
        """Disk of data column ``column`` (0-based) in ``row``."""
        if not 0 <= column < self.data_disks_per_row:
            raise ValueError(f"column {column} out of range")
        return (self.parity_disk(row) + 1 + column) % self.n_disks

    # ------------------------------------------------------------------
    def map_extent(self, offset: int, nbytes: int) -> List[Raid5Segment]:
        """Split a logical extent into per-disk data segments."""
        if offset < 0 or nbytes <= 0:
            raise ValueError("invalid extent")
        if offset + nbytes > self.logical_capacity:
            raise ValueError(
                f"extent [{offset}, {offset + nbytes}) exceeds logical "
                f"capacity {self.logical_capacity}"
            )
        unit = self.stripe_unit
        per_row = self.data_disks_per_row
        segments: List[Raid5Segment] = []
        cursor = offset
        remaining = nbytes
        while remaining > 0:
            stripe_number = cursor // unit
            within = cursor - stripe_number * unit
            take = min(unit - within, remaining)
            row = stripe_number // per_row
            column = stripe_number % per_row
            segments.append(
                Raid5Segment(
                    self.data_disk(row, column),
                    self._physical_row(row) * unit + within,
                    take,
                    row,
                )
            )
            cursor += take
            remaining -= take
        return segments

    def to_logical(self, row: int, column: int, within: int = 0) -> int:
        """Logical byte address of (row, data column, offset-within-unit)."""
        if not 0 <= row < self._rows:
            raise ValueError(f"row {row} out of range")
        if not 0 <= column < self.data_disks_per_row:
            raise ValueError(f"column {column} out of range")
        if not 0 <= within < self.stripe_unit:
            raise ValueError("within out of range")
        stripe_number = row * self.data_disks_per_row + column
        return stripe_number * self.stripe_unit + within

    def rows_touched(self, offset: int, nbytes: int) -> Dict[int, int]:
        """Map of stripe row -> number of data units the extent touches."""
        touched: Dict[int, int] = {}
        unit = self.stripe_unit
        per_row = self.data_disks_per_row
        first = offset // unit
        last = (offset + nbytes - 1) // unit
        for stripe_number in range(first, last + 1):
            row = stripe_number // per_row
            touched[row] = touched.get(row, 0) + 1
        return touched

    def is_full_stripe(self, offset: int, nbytes: int, row: int) -> bool:
        """True when the extent covers all of ``row``'s data units."""
        unit = self.stripe_unit
        per_row = self.data_disks_per_row
        row_start = row * per_row * unit
        row_end = row_start + per_row * unit
        return offset <= row_start and offset + nbytes >= row_end

    def iter_row_extents(
        self, offset: int, nbytes: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield (row, row-local offset, row-local nbytes) per touched row."""
        unit = self.stripe_unit
        row_bytes = self.data_disks_per_row * unit
        cursor = offset
        end = offset + nbytes
        while cursor < end:
            row = cursor // row_bytes
            row_start = row * row_bytes
            take = min(end, row_start + row_bytes) - cursor
            yield row, cursor - row_start, take
            cursor += take
