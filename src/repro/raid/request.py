"""Logical (array-level) I/O requests.

An :class:`IORequest` is what the trace replayer hands the controller.  The
controller fans it out into disk operations; :meth:`add_waits` /
:meth:`op_done` implement the fan-in that fires the completion callback once
every constituent disk operation has finished.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class IORequest:
    """One array-level request with fan-in completion tracking."""

    __slots__ = (
        "kind",
        "offset",
        "nbytes",
        "arrival_time",
        "finish_time",
        "on_complete",
        "_outstanding",
        "_sealed",
    )

    def __init__(
        self,
        kind: RequestKind,
        offset: int,
        nbytes: int,
        arrival_time: float,
        on_complete: Optional[Callable[["IORequest"], None]] = None,
    ) -> None:
        if offset < 0 or nbytes <= 0:
            raise ValueError("invalid request extent")
        self.kind = kind
        self.offset = offset
        self.nbytes = nbytes
        self.arrival_time = arrival_time
        self.finish_time: float = -1.0
        self.on_complete = on_complete
        self._outstanding = 0
        self._sealed = False

    @property
    def is_write(self) -> bool:
        return self.kind is RequestKind.WRITE

    @property
    def response_time(self) -> float:
        """Seconds from arrival to last sub-operation completion."""
        if self.finish_time < 0:
            raise ValueError("request not yet complete")
        return self.finish_time - self.arrival_time

    @property
    def complete(self) -> bool:
        return self.finish_time >= 0

    def add_waits(self, count: int = 1) -> None:
        """Register ``count`` more sub-operations to wait for."""
        if self._sealed and self._outstanding == 0:
            raise ValueError("request already completed")
        if count <= 0:
            raise ValueError("count must be positive")
        self._outstanding += count

    def seal(self, now: float) -> None:
        """Declare that no more sub-operations will be added.

        If nothing is outstanding the request completes immediately (e.g. a
        read fully served from cache).
        """
        self._sealed = True
        if self._outstanding == 0:
            self._finish(now)

    def op_done(self, now: float) -> None:
        """Record one sub-operation completion."""
        if self._outstanding <= 0:
            raise ValueError("op_done without matching add_waits")
        self._outstanding -= 1
        if self._outstanding == 0 and self._sealed:
            self._finish(now)

    def op_complete(self, op) -> None:
        """Fan-in adapter usable directly as a ``DiskOp.on_complete``.

        ``op.finish_time`` is the simulator's current time when the disk
        fires the completion, so this is equivalent to ``op_done(sim.now)``
        without allocating a per-operation closure.
        """
        self.op_done(op.finish_time)

    def _finish(self, now: float) -> None:
        self.finish_time = now
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<IORequest {self.kind.value} off={self.offset} "
            f"bytes={self.nbytes} t={self.arrival_time:.4f}>"
        )
