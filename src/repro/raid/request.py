"""Logical (array-level) I/O requests.

An :class:`IORequest` is what the trace replayer hands the controller.  The
controller fans it out into disk operations; :meth:`add_waits` /
:meth:`op_done` implement the fan-in that fires the completion callback once
every constituent disk operation has finished.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class IORequest:
    """One array-level request with fan-in completion tracking.

    Replay-path requests come from a bounded slab pool
    (:func:`acquire_request`): the trace driver releases each request once
    its fan-in has fired and the response is recorded, so steady-state
    replay allocates no per-request objects.
    """

    __slots__ = (
        "kind",
        "offset",
        "nbytes",
        "arrival_time",
        "finish_time",
        "on_complete",
        "_outstanding",
        "_sealed",
        "_pooled",
    )

    def __init__(
        self,
        kind: RequestKind,
        offset: int,
        nbytes: int,
        arrival_time: float,
        on_complete: Optional[Callable[["IORequest"], None]] = None,
    ) -> None:
        if offset < 0 or nbytes <= 0:
            raise ValueError("invalid request extent")
        self.kind = kind
        self.offset = offset
        self.nbytes = nbytes
        self.arrival_time = arrival_time
        self.finish_time: float = -1.0
        self.on_complete = on_complete
        self._outstanding = 0
        self._sealed = False
        self._pooled = False

    @property
    def is_write(self) -> bool:
        return self.kind is RequestKind.WRITE

    @property
    def response_time(self) -> float:
        """Seconds from arrival to last sub-operation completion."""
        if self.finish_time < 0:
            raise ValueError("request not yet complete")
        return self.finish_time - self.arrival_time

    @property
    def complete(self) -> bool:
        return self.finish_time >= 0

    def add_waits(self, count: int = 1) -> None:
        """Register ``count`` more sub-operations to wait for."""
        if self._sealed and self._outstanding == 0:
            raise ValueError("request already completed")
        if count <= 0:
            raise ValueError("count must be positive")
        self._outstanding += count

    def seal(self, now: float) -> None:
        """Declare that no more sub-operations will be added.

        If nothing is outstanding the request completes immediately (e.g. a
        read fully served from cache).
        """
        self._sealed = True
        if self._outstanding == 0:
            self._finish(now)

    def op_done(self, now: float) -> None:
        """Record one sub-operation completion."""
        if self._outstanding <= 0:
            raise ValueError("op_done without matching add_waits")
        self._outstanding -= 1
        if self._outstanding == 0 and self._sealed:
            self._finish(now)

    def op_complete(self, op) -> None:
        """Fan-in adapter usable directly as a ``DiskOp.on_complete``.

        ``op.finish_time`` is the simulator's current time when the disk
        fires the completion, so this is equivalent to ``op_done(sim.now)``
        without allocating a per-operation closure.
        """
        self.op_done(op.finish_time)

    def _finish(self, now: float) -> None:
        self.finish_time = now
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<IORequest {self.kind.value} off={self.offset} "
            f"bytes={self.nbytes} t={self.arrival_time:.4f}>"
        )


#: Bounded slab pool of recycled :class:`IORequest` objects (LIFO).
_REQUEST_POOL: list = []
_REQUEST_POOL_MAX = 1024
#: Census: [reused, released].
_REQUEST_POOL_STATS = [0, 0]


def acquire_request(
    kind: RequestKind,
    offset: int,
    nbytes: int,
    arrival_time: float,
    on_complete: Optional[Callable[[IORequest], None]] = None,
) -> IORequest:
    """Check an :class:`IORequest` out of the slab pool (or allocate one).

    The returned request is marked pooled; the owner must hand it back via
    :func:`release_request` once the fan-in completed and the response has
    been recorded, and nothing may retain it past that point.
    """
    pool = _REQUEST_POOL
    if pool:
        request = pool.pop()
        if offset < 0 or nbytes <= 0:
            raise ValueError("invalid request extent")
        request.kind = kind
        request.offset = offset
        request.nbytes = nbytes
        request.arrival_time = arrival_time
        request.finish_time = -1.0
        request.on_complete = on_complete
        request._outstanding = 0
        request._sealed = False
        request._pooled = True
        _REQUEST_POOL_STATS[0] += 1
        return request
    request = IORequest(
        kind, offset, nbytes, arrival_time, on_complete=on_complete
    )
    request._pooled = True
    return request


def release_request(request: IORequest) -> None:
    """Return a pooled request to the free list (no-op for unpooled)."""
    if not request._pooled:
        return
    request.on_complete = None
    request._pooled = False
    pool = _REQUEST_POOL
    if len(pool) < _REQUEST_POOL_MAX:
        pool.append(request)
        _REQUEST_POOL_STATS[1] += 1


def request_pool_stats() -> dict:
    """Census of the IORequest slab pool."""
    return {
        "size": len(_REQUEST_POOL),
        "max": _REQUEST_POOL_MAX,
        "reused": _REQUEST_POOL_STATS[0],
        "released": _REQUEST_POOL_STATS[1],
    }
