"""RAID10 address mapping.

The array stripes its logical address space across ``n_pairs`` mirrored
pairs with a fixed stripe unit.  Every logical extent maps to a list of
:class:`StripeSegment` — (pair index, byte offset within the pair's data
region, length) — and each segment is written identically to both disks of
the pair (mirroring happens in the controller, not here).
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple


class StripeSegment:
    """A contiguous piece of a logical request on one mirrored pair.

    A plain ``__slots__`` value class rather than a frozen dataclass:
    ``map_extent`` constructs one per stripe-unit crossing on every request,
    and the frozen dataclass's ``object.__setattr__`` construction path was
    measurable in replay profiles.
    """

    __slots__ = ("pair", "disk_offset", "nbytes")

    def __init__(self, pair: int, disk_offset: int, nbytes: int) -> None:
        if pair < 0 or disk_offset < 0 or nbytes <= 0:
            raise ValueError(
                f"invalid segment (pair={pair}, disk_offset={disk_offset}, "
                f"nbytes={nbytes})"
            )
        self.pair = pair
        self.disk_offset = disk_offset
        self.nbytes = nbytes

    @property
    def end_offset(self) -> int:
        return self.disk_offset + self.nbytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StripeSegment):
            return NotImplemented
        return (
            self.pair == other.pair
            and self.disk_offset == other.disk_offset
            and self.nbytes == other.nbytes
        )

    def __hash__(self) -> int:
        return hash((self.pair, self.disk_offset, self.nbytes))

    def __repr__(self) -> str:
        return (
            f"StripeSegment(pair={self.pair}, "
            f"disk_offset={self.disk_offset}, nbytes={self.nbytes})"
        )


class Raid10Layout:
    """Striping math for a RAID10 array.

    ``data_capacity`` is the per-disk data-region size in bytes; the array's
    logical capacity is ``n_pairs * data_capacity``.
    """

    def __init__(
        self,
        n_pairs: int,
        stripe_unit: int,
        data_capacity: int,
        spread: bool = False,
    ) -> None:
        if n_pairs <= 0:
            raise ValueError("need at least one mirrored pair")
        if stripe_unit <= 0:
            raise ValueError("stripe unit must be positive")
        if data_capacity <= 0 or data_capacity % stripe_unit:
            raise ValueError(
                "per-disk data capacity must be a positive multiple of the "
                "stripe unit"
            )
        self.n_pairs = n_pairs
        self.stripe_unit = stripe_unit
        self.data_capacity = data_capacity
        self.spread = spread
        self._rows = data_capacity // stripe_unit
        # Row permutation: physical_row = row * multiplier mod rows.  A
        # multiplier near rows/phi coprime with rows scatters any compact
        # logical footprint across the whole data region, so in-place I/O
        # pays realistic seek distances even on scaled-down traces.
        multiplier = max(1, int(self._rows / 1.618))
        while math.gcd(multiplier, self._rows) != 1:
            multiplier += 1
        self._multiplier = multiplier
        self._inverse = pow(multiplier, -1, self._rows) if spread else 1

    @property
    def logical_capacity(self) -> int:
        return self.n_pairs * self.data_capacity

    def map_extent(self, offset: int, nbytes: int) -> List[StripeSegment]:
        """Split logical extent ``[offset, offset+nbytes)`` into segments.

        Segments are returned in logical-address order.  Extents must lie
        inside the logical address space.
        """
        if offset < 0 or nbytes <= 0:
            raise ValueError("extent must be positive and non-negative offset")
        if offset + nbytes > self.logical_capacity:
            raise ValueError(
                f"extent [{offset}, {offset + nbytes}) exceeds logical "
                f"capacity {self.logical_capacity}"
            )
        segments: List[StripeSegment] = []
        unit = self.stripe_unit
        n_pairs = self.n_pairs
        spread = self.spread
        multiplier = self._multiplier
        rows = self._rows
        cursor = offset
        remaining = nbytes
        while remaining > 0:
            stripe_number = cursor // unit
            within = cursor - stripe_number * unit
            take = unit - within
            if remaining < take:
                take = remaining
            # _physical_row inlined: this loop body runs once per segment
            # of every mapped request and dominates layout cost.
            row = stripe_number // n_pairs
            if spread:
                row = (row * multiplier) % rows
            segments.append(
                StripeSegment(stripe_number % n_pairs, row * unit + within, take)
            )
            cursor += take
            remaining -= take
        return segments

    def _physical_row(self, row: int) -> int:
        if not self.spread:
            return row
        return (row * self._multiplier) % self._rows

    def to_logical(self, pair: int, disk_offset: int) -> int:
        """Inverse mapping for a physical disk offset."""
        if not 0 <= pair < self.n_pairs:
            raise ValueError(f"pair {pair} out of range")
        if not 0 <= disk_offset < self.data_capacity:
            raise ValueError(f"disk offset {disk_offset} out of range")
        unit = self.stripe_unit
        physical_row, within = divmod(disk_offset, unit)
        if self.spread:
            row = (physical_row * self._inverse) % self._rows
        else:
            row = physical_row
        stripe_number = row * self.n_pairs + pair
        return stripe_number * unit + within

    def units(self, offset: int, nbytes: int) -> Iterator[Tuple[int, int]]:
        """Yield (pair, unit-aligned disk offset) for every stripe unit the
        extent touches.  This is the granularity of dirty-block tracking."""
        for seg in self.map_extent(offset, nbytes):
            unit = self.stripe_unit
            first = (seg.disk_offset // unit) * unit
            last = ((seg.end_offset - 1) // unit) * unit
            for base in range(first, last + 1, unit):
                yield seg.pair, base
