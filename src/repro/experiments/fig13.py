"""Figure 13: energy saved over GRAID as a function of free storage space.

The paper varies the per-disk free (logging) space of RoLo between 8, 6 and
4 GB while GRAID keeps its 16 GB dedicated log disk; savings shrink
slightly with less free space because the logger must rotate (and spin
disks) more often.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.registry import register
from repro.experiments.report import Report, Series, Table
from repro.experiments.runner import (
    simulate_workload,
    workload_cell,
    workload_scale,
)

GB = 1024**3

ROLO_SCHEMES = ("rolo-p", "rolo-r", "rolo-e")
WORKLOADS = ("src2_2", "proj_0")
FREE_SPACE_GB = (8, 6, 4)


def cells(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    free_space_gb: Iterable[float] = FREE_SPACE_GB,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
):
    out = []
    for workload in workloads:
        effective = workload_scale(workload, scale)
        out.append(
            workload_cell(
                "graid", workload, scale=scale, n_pairs=n_pairs, seed=seed
            )
        )
        for gb in free_space_gb:
            free_bytes = int(gb * GB * effective)
            out.extend(
                workload_cell(
                    scheme,
                    workload,
                    scale=scale,
                    n_pairs=n_pairs,
                    seed=seed,
                    free_space_bytes=free_bytes,
                )
                for scheme in ROLO_SCHEMES
            )
    return out


@register(
    "fig13",
    "Energy saved over GRAID vs per-disk free storage space",
    "Figure 13 (a-b)",
    cells=cells,
)
def run(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    free_space_gb: Iterable[float] = FREE_SPACE_GB,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
) -> Report:
    report = Report("fig13", "Free-space sensitivity")
    report.parameters = {"n_pairs": n_pairs}
    table = report.add_table(
        Table(
            "Fig 13: energy saved over GRAID",
            ["workload", "free_space_gb"] + list(ROLO_SCHEMES),
        )
    )
    rotation_table = report.add_table(
        Table(
            "rotations per run (the paper's explanation)",
            ["workload", "free_space_gb"] + list(ROLO_SCHEMES),
        )
    )
    for workload in workloads:
        effective = workload_scale(workload, scale)
        graid = simulate_workload(
            "graid", workload, scale=scale, n_pairs=n_pairs, seed=seed
        )
        for gb in free_space_gb:
            free_bytes = int(gb * GB * effective)
            savings = []
            rotations = []
            for scheme in ROLO_SCHEMES:
                metrics = simulate_workload(
                    scheme,
                    workload,
                    scale=scale,
                    n_pairs=n_pairs,
                    seed=seed,
                    free_space_bytes=free_bytes,
                )
                savings.append(
                    1 - metrics.total_energy_j / graid.total_energy_j
                )
                rotations.append(metrics.rotations)
            table.add_row(workload, gb, *savings)
            rotation_table.add_row(workload, gb, *rotations)
            for scheme, saving in zip(ROLO_SCHEMES, savings):
                name = f"saving-over-graid-{workload}-{scheme}"
                series = report.get_series(name)
                if series is None:
                    series = report.add_series(
                        Series(name, "free space (GB)", "fraction saved")
                    )
                series.add(gb, saving)
    return report
