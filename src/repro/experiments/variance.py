"""Extension experiment: seed sensitivity of the headline comparison.

The paper reports single-trace numbers; our replicas are synthetic, so it
is fair to ask how much the Fig. 10 conclusions depend on the generator
seed.  This experiment reruns the main comparison over several seeds and
reports mean ± stdev of the normalized energy and response time — the
conclusions should hold for every seed, not on average.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.registry import register
from repro.experiments.report import Report, Table
from repro.experiments.runner import (
    run_scheme_set_seeds,
    summarize_seeds,
    workload_cell,
)

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")


def cells(
    scale: Optional[float] = 0.02,
    n_pairs: int = 10,
    workloads: Iterable[str] = ("src2_2",),
    seeds: Iterable[int] = (42, 43, 44),
    **_: object,
):
    return [
        workload_cell(s, w, scale=scale, n_pairs=n_pairs, seed=seed)
        for w in workloads
        for seed in seeds
        for s in SCHEMES
    ]


@register(
    "ext-variance",
    "Seed sensitivity of the main comparison (extension)",
    "robustness of Fig. 10",
    cells=cells,
)
def run(
    scale: Optional[float] = 0.02,
    n_pairs: int = 10,
    workloads: Iterable[str] = ("src2_2",),
    seeds: Iterable[int] = (42, 43, 44),
    **_: object,
) -> Report:
    report = Report("ext-variance", "Seed sensitivity study")
    seeds = list(seeds)
    report.parameters = {"n_pairs": n_pairs, "seeds": len(seeds)}
    table = report.add_table(
        Table(
            "headline metrics over seeds (mean +/- stdev)",
            [
                "workload",
                "scheme",
                "rt_ms_mean",
                "rt_ms_std",
                "energy_kj_mean",
                "energy_kj_std",
                "saved_vs_raid10_min",
                "saved_vs_raid10_max",
            ],
        )
    )
    for workload in workloads:
        per_scheme = run_scheme_set_seeds(
            workload, SCHEMES, seeds, scale=scale, n_pairs=n_pairs
        )
        base_energy = [m.total_energy_j for m in per_scheme["raid10"]]
        for scheme in SCHEMES:
            summary = summarize_seeds(per_scheme[scheme])
            savings = [
                1 - m.total_energy_j / base
                for m, base in zip(per_scheme[scheme], base_energy)
            ]
            table.add_row(
                workload,
                scheme,
                summary["response_time_ms"][0],
                summary["response_time_ms"][1],
                summary["energy_kj"][0],
                summary["energy_kj"][1],
                min(savings),
                max(savings),
            )
    return report
