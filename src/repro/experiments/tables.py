"""Tables I, IV and V — projections of the main comparison runs.

These reuse the memoized Fig. 10 runs, so running them after ``fig10`` is
free.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.registry import register
from repro.experiments.report import Report, Table
from repro.experiments.runner import (
    run_scheme_set,
    simulate_workload,
    workload_cell,
    workload_scale,
)
from repro.traces import build_workload_trace
from repro.traces.analysis import burstiness_index, classify_burstiness

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")
WORKLOADS = ("src2_2", "proj_0")


def _comparison_cells(
    scale: Optional[float],
    n_pairs: int,
    workloads: Iterable[str],
    seed: int,
    schemes: Iterable[str] = SCHEMES,
):
    return [
        workload_cell(s, w, scale=scale, n_pairs=n_pairs, seed=seed)
        for w in workloads
        for s in schemes
    ]


def cells_table1(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
):
    return _comparison_cells(scale, n_pairs, workloads, seed)


def cells_table4(
    scale: Optional[float] = None, n_pairs: int = 20, seed: int = 42
):
    return _comparison_cells(scale, n_pairs, WORKLOADS, seed)


def cells_table5(
    scale: Optional[float] = None, n_pairs: int = 20, seed: int = 42
):
    return _comparison_cells(
        scale, n_pairs, WORKLOADS, seed, schemes=("rolo-e", "raid10")
    )


@register(
    "table1",
    "Number of disk spin up/down transitions per scheme",
    "Table I",
    cells=cells_table1,
)
def run_table1(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
) -> Report:
    report = Report("table1", "Disk spin up/down counts")
    report.parameters = {"n_pairs": n_pairs}
    table = report.add_table(
        Table(
            "Table I: spin up+down transitions",
            ["workload"] + list(SCHEMES),
            note=(
                "paper counts full start/stop cycles; this counts every "
                "up and down transition (2x a cycle)"
            ),
        )
    )
    for workload in workloads:
        results = run_scheme_set(
            workload, SCHEMES, scale=scale, n_pairs=n_pairs, seed=seed
        )
        table.add_row(
            workload, *(results[s].spin_cycle_count for s in SCHEMES)
        )
    return report


@register(
    "table4",
    "Energy/performance/reliability comparison of all schemes",
    "Table IV",
    cells=cells_table4,
)
def run_table4(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    seed: int = 42,
) -> Report:
    report = Report("table4", "Scheme comparison summary")
    report.parameters = {"n_pairs": n_pairs}
    table = report.add_table(
        Table(
            "Table IV: RoLo vs baselines",
            [
                "scheme",
                "workload",
                "energy_saved_vs_raid10",
                "energy_saved_vs_graid",
                "perf_gained_vs_raid10",
                "perf_gained_vs_graid",
            ],
            note="perf gained = 1 - rt/rt_baseline (negative = slower)",
        )
    )
    for workload in WORKLOADS:
        results = run_scheme_set(
            workload, SCHEMES, scale=scale, n_pairs=n_pairs, seed=seed
        )
        raid10 = results["raid10"]
        graid = results["graid"]
        for scheme in ("rolo-p", "rolo-r", "rolo-e"):
            m = results[scheme]
            table.add_row(
                scheme,
                workload,
                1 - m.total_energy_j / raid10.total_energy_j,
                1 - m.total_energy_j / graid.total_energy_j,
                1 - m.response_time.mean / raid10.response_time.mean,
                1 - m.response_time.mean / graid.response_time.mean,
            )
    return report


@register(
    "table5",
    "RoLo-E read characteristics under src2_2 and proj_0",
    "Table V",
    cells=cells_table5,
)
def run_table5(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    seed: int = 42,
) -> Report:
    report = Report("table5", "RoLo-E polarization analysis")
    report.parameters = {"n_pairs": n_pairs}
    table = report.add_table(
        Table(
            "Table V: RoLo-E under the two main traces",
            [
                "workload",
                "read_ratio",
                "read_hit_rate",
                "burstiness",
                "dispersion_index",
                "perf_gained_vs_raid10",
            ],
            note="burstiness classified from the measured index of "
            "dispersion of 1s arrival counts",
        )
    )
    for workload in WORKLOADS:
        rolo_e = simulate_workload(
            "rolo-e", workload, scale=scale, n_pairs=n_pairs, seed=seed
        )
        raid10 = simulate_workload(
            "raid10", workload, scale=scale, n_pairs=n_pairs, seed=seed
        )
        trace = build_workload_trace(
            workload, scale=workload_scale(workload, scale), seed=seed
        )
        index = burstiness_index(trace)
        table.add_row(
            workload,
            rolo_e.reads / rolo_e.requests if rolo_e.requests else 0.0,
            rolo_e.read_hit_rate,
            classify_burstiness(index),
            index,
            1 - rolo_e.response_time.mean / raid10.response_time.mean,
        )
    return report
