"""Persistent, content-addressed result cache for simulation cells.

Every experiment cell — one (scheme, trace, array-config) simulation — is
identified by a stable content hash of its full parameter tuple.  Completed
:class:`~repro.core.metrics.RunMetrics` are written as one JSON file per
cell under a cache directory (default ``.rolo-cache/``), so re-running an
experiment across interpreter invocations never recomputes a cell, and
figure/table experiments that share runs (Fig. 10 + Tables I/IV/V) read the
same entries.

Cache entries are stamped with :data:`CACHE_SCHEMA_VERSION` and the package
version; entries written by a different schema or package version are
ignored (treated as misses) so code changes can never resurrect stale
results.

The same canonicalization (:func:`freeze`) backs the in-memory memo keys in
:mod:`repro.experiments.runner`, so memory and disk agree on what "the same
run" means.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from typing import Any, Dict, Iterator, Optional, Tuple

from repro import __version__
from repro.core.metrics import RunMetrics
from repro.traces.compiled import TRACE_COMPILER_VERSION

#: Bump whenever the meaning of a cached entry changes: metric serialization
#: layout, simulation semantics, or the canonical key format.
CACHE_SCHEMA_VERSION = 1

#: Default on-disk location, overridable per :class:`ResultCache`.
DEFAULT_CACHE_DIR = ".rolo-cache"


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
def freeze(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical, hashable, order-stable structure.

    Handles the parameter vocabulary of the experiment suite: primitives,
    sequences, mappings, enums, and (possibly nested) dataclasses such as
    :class:`~repro.core.config.ArrayConfig`,
    :class:`~repro.disk.models.DiskSpec` and
    :class:`~repro.traces.synthetic.SyntheticTraceConfig`.  Dataclasses are
    keyed on their qualified class name plus a canonical field tuple, so
    two configs with equal fields freeze identically regardless of object
    identity or ``__repr__`` formatting.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__name__, obj.name)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (f.name, freeze(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
        return ("dataclass", type(obj).__name__, fields)
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(sorted((str(k), freeze(v)) for k, v in obj.items())),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(freeze(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(freeze(v)) for v in obj)))
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def _jsonable(frozen: Any) -> Any:
    """Frozen structure -> a JSON-encodable equivalent (tuples -> lists)."""
    if isinstance(frozen, tuple):
        return [_jsonable(v) for v in frozen]
    return frozen


def cell_hash(key: Any) -> str:
    """Stable content hash of a (frozen or freezable) cell key.

    The trace-compiler version is folded into every hash: a compiled-trace
    rollout that changes lowering semantics makes all previous hashes
    unreachable, so stale payloads can never be mixed with fresh ones.
    """
    frozen = freeze(key)
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "trace_compiler": TRACE_COMPILER_VERSION,
            "key": _jsonable(frozen),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------
class ResultCache:
    """One directory of content-addressed ``RunMetrics`` entries."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = str(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, key_hash: str) -> str:
        return os.path.join(self.directory, f"{key_hash}.json")

    def get(self, key: Any) -> Optional[RunMetrics]:
        """Cached metrics for ``key``, or ``None`` on miss/stale entry."""
        path = self._path(cell_hash(key))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or entry.get("package_version") != __version__
        ):
            self.misses += 1
            return None
        try:
            metrics = RunMetrics.from_dict(entry["metrics"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def put(self, key: Any, metrics: RunMetrics) -> str:
        """Persist ``metrics`` under ``key``; returns the entry path.

        The write goes through a temp file + rename so a crashed or
        concurrent writer can never leave a torn entry (renames within a
        directory are atomic on POSIX, and concurrent writers of the same
        cell write identical bytes anyway).
        """
        key_hash = cell_hash(key)
        path = self._path(key_hash)
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "package_version": __version__,
            "key_hash": key_hash,
            "metrics": metrics.to_dict(),
        }
        os.makedirs(self.directory, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, separators=(",", ":"))
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Generic JSON payloads (fault campaigns and other non-RunMetrics
    # results).  Same content-addressing and versioning rules; stored
    # under a "payload" field so the RunMetrics entries stay distinct.
    # ------------------------------------------------------------------
    def get_payload(self, key: Any) -> Optional[Dict[str, Any]]:
        """Cached raw payload for ``key``, or ``None`` on miss/stale."""
        path = self._path(cell_hash(key))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or entry.get("package_version") != __version__
            or not isinstance(entry.get("payload"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put_payload(self, key: Any, payload: Dict[str, Any]) -> str:
        """Persist a JSON-encodable payload dict under ``key``."""
        key_hash = cell_hash(key)
        path = self._path(key_hash)
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "package_version": __version__,
            "key_hash": key_hash,
            "payload": payload,
        }
        os.makedirs(self.directory, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, separators=(",", ":"))
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    def _entries(self) -> Iterator[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in sorted(names):
            if name.endswith(".json"):
                yield os.path.join(self.directory, name)

    def info(self) -> Dict[str, Any]:
        """Entry count / byte size / version census of the cache dir."""
        entries = 0
        total_bytes = 0
        stale = 0
        for path in self._entries():
            entries += 1
            try:
                total_bytes += os.path.getsize(path)
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                stale += 1
                continue
            if (
                entry.get("schema_version") != CACHE_SCHEMA_VERSION
                or entry.get("package_version") != __version__
            ):
                stale += 1
        return {
            "directory": os.path.abspath(self.directory),
            "entries": entries,
            "stale_entries": stale,
            "total_bytes": total_bytes,
            "schema_version": CACHE_SCHEMA_VERSION,
            "package_version": __version__,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed


# ----------------------------------------------------------------------
# Module-level default cache (configured by the CLI / tests)
# ----------------------------------------------------------------------
_active_cache: Optional[ResultCache] = None


def configure(
    directory: Optional[str] = None, enabled: bool = True
) -> Optional[ResultCache]:
    """Install (or disable) the process-wide persistent cache.

    The disk cache is opt-in: library users get the in-memory memo only,
    while the CLI enables persistence by default (``rolo run --no-cache``
    turns it off).  Returns the active cache, or ``None`` when disabled.
    """
    global _active_cache
    if not enabled:
        _active_cache = None
    else:
        _active_cache = ResultCache(directory or DEFAULT_CACHE_DIR)
    return _active_cache


def active_cache() -> Optional[ResultCache]:
    """The configured persistent cache, or ``None`` when disabled."""
    return _active_cache
