"""Figure 3: idle-time abundance under the centralized architecture.

For the same §II GRAID setup, measures the fraction of disk-time spent
IDLE versus ACTIVE/STANDBY, separately for the primary disks and the log
disk, across I/O intensities.  The paper's point: even the busy log disk is
idle most of the time under light-to-moderate load — free time slots RoLo
harvests for decentralized destaging.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import ArrayConfig
from repro.disk.power import PowerState
from repro.experiments.fig2 import _workload
from repro.experiments.registry import register
from repro.experiments.report import Report, Series, Table
from repro.experiments.runner import simulate_synthetic, synthetic_cell

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

IOPS_LEVELS = (10, 50, 100, 200)


def _array_config(scale: float) -> ArrayConfig:
    capacity = max(int(16 * GB * scale), 64 * MB // 8)
    return ArrayConfig(
        n_pairs=10,
        graid_log_capacity_bytes=capacity,
        free_space_bytes=max(capacity // 2, 32 * MB // 8),
    )


def cells(
    scale: float = 0.02,
    iops_levels: Iterable[float] = IOPS_LEVELS,
    duration_s: float = 1200.0,
    seed: int = 42,
):
    config = _array_config(scale)
    footprint = max(64 * MB, config.graid_log_capacity_bytes * 2)
    return [
        synthetic_cell(
            "graid", _workload(iops, duration_s, footprint, seed), config
        )
        for iops in iops_levels
    ]


@register(
    "fig3",
    "IDLE vs ACTIVE/STANDBY time fractions under different I/O intensities",
    "Figure 3 (a-b)",
    cells=cells,
)
def run(
    scale: float = 0.02,
    iops_levels: Iterable[float] = IOPS_LEVELS,
    duration_s: float = 1200.0,
    seed: int = 42,
) -> Report:
    report = Report("fig3", "Idle time-slot availability (GRAID)")
    report.parameters = {"scale": scale, "duration_s": duration_s}
    table = report.add_table(
        Table(
            "Fig 3: duty fractions",
            [
                "iops",
                "primary_idle",
                "primary_active_standby",
                "log_idle",
                "log_active_standby",
            ],
        )
    )
    primary_series = report.add_series(
        Series("primary-idle-fraction", "iops", "fraction")
    )
    log_series = report.add_series(
        Series("log-idle-fraction", "iops", "fraction")
    )
    config = _array_config(scale)
    footprint = max(64 * MB, config.graid_log_capacity_bytes * 2)
    for iops in iops_levels:
        workload = _workload(iops, duration_s, footprint, seed)
        metrics = simulate_synthetic("graid", workload, config)
        rows = {}
        for role in ("primary", "log"):
            states = metrics.state_time_by_role[role]
            total = sum(states.values())
            idle = states[PowerState.IDLE] / total if total else 0.0
            active_standby = (
                (states[PowerState.ACTIVE] + states[PowerState.STANDBY])
                / total
                if total
                else 0.0
            )
            rows[role] = (idle, active_standby)
        table.add_row(
            iops,
            rows["primary"][0],
            rows["primary"][1],
            rows["log"][0],
            rows["log"][1],
        )
        primary_series.add(iops, rows["primary"][0])
        log_series.add(iops, rows["log"][0])
    return report
