"""Plain-text report rendering for experiment results.

Experiments emit :class:`Table` (paper tables) and :class:`Series` (figure
panels) objects collected in a :class:`Report`.  Rendering is deliberately
dependency-free text so benchmark logs are self-contained.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclasses.dataclass
class Table:
    """A titled table with aligned plain-text rendering."""

    title: str
    headers: List[str]
    rows: List[Sequence[Any]] = dataclasses.field(default_factory=list)
    note: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, expected {len(self.headers)}"
            )
        self.rows.append(values)

    def column(self, header: str) -> List[Any]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.title} =="]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)


@dataclasses.dataclass
class Series:
    """One curve of a figure: (x, y) points with axis labels."""

    name: str
    x_label: str
    y_label: str
    points: List[Tuple[Any, float]] = dataclasses.field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def render(self) -> str:
        body = ", ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in self.points)
        return f"{self.name} [{self.x_label} -> {self.y_label}]: {body}"

    def render_bars(self, width: int = 40) -> str:
        """ASCII bar-chart rendering for terminal reports."""
        if width < 1:
            raise ValueError("width must be positive")
        if not self.points:
            return f"{self.name}: (no data)"
        peak = max(abs(y) for _, y in self.points) or 1.0
        label_width = max(len(_fmt(x)) for x, _ in self.points)
        lines = [f"{self.name} ({self.y_label})"]
        for x, y in self.points:
            bar = "#" * max(0, round(abs(y) / peak * width))
            lines.append(
                f"  {_fmt(x).rjust(label_width)} |{bar} {_fmt(y)}"
            )
        return "\n".join(lines)


@dataclasses.dataclass
class Report:
    """All output of one experiment."""

    experiment_id: str
    title: str
    tables: List[Table] = dataclasses.field(default_factory=list)
    series: List[Series] = dataclasses.field(default_factory=list)
    parameters: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_series(self, series: Series) -> Series:
        self.series.append(series)
        return series

    def get_table(self, title: str) -> Optional[Table]:
        for table in self.tables:
            if table.title == title:
                return table
        return None

    def get_series(self, name: str) -> Optional[Series]:
        for series in self.series:
            if series.name == name:
                return series
        return None

    def to_text(self) -> str:
        lines = [f"### {self.experiment_id}: {self.title}"]
        if self.parameters:
            params = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(self.parameters.items())
            )
            lines.append(f"parameters: {params}")
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        if self.series:
            lines.append("")
            lines.append("-- series --")
            for series in self.series:
                lines.append(series.render())
        return "\n".join(lines)
