"""Extension experiment: online rebuild under foreground load.

The §III-C recovery experiment measures rebuild in isolation; this one
fails a disk *mid-replay* and lets the rebuild compete with the workload,
reporting rebuild time, foreground response-time degradation versus the
fault-free control run, and the consistency-oracle verdict.  The grid runs
through :mod:`repro.faults.campaign`, so cells cache persistently and can
fan out over a process pool (``--jobs``).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.registry import register
from repro.experiments.report import Report, Table
from repro.experiments.runner import simulate_workload, workload_scale

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")


@register(
    "ext-rebuild-load",
    "Online rebuild under load: MTTR and foreground impact (extension)",
    "§III-C / §III-D",
)
def run(
    scale: float = 0.02,
    n_pairs: int = 4,
    workload: str = "src2_2",
    fault_time: float = 30.0,
    disks: Iterable[str] = ("P0", "M0"),
    seed: int = 42,
    jobs: Optional[int] = 1,
) -> Report:
    # Imported lazily: repro.faults.campaign imports the experiments
    # package, so a module-level import here would be circular.
    from repro.faults.campaign import fault_cell, run_campaign
    from repro.faults.schedule import FaultSchedule

    report = Report("ext-rebuild-load", "Rebuild under foreground load")
    scale = workload_scale(workload, scale)
    report.parameters = {
        "n_pairs": n_pairs,
        "scale": scale,
        "workload": workload,
        "fault_time": fault_time,
    }
    table = report.add_table(
        Table(
            "online rebuild during replay",
            [
                "scheme",
                "failed_disk",
                "rebuild_time_s",
                "resp_ms_faulted",
                "resp_ms_clean",
                "slowdown_pct",
                "lost_blocks",
            ],
        )
    )
    cells = [
        fault_cell(
            scheme,
            workload,
            FaultSchedule.single_failure(disk, fault_time),
            scale=scale,
            n_pairs=n_pairs,
            seed=seed,
        )
        for scheme in SCHEMES
        for disk in disks
    ]
    results = run_campaign(cells, jobs=jobs or 1)
    for cell, result in zip(cells, results):
        clean = simulate_workload(
            cell.base.scheme,
            workload,
            scale=scale,
            n_pairs=n_pairs,
            seed=seed,
        )
        faulted_ms = result.metrics.mean_response_time_ms
        clean_ms = clean.mean_response_time_ms
        slowdown = (
            100.0 * (faulted_ms - clean_ms) / clean_ms if clean_ms else 0.0
        )
        table.add_row(
            result.scheme,
            result.schedule.split(":", 1)[1],
            round(result.rebuilds[0]["rebuild_time"], 1)
            if result.rebuilds
            else None,
            round(faulted_ms, 3),
            round(clean_ms, 3),
            round(slowdown, 1),
            result.lost_blocks_total,
        )
    return report
