"""Extension experiment: idle-slot length analysis (§II).

The paper's motivation cites that "most idle time slots are much shorter
than the break-even time for modern disks to spin down to save power" —
exactly why RoLo harvests them for destaging instead of sleeping through
them.  This experiment measures the idle-gap distribution of the primary
disks and the log disk in a GRAID array and reports the fraction of slots
below the drive's break-even time.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import ArrayConfig, build_controller
from repro.core.base import run_trace as run_trace_base
from repro.experiments.fig2 import _workload
from repro.experiments.registry import register
from repro.experiments.report import Report, Table
from repro.sim import Simulator
from repro.traces.synthetic import generate_trace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@register(
    "ext-idleslots",
    "Idle-slot lengths vs the spin-down break-even time (extension)",
    "§II motivation",
)
def run(
    scale: float = 0.02,
    iops_levels: Iterable[float] = (10, 50, 100, 200),
    duration_s: float = 900.0,
    seed: int = 42,
) -> Report:
    report = Report("ext-idleslots", "Idle time-slot analysis (GRAID)")
    capacity = max(int(16 * GB * scale), 64 * MB // 8)
    config = ArrayConfig(
        n_pairs=10,
        graid_log_capacity_bytes=capacity,
        free_space_bytes=max(capacity // 2, 32 * MB // 8),
    )
    break_even = config.disk.break_even_time
    report.parameters = {
        "break_even_s": round(break_even, 2),
        "duration_s": duration_s,
    }
    table = report.add_table(
        Table(
            "idle slots shorter than the break-even time",
            [
                "iops",
                "role",
                "slots",
                "below_break_even",
                "median_gap_s",
                "p90_gap_s",
            ],
            note=(
                "slots counted while spun up; high below-break-even "
                "fractions mean sleeping through them would waste energy "
                "- RoLo destages through them instead"
            ),
        )
    )
    for iops in iops_levels:
        sim = Simulator()
        controller = build_controller("graid", sim, config)
        trace = generate_trace(
            _workload(iops, duration_s, capacity * 2, seed)
        )
        run_trace_base(controller, trace, drain=False)
        from repro.sim.stats import Histogram

        for role, disks in controller.disks_by_role().items():
            if role == "mirror":
                continue  # mirrors sleep; their gaps are not "slots"
            combined = Histogram.exponential(0.01, 2.0, 24)
            for disk in disks:
                hist = disk.idle_gap_histogram
                for i, count in enumerate(hist.counts):
                    combined.counts[i] += count
                combined.count += hist.count
            if combined.count == 0:
                continue
            short = sum(
                count
                for bound, count in combined.nonzero_buckets()
                if bound <= break_even
            )
            table.add_row(
                iops,
                role,
                combined.count,
                short / combined.count,
                combined.quantile(0.5),
                combined.quantile(0.9),
            )
    return report
