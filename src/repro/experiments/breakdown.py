"""Extension experiment: where each scheme's energy actually goes.

Decomposes the Fig. 10 runs into per-power-state energy (active / idle /
standby / spin transitions).  This makes the paper's mechanisms visible
directly: RAID10 burns everything in IDLE; GRAID/RoLo-P shift half the
mirror fleet's time to STANDBY; RoLo-E parks the primaries too; and the
cost of centralized designs shows up in the SPINNING columns.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.disk.power import PowerState
from repro.experiments.registry import register
from repro.experiments.report import Report, Table
from repro.experiments.runner import run_scheme_set, workload_cell

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")


def cells(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    workloads: Iterable[str] = ("src2_2", "proj_0"),
    seed: int = 42,
):
    return [
        workload_cell(s, w, scale=scale, n_pairs=n_pairs, seed=seed)
        for w in workloads
        for s in SCHEMES
    ]


@register(
    "ext-breakdown",
    "Per-power-state energy decomposition (extension)",
    "explains Fig. 10(a)",
    cells=cells,
)
def run(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    workloads: Iterable[str] = ("src2_2", "proj_0"),
    seed: int = 42,
) -> Report:
    report = Report("ext-breakdown", "Energy decomposition by power state")
    report.parameters = {"n_pairs": n_pairs}
    table = report.add_table(
        Table(
            "energy share by power state",
            [
                "workload",
                "scheme",
                "active",
                "idle",
                "standby",
                "spin_transitions",
                "total_kJ",
            ],
            note="shares of total energy; spin = spinning up + down",
        )
    )
    for workload in workloads:
        results = run_scheme_set(
            workload, SCHEMES, scale=scale, n_pairs=n_pairs, seed=seed
        )
        for scheme in SCHEMES:
            metrics = results[scheme]
            total = metrics.total_energy_j or 1.0
            by_state = metrics.energy_by_state
            spin = (
                by_state.get(PowerState.SPINNING_UP, 0.0)
                + by_state.get(PowerState.SPINNING_DOWN, 0.0)
            )
            table.add_row(
                workload,
                scheme,
                by_state.get(PowerState.ACTIVE, 0.0) / total,
                by_state.get(PowerState.IDLE, 0.0) / total,
                by_state.get(PowerState.STANDBY, 0.0) / total,
                spin / total,
                metrics.total_energy_j / 1e3,
            )
    return report
