"""Figure 14: the five non-write-intensive traces (paper §V-C).

mds_0, hm_1, rsrch_2, wdev_0 and web_1 exercise RoLo where it was *not*
designed to win; the paper's claim is that its negative impact is
negligible for RoLo-P/R while RoLo-E's response time degrades by orders of
magnitude on read-heavy traces.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.registry import register
from repro.experiments.report import Report, Table
from repro.experiments.runner import run_scheme_set, workload_cell

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")
WORKLOADS = ("mds_0", "hm_1", "rsrch_2", "wdev_0", "web_1")


def cells(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
):
    return [
        workload_cell(s, w, scale=scale, n_pairs=n_pairs, seed=seed)
        for w in workloads
        for s in SCHEMES
    ]


@register(
    "fig14",
    "Energy and response time under non-write-intensive traces",
    "Figure 14 (a-b)",
    cells=cells,
)
def run(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
) -> Report:
    report = Report("fig14", "Non-write-intensive workloads")
    report.parameters = {"n_pairs": n_pairs}
    energy = report.add_table(
        Table(
            "Fig 14(a): energy (normalized to RAID10)",
            ["workload"] + list(SCHEMES),
        )
    )
    response = report.add_table(
        Table(
            "Fig 14(b): mean response time (normalized to RAID10)",
            ["workload"] + list(SCHEMES),
        )
    )
    for workload in workloads:
        results = run_scheme_set(
            workload, SCHEMES, scale=scale, n_pairs=n_pairs, seed=seed
        )
        base = results["raid10"]
        energy.add_row(
            workload,
            *(
                results[s].total_energy_j / base.total_energy_j
                for s in SCHEMES
            ),
        )
        response.add_row(
            workload,
            *(
                results[s].response_time.mean / base.response_time.mean
                for s in SCHEMES
            ),
        )
    return report
