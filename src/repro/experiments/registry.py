"""Experiment registry.

Each paper artifact (figure or table) registers a callable producing a
:class:`~repro.experiments.report.Report`.  Experiments accept ``scale``
(trace time-scaling, DESIGN.md §3) and arbitrary keyword overrides.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.experiments.report import Report

RunFn = Callable[..., Report]
#: Optional enumerator: same keyword signature as the run function, but
#: returns the list of :class:`~repro.experiments.runner.Cell` simulation
#: units the run would execute — the parallel runner's work list.
CellsFn = Callable[..., List]

_REGISTRY: Dict[str, "Experiment"] = {}


@dataclasses.dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    experiment_id: str
    title: str
    paper_ref: str
    run_fn: RunFn
    cells_fn: Optional[CellsFn] = None

    def run(self, **kwargs) -> Report:
        return self.run_fn(**kwargs)

    def cells(self, **kwargs) -> List:
        """Enumerate this experiment's simulation cells for ``kwargs``.

        Returns ``[]`` for analytical experiments (no enumerator) and for
        argument sets the enumerator does not understand — enumeration is
        a parallelization hint, never required for correctness.
        """
        if self.cells_fn is None:
            return []
        try:
            return list(self.cells_fn(**kwargs))
        except TypeError:
            return []


def register(
    experiment_id: str,
    title: str,
    paper_ref: str,
    cells: Optional[CellsFn] = None,
) -> Callable[[RunFn], RunFn]:
    """Decorator registering an experiment run function."""

    def decorator(fn: RunFn) -> RunFn:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id, title, paper_ref, fn, cells
        )
        return fn

    return decorator


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def list_experiments() -> List[Experiment]:
    return sorted(_REGISTRY.values(), key=lambda e: e.experiment_id)
