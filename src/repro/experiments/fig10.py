"""Figure 10: energy and response time of all five schemes, normalized to
RAID10, under src2_2 and proj_0 (the paper's headline comparison)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.registry import register
from repro.experiments.report import Report, Series, Table
from repro.experiments.runner import run_scheme_set, workload_cell

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")
WORKLOADS = ("proj_0", "src2_2")


def cells(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
):
    return [
        workload_cell(s, w, scale=scale, n_pairs=n_pairs, seed=seed)
        for w in workloads
        for s in SCHEMES
    ]


@register(
    "fig10",
    "Energy and mean response time normalized to RAID10",
    "Figure 10 (a-b), Table IV",
    cells=cells,
)
def run(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
) -> Report:
    report = Report("fig10", "Main five-scheme comparison")
    report.parameters = {"n_pairs": n_pairs, "scale": scale or "default"}
    energy = report.add_table(
        Table(
            "Fig 10(a): energy consumption (normalized to RAID10)",
            ["workload"] + list(SCHEMES),
        )
    )
    response = report.add_table(
        Table(
            "Fig 10(b): average response time (normalized to RAID10)",
            ["workload"] + list(SCHEMES),
        )
    )
    absolute = report.add_table(
        Table(
            "absolute values",
            ["workload", "scheme", "mean_rt_ms", "energy_kJ", "mean_power_W"],
        )
    )
    for workload in workloads:
        results = run_scheme_set(
            workload, SCHEMES, scale=scale, n_pairs=n_pairs, seed=seed
        )
        base = results["raid10"]
        energy.add_row(
            workload,
            *(
                results[s].total_energy_j / base.total_energy_j
                for s in SCHEMES
            ),
        )
        response.add_row(
            workload,
            *(
                results[s].response_time.mean / base.response_time.mean
                for s in SCHEMES
            ),
        )
        for scheme in SCHEMES:
            m = results[scheme]
            absolute.add_row(
                workload,
                scheme,
                m.mean_response_time_ms,
                m.total_energy_j / 1e3,
                m.mean_power_w,
            )
            report.add_series(
                Series(
                    f"energy-{workload}-{scheme}", "workload", "normalized"
                )
            ).add(workload, m.total_energy_j / base.total_energy_j)
    return report
