"""Shared simulation driver for the experiments, with result caching.

Several paper artifacts are different projections of the same runs
(Fig. 10, Tables I/IV/V all come from the main five-scheme comparison), so
completed runs are memoized on their full parameter tuple.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple

from repro.core import ArrayConfig, build_controller, run_trace
from repro.core.metrics import RunMetrics
from repro.sim import Simulator
from repro.traces import Trace, build_workload_trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

#: Default trace time-scales for the named workloads (chosen so main
#: experiments finish in seconds while preserving cycle counts; see
#: DESIGN.md §3).  High-IOPS traces can afford larger scales.
DEFAULT_SCALES: Dict[str, float] = {
    "src2_2": 0.10,
    "proj_0": 0.03,
    "mds_0": 0.02,
    "wdev_0": 0.02,
    "web_1": 0.05,
    "rsrch_2": 0.05,
    "hm_1": 0.05,
}

_CACHE: Dict[Tuple, RunMetrics] = {}


def clear_cache() -> None:
    _CACHE.clear()


def workload_scale(name: str, scale: Optional[float]) -> float:
    if scale is not None:
        return scale
    return DEFAULT_SCALES.get(name, 0.05)


def simulate_workload(
    scheme: str,
    workload: str,
    scale: Optional[float] = None,
    n_pairs: int = 20,
    config: Optional[ArrayConfig] = None,
    seed: int = 42,
    **config_overrides,
) -> RunMetrics:
    """Replay one named paper workload against one scheme (memoized)."""
    effective_scale = workload_scale(workload, scale)
    key = (
        scheme,
        workload,
        effective_scale,
        n_pairs,
        seed,
        config,
        tuple(sorted(config_overrides.items())),
    )
    if key in _CACHE:
        return _CACHE[key]
    if config is None:
        config = ArrayConfig(n_pairs=n_pairs).scaled(effective_scale)
    if config_overrides:
        config = dataclasses.replace(config, **config_overrides)
    trace = build_workload_trace(workload, scale=effective_scale, seed=seed)
    metrics = _run(scheme, trace, config)
    _CACHE[key] = metrics
    return metrics


def simulate_synthetic(
    scheme: str,
    trace_config: SyntheticTraceConfig,
    config: ArrayConfig,
) -> RunMetrics:
    """Replay a synthetic trace configuration (memoized)."""
    key = ("synthetic", scheme, trace_config.__repr__(), config)
    if key in _CACHE:
        return _CACHE[key]
    metrics = _run(scheme, generate_trace(trace_config), config)
    _CACHE[key] = metrics
    return metrics


def _run(scheme: str, trace: Trace, config: ArrayConfig) -> RunMetrics:
    sim = Simulator()
    controller = build_controller(scheme, sim, config)
    metrics = run_trace(controller, trace)
    controller.assert_consistent()
    return metrics


def run_scheme_set(
    workload: str,
    schemes: Iterable[str] = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e"),
    **kwargs,
) -> Dict[str, RunMetrics]:
    """The paper's main comparison: all schemes on one workload."""
    return {
        scheme: simulate_workload(scheme, workload, **kwargs)
        for scheme in schemes
    }


def run_scheme_set_seeds(
    workload: str,
    schemes: Iterable[str],
    seeds: Iterable[int],
    **kwargs,
) -> Dict[str, list]:
    """Run every scheme over several trace seeds (for mean ± stdev)."""
    out: Dict[str, list] = {scheme: [] for scheme in schemes}
    for seed in seeds:
        for scheme in schemes:
            out[scheme].append(
                simulate_workload(scheme, workload, seed=seed, **kwargs)
            )
    return out


def summarize_seeds(metrics_list) -> Dict[str, Tuple[float, float]]:
    """Mean and population stdev of the headline metrics over seeds."""
    import math

    def stats(values):
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, math.sqrt(var)

    return {
        "response_time_ms": stats(
            [m.mean_response_time_ms for m in metrics_list]
        ),
        "energy_kj": stats([m.total_energy_j / 1e3 for m in metrics_list]),
        "mean_power_w": stats([m.mean_power_w for m in metrics_list]),
        "spin_cycles": stats(
            [float(m.spin_cycle_count) for m in metrics_list]
        ),
    }
