"""Shared simulation driver for the experiments, with result caching.

Several paper artifacts are different projections of the same runs
(Fig. 10, Tables I/IV/V all come from the main five-scheme comparison), so
completed runs are memoized on their full parameter tuple.

The unit of work is a :class:`Cell`: one (scheme, trace, array-config)
simulation, identified by a canonical key (see
:func:`repro.experiments.cache.freeze`).  Cells are picklable, so the
parallel executor in :mod:`repro.experiments.parallel` can fan them out
over worker processes; results land in two layers:

* an in-process memo (``_CACHE``) — free within one interpreter, and
* an optional persistent :class:`~repro.experiments.cache.ResultCache`
  (enabled by the CLI by default) — free across invocations.

``simulate_workload`` / ``simulate_synthetic`` keep their original
signatures; every caller transparently benefits from both layers.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core import ArrayConfig, build_controller, run_trace
from repro.core.metrics import RunMetrics
from repro.experiments.cache import active_cache, freeze
from repro.sim import Simulator
from repro.traces import build_workload_trace
from repro.traces.compiled import AnyTrace
from repro.traces.synthetic import SyntheticTraceConfig, generate_compiled

#: Default trace time-scales for the named workloads (chosen so main
#: experiments finish in seconds while preserving cycle counts; see
#: DESIGN.md §3).  High-IOPS traces can afford larger scales.
DEFAULT_SCALES: Dict[str, float] = {
    "src2_2": 0.10,
    "proj_0": 0.03,
    "mds_0": 0.02,
    "wdev_0": 0.02,
    "web_1": 0.05,
    "rsrch_2": 0.05,
    "hm_1": 0.05,
}

_CACHE: Dict[Tuple, RunMetrics] = {}

#: In-process accounting of where results came from, reported by the CLI
#: (``computed`` counts actual simulations executed in this process).
_stats: Dict[str, int] = {"computed": 0, "memory_hits": 0, "disk_hits": 0}


def clear_cache() -> None:
    """Drop the in-memory memo (the persistent cache is untouched)."""
    _CACHE.clear()


def run_stats() -> Dict[str, int]:
    """Snapshot of the in-process computed/hit counters."""
    return dict(_stats)


def reset_run_stats() -> None:
    for key in _stats:
        _stats[key] = 0


def workload_scale(name: str, scale: Optional[float]) -> float:
    if scale is not None:
        return scale
    return DEFAULT_SCALES.get(name, 0.05)


# ----------------------------------------------------------------------
# Cells: picklable, canonically keyed units of simulation work
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, eq=False)
class Cell:
    """One simulation: a scheme replaying one trace on one array config.

    ``kind`` selects between a named paper workload (``"workload"``) and a
    synthetic trace configuration (``"synthetic"``).  ``scale`` is always
    the *effective* (resolved) time-scale.  Instances are picklable work
    units for :func:`repro.experiments.parallel.execute_cells`.
    """

    kind: str
    scheme: str
    workload: Optional[str] = None
    scale: Optional[float] = None
    n_pairs: int = 20
    seed: int = 42
    config: Optional[ArrayConfig] = None
    trace_config: Optional[SyntheticTraceConfig] = None
    config_overrides: Tuple[Tuple[str, Any], ...] = ()

    def key(self) -> Tuple:
        """Canonical memo/persistent-cache key for this cell."""
        if self.kind == "synthetic":
            return (
                "synthetic",
                self.scheme,
                freeze(self.trace_config),
                freeze(self.config),
            )
        return (
            "workload",
            self.scheme,
            self.workload,
            self.scale,
            self.n_pairs,
            self.seed,
            freeze(self.config),
            freeze(self.config_overrides),
        )

    def label(self) -> str:
        """Human-readable cell description (profile tables, progress)."""
        if self.kind == "synthetic":
            name = getattr(self.trace_config, "name", "synthetic")
            return f"{self.scheme} x {name}"
        return (
            f"{self.scheme} x {self.workload} "
            f"scale={self.scale} seed={self.seed}"
        )

    def trace_key(self) -> Tuple:
        """Identity of this cell's *trace alone* (scheme-independent).

        Cells that share a trace_key replay bit-identical traces, so the
        parallel executor builds the trace once, publishes it to shared
        memory, and fans the cells out with a
        :class:`~repro.traces.shm.TraceRef` each.
        """
        if self.kind == "synthetic":
            return ("synthetic", freeze(self.trace_config))
        return ("workload", self.workload, self.scale, self.seed)

    def build_trace(self) -> AnyTrace:
        """Generate this cell's trace in compiled (columnar) form."""
        if self.kind == "synthetic":
            assert self.trace_config is not None
            return generate_compiled(self.trace_config)
        return build_workload_trace(
            self.workload, scale=self.scale, seed=self.seed, compiled=True
        )

    def resolve_config(self) -> ArrayConfig:
        """This cell's fully-resolved array configuration."""
        if self.kind == "synthetic":
            assert self.config is not None
            return self.config
        config = self.config
        if config is None:
            config = ArrayConfig(n_pairs=self.n_pairs).scaled(self.scale)
        if self.config_overrides:
            config = dataclasses.replace(
                config, **dict(self.config_overrides)
            )
        return config

    def materialize(self) -> Tuple[AnyTrace, ArrayConfig]:
        """Build this cell's trace and resolved array configuration.

        Traces materialize in compiled (columnar) form: replay through the
        :class:`~repro.core.base.TraceDriver` fast path is byte-identical
        to the legacy object form (see tests/test_compiled_equivalence.py)
        and skips one boxed ``TraceRecord`` per request.
        """
        return self.build_trace(), self.resolve_config()

    def execute(self, trace: Optional[AnyTrace] = None) -> RunMetrics:
        """Run the simulation, bypassing every cache layer.

        ``trace`` lets the parallel executor substitute a shared-memory
        attachment for the freshly-generated trace; both carry identical
        records, so metrics are byte-identical either way.
        """
        if trace is None:
            trace = self.build_trace()
        return _run(self.scheme, trace, self.resolve_config())

    def execute_profiled(
        self, trace: Optional[AnyTrace] = None
    ) -> Tuple[RunMetrics, "CellProfile"]:
        """Run uncached, timing the cell (trace build + simulation).

        With a pre-built ``trace`` the timed window covers only the
        simulation — trace generation happened elsewhere (the parent, for
        shared-memory fan-out).
        """
        import time

        from repro.obs.profiler import CellProfile

        started = time.perf_counter()
        if trace is None:
            trace = self.build_trace()
        config = self.resolve_config()
        sim = Simulator()
        controller = build_controller(self.scheme, sim, config)
        metrics = run_trace(controller, trace)
        controller.assert_consistent()
        profile = CellProfile(
            label=self.label(),
            wall_s=time.perf_counter() - started,
            events=sim.events_processed,
            sim_time_s=sim.now,
        )
        return metrics, profile

    def execute_metered(
        self,
        trace: Optional[AnyTrace] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> Tuple[RunMetrics, "MetricsRegistry"]:
        """Run uncached with the metrics registry instrumented in.

        Returns ``(metrics, registry)``; the registry accumulates, so one
        instance can meter many cells (or merge with worker registries).
        Instrumentation observes only — ``metrics`` is byte-identical to
        :meth:`execute` (pinned in tests/test_metrics_registry.py).
        """
        from repro.obs.metrics import MetricsRegistry, instrument

        if registry is None:
            registry = MetricsRegistry()
        if trace is None:
            trace = self.build_trace()
        config = self.resolve_config()
        sim = Simulator()
        controller = build_controller(self.scheme, sim, config)
        with instrument(sim, controller, registry):
            metrics = run_trace(controller, trace)
        controller.assert_consistent()
        return metrics, registry


def workload_cell(
    scheme: str,
    workload: str,
    scale: Optional[float] = None,
    n_pairs: int = 20,
    config: Optional[ArrayConfig] = None,
    seed: int = 42,
    **config_overrides,
) -> Cell:
    """The cell ``simulate_workload`` would run for these arguments."""
    return Cell(
        kind="workload",
        scheme=scheme,
        workload=workload,
        scale=workload_scale(workload, scale),
        n_pairs=n_pairs,
        seed=seed,
        config=config,
        config_overrides=tuple(sorted(config_overrides.items())),
    )


def synthetic_cell(
    scheme: str, trace_config: SyntheticTraceConfig, config: ArrayConfig
) -> Cell:
    """The cell ``simulate_synthetic`` would run for these arguments."""
    return Cell(
        kind="synthetic",
        scheme=scheme,
        trace_config=trace_config,
        config=config,
    )


# ----------------------------------------------------------------------
# Cache plumbing
# ----------------------------------------------------------------------
def lookup_cached(key: Tuple) -> Optional[RunMetrics]:
    """Memory-then-disk lookup; promotes disk hits into the memo."""
    hit = _CACHE.get(key)
    if hit is not None:
        _stats["memory_hits"] += 1
        return hit
    disk = active_cache()
    if disk is not None:
        metrics = disk.get(key)
        if metrics is not None:
            _stats["disk_hits"] += 1
            _CACHE[key] = metrics
            return metrics
    return None


def install_result(key: Tuple, metrics: RunMetrics) -> None:
    """Write a completed result through both cache layers."""
    _CACHE[key] = metrics
    disk = active_cache()
    if disk is not None:
        disk.put(key, metrics)


def run_cell(cell: Cell) -> RunMetrics:
    """Cached execution of one cell (the core of ``simulate_*``)."""
    key = cell.key()
    cached = lookup_cached(key)
    if cached is not None:
        return cached
    metrics = cell.execute()
    _stats["computed"] += 1
    install_result(key, metrics)
    return metrics


# ----------------------------------------------------------------------
# Public simulation entry points (signatures unchanged from the seed)
# ----------------------------------------------------------------------
def simulate_workload(
    scheme: str,
    workload: str,
    scale: Optional[float] = None,
    n_pairs: int = 20,
    config: Optional[ArrayConfig] = None,
    seed: int = 42,
    **config_overrides,
) -> RunMetrics:
    """Replay one named paper workload against one scheme (memoized)."""
    return run_cell(
        workload_cell(
            scheme,
            workload,
            scale=scale,
            n_pairs=n_pairs,
            config=config,
            seed=seed,
            **config_overrides,
        )
    )


def simulate_synthetic(
    scheme: str,
    trace_config: SyntheticTraceConfig,
    config: ArrayConfig,
) -> RunMetrics:
    """Replay a synthetic trace configuration (memoized).

    The memo key is the canonical field tuple of ``trace_config`` (shared
    with the persistent cache's hashing), not its ``repr`` — two configs
    with equal fields always hit the same entry.
    """
    return run_cell(synthetic_cell(scheme, trace_config, config))


def _run(scheme: str, trace: Trace, config: ArrayConfig) -> RunMetrics:
    sim = Simulator()
    controller = build_controller(scheme, sim, config)
    metrics = run_trace(controller, trace)
    controller.assert_consistent()
    return metrics


# ----------------------------------------------------------------------
# Observed (traced / sampled / profiled) execution
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ObservedRun:
    """Result of :func:`run_cell_observed`: metrics plus the observability
    artifacts requested for the run."""

    metrics: RunMetrics
    tracer: Optional[Any] = None  # RecordingTracer when tracing was on
    sampler: Optional[Any] = None  # TimeSeriesSampler when sampling was on
    profile: Optional[Any] = None  # RunProfile when profiling was on


def run_cell_observed(
    cell: Cell,
    trace_events: bool = False,
    sample_interval: Optional[float] = None,
    profile: bool = False,
    spans: bool = False,
) -> ObservedRun:
    """Execute one cell with observability attached, bypassing all caches.

    Tracing, sampling and profiling all observe without mutating, so the
    returned metrics are byte-identical to ``cell.execute()``'s (the cache
    layers are bypassed anyway to guarantee the artifacts describe *this*
    run, not a memoized one).  ``spans=True`` upgrades the tracer to a
    :class:`~repro.obs.spans.SpanRecorder` (implies ``trace_events``): the
    event stream then carries per-op phase spans suitable for
    :func:`~repro.obs.attribution.attribute_events`.
    """
    from repro.obs.profiler import SimulatorProbe
    from repro.obs.sampler import TimeSeriesSampler
    from repro.obs.spans import SpanRecorder
    from repro.obs.tracer import RecordingTracer

    if spans:
        tracer = SpanRecorder()
    else:
        tracer = RecordingTracer() if trace_events else None
    trace, config = cell.materialize()
    sim = Simulator()
    controller = build_controller(cell.scheme, sim, config, tracer=tracer)
    sampler = None
    if sample_interval is not None:
        sampler = TimeSeriesSampler(sim, controller, sample_interval)
        sampler.start()
    if profile:
        with SimulatorProbe(sim, count_labels=True) as probe:
            metrics = run_trace(controller, trace)
        run_profile = probe.profile
    else:
        metrics = run_trace(controller, trace)
        run_profile = None
    controller.assert_consistent()
    return ObservedRun(
        metrics=metrics,
        tracer=tracer,
        sampler=sampler,
        profile=run_profile,
    )


def run_scheme_set(
    workload: str,
    schemes: Iterable[str] = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e"),
    jobs: int = 1,
    **kwargs,
) -> Dict[str, RunMetrics]:
    """The paper's main comparison: all schemes on one workload.

    ``jobs > 1`` pre-computes the uncached cells on a process pool; the
    assembly below then reads them back from the cache, so results are
    identical to the serial path.
    """
    schemes = tuple(schemes)
    if jobs != 1:
        from repro.experiments.parallel import execute_cells

        execute_cells(
            [workload_cell(s, workload, **kwargs) for s in schemes],
            jobs=jobs,
        )
    return {
        scheme: simulate_workload(scheme, workload, **kwargs)
        for scheme in schemes
    }


def run_scheme_set_seeds(
    workload: str,
    schemes: Iterable[str],
    seeds: Iterable[int],
    jobs: int = 1,
    **kwargs,
) -> Dict[str, list]:
    """Run every scheme over several trace seeds (for mean ± stdev)."""
    schemes = tuple(schemes)
    seeds = tuple(seeds)
    if jobs != 1:
        from repro.experiments.parallel import execute_cells

        execute_cells(
            [
                workload_cell(scheme, workload, seed=seed, **kwargs)
                for seed in seeds
                for scheme in schemes
            ],
            jobs=jobs,
        )
    out: Dict[str, list] = {scheme: [] for scheme in schemes}
    for seed in seeds:
        for scheme in schemes:
            out[scheme].append(
                simulate_workload(scheme, workload, seed=seed, **kwargs)
            )
    return out


def summarize_seeds(metrics_list) -> Dict[str, Tuple[float, float]]:
    """Mean and population stdev of the headline metrics over seeds."""
    import math

    def stats(values):
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, math.sqrt(var)

    return {
        "response_time_ms": stats(
            [m.mean_response_time_ms for m in metrics_list]
        ),
        "energy_kj": stats([m.total_energy_j / 1e3 for m in metrics_list]),
        "mean_power_w": stats([m.mean_power_w for m in metrics_list]),
        "spin_cycles": stats(
            [float(m.spin_cycle_count) for m in metrics_list]
        ),
    }
