"""Extension experiment: RoLo on a parity-based array (paper §VII).

The paper closes with "a study on the feasibility and efficiency of RoLo
deployed in parity-based storage systems will be conducted as our future
work".  This experiment conducts it: plain RAID5 (synchronous parity
read-modify-write) against RoLo-5 (rotated parity logging with idle-gated
parity updates) across write intensities and request sizes.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import Raid5Config, build_raid5_controller
from repro.core.base import run_trace
from repro.experiments.registry import register
from repro.experiments.report import Report, Series, Table
from repro.sim import Simulator
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

KB = 1024
MB = 1024 * KB


@register(
    "ext-raid5",
    "RoLo-5 vs plain RAID5: the small-write problem (extension)",
    "§VII future work",
)
def run(
    scale: float = 0.02,
    n_disks: int = 10,
    iops_levels: Iterable[float] = (10, 30, 60),
    request_kb: Iterable[int] = (4, 16, 64),
    duration_s: float = 300.0,
    seed: int = 42,
) -> Report:
    report = Report("ext-raid5", "Parity-based RoLo study")
    report.parameters = {"n_disks": n_disks, "duration_s": duration_s}
    table = report.add_table(
        Table(
            "small-write response time: RAID5 vs RoLo-5",
            [
                "iops",
                "req_kb",
                "raid5_rt_ms",
                "rolo5_rt_ms",
                "speedup",
                "rmw_avoided",
                "parity_updates",
            ],
            note="speedup = raid5_rt / rolo5_rt on an all-write workload",
        )
    )
    series = report.add_series(
        Series("rolo5-speedup@16KB", "iops", "speedup")
    )
    config = Raid5Config(n_disks=n_disks).scaled(scale)
    for iops in iops_levels:
        for req_kb in request_kb:
            workload = SyntheticTraceConfig(
                duration_s=duration_s,
                iops=iops,
                write_ratio=1.0,
                avg_request_bytes=req_kb * KB,
                footprint_bytes=max(
                    64 * MB, int(config.free_space_bytes * 2)
                ),
                write_sequential_fraction=0.1,
                seed=seed,
                name=f"raid5-{iops}-{req_kb}",
            )
            trace = generate_trace(workload)
            results = {}
            for scheme in ("raid5", "rolo-5"):
                sim = Simulator()
                controller = build_raid5_controller(scheme, sim, config)
                metrics = run_trace(controller, trace)
                controller.assert_consistent()
                results[scheme] = (metrics, controller)
            base, base_ctrl = results["raid5"]
            rolo, rolo_ctrl = results["rolo-5"]
            speedup = (
                base.response_time.mean / rolo.response_time.mean
                if rolo.response_time.mean
                else 0.0
            )
            table.add_row(
                iops,
                req_kb,
                base.mean_response_time_ms,
                rolo.mean_response_time_ms,
                speedup,
                base_ctrl.parity_rmw_count - rolo_ctrl.parity_rmw_count,
                # post-drain count: deferred parity updates actually done
                rolo_ctrl.metrics.destaged_bytes // config.stripe_unit,
            )
            if req_kb == 16:
                series.add(iops, speedup)
    return report
