"""Self-contained run reports (``rolo report``).

Builds a scheme × workload report from cached cell results: a cell table
with tail latency percentiles (p50/p95/p99 from the response histogram),
energy and mean power, a per-state power residency breakdown, and a
scheme comparison against the always-on RAID10 baseline.  Rendered as
markdown (terminal/docs) or a single HTML file with the latency
distributions inlined as SVG via :mod:`repro.experiments.svg` — no
external assets, so the file survives being mailed around or uploaded as
a CI artifact.
"""

from __future__ import annotations

import html
import os
from typing import Any, Dict, List, Optional

from repro.core.metrics import RunMetrics
from repro.disk.power import PowerState
from repro.experiments import runner
from repro.experiments.parallel import execute_cells
from repro.experiments.report import Series
from repro.experiments.runner import Cell, workload_cell

#: Latency quantiles every report surfaces (ISSUE 7 acceptance: p50/95/99).
REPORT_QUANTILES = (0.5, 0.95, 0.99)

#: The comparison anchor: RAID10 never powers down, so energy ratios
#: against it are the paper's headline numbers.
BASELINE_SCHEME = "raid10"


def report_cells(
    schemes: List[str],
    workloads: List[str],
    scale: Optional[float] = None,
    n_pairs: int = 20,
    seed: int = 42,
) -> List[Cell]:
    """The cell grid a report covers."""
    return [
        workload_cell(scheme, workload, scale=scale, n_pairs=n_pairs, seed=seed)
        for workload in workloads
        for scheme in schemes
    ]


def build_run_report(
    cells: List[Cell],
    jobs: Optional[int] = None,
    title: str = "RoLo run report",
    attribution: bool = False,
) -> Dict[str, Any]:
    """Execute (or fetch) every cell and assemble the report structure.

    The returned dict is plain data — the renderers below and the tests'
    golden assertions both consume it.  ``attribution=True`` re-runs each
    cell span-traced (bypassing caches; metrics stay byte-identical per
    the observability contract) and attaches a critical-path latency
    decomposition per cell — see :mod:`repro.obs.attribution`.
    """
    execute_cells(cells, jobs=jobs if jobs is not None else 1)
    entries = []
    for cell in cells:
        metrics = runner.lookup_cached(cell.key())
        if metrics is None:
            metrics = cell.execute()
            runner.install_result(cell.key(), metrics)
        entries.append(_cell_entry(cell, metrics))
    if attribution:
        for cell, entry in zip(cells, entries):
            entry["attribution"] = _cell_attribution(cell)
    workloads = sorted({e["workload"] for e in entries})
    schemes = sorted({e["scheme"] for e in entries})
    return {
        "title": title,
        "schemes": schemes,
        "workloads": workloads,
        "cells": entries,
        "comparison": _scheme_comparison(entries),
    }


def _cell_attribution(cell: Cell) -> Dict[str, Any]:
    """Span-trace one cell and summarize its latency decomposition."""
    from repro.experiments.runner import run_cell_observed
    from repro.obs.attribution import attribute_events, attribution_summary

    observed = run_cell_observed(cell, spans=True)
    return attribution_summary(
        attribute_events(observed.tracer.sorted_events())
    )


def _cell_entry(cell: Cell, metrics: RunMetrics) -> Dict[str, Any]:
    histogram = metrics.response_histogram
    quantiles = {
        f"p{int(q * 100)}_ms": histogram.quantile(q) * 1e3
        for q in REPORT_QUANTILES
    }
    duration = metrics.duration_s
    residency = {}
    for role, states in metrics.state_time_by_role.items():
        total = sum(states.values())
        residency[role] = {
            state.value: (time / total if total else 0.0)
            for state, time in states.items()
            if time > 0
        }
    return {
        "scheme": cell.scheme,
        "workload": cell.workload
        or getattr(cell.trace_config, "name", "?"),
        "label": cell.label(),
        "requests": metrics.requests,
        "mean_ms": metrics.response_time.mean * 1e3,
        **quantiles,
        "duration_s": duration,
        "energy_j": metrics.total_energy_j,
        "mean_power_w": (
            metrics.total_energy_j / duration if duration else 0.0
        ),
        "spin_cycles": metrics.spin_cycle_count,
        "residency": residency,
        "histogram": {
            "bounds": list(metrics.response_histogram.bounds),
            "counts": list(metrics.response_histogram.counts),
        },
    }


def _scheme_comparison(entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Energy/latency ratios vs the RAID10 cell of the same workload."""
    baseline = {
        e["workload"]: e
        for e in entries
        if e["scheme"] == BASELINE_SCHEME
    }
    comparison = []
    for entry in entries:
        if entry["scheme"] == BASELINE_SCHEME:
            continue
        anchor = baseline.get(entry["workload"])
        if anchor is None or not anchor["energy_j"]:
            continue
        comparison.append(
            {
                "scheme": entry["scheme"],
                "workload": entry["workload"],
                "energy_ratio": entry["energy_j"] / anchor["energy_j"],
                "p95_ratio": (
                    entry["p95_ms"] / anchor["p95_ms"]
                    if anchor["p95_ms"]
                    else 0.0
                ),
            }
        )
    return comparison


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
_CELL_COLUMNS = (
    ("scheme", "scheme"),
    ("workload", "workload"),
    ("requests", "requests"),
    ("mean_ms", "mean ms"),
    ("p50_ms", "p50 ms"),
    ("p95_ms", "p95 ms"),
    ("p99_ms", "p99 ms"),
    ("energy_j", "energy J"),
    ("mean_power_w", "mean W"),
    ("spin_cycles", "spins"),
)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def render_markdown(report: Dict[str, Any]) -> str:
    lines = [f"# {report['title']}", ""]
    headers = [label for _, label in _CELL_COLUMNS]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for entry in report["cells"]:
        lines.append(
            "| "
            + " | ".join(_fmt(entry[key]) for key, _ in _CELL_COLUMNS)
            + " |"
        )
    lines.append("")
    lines.append("## Power-state residency")
    lines.append("")
    lines.append("| scheme | workload | role | " + " | ".join(
        s.value for s in PowerState if s is not PowerState.FAILED
    ) + " |")
    lines.append("|" + "|".join(
        "---" for _ in range(3 + len(PowerState) - 1)
    ) + "|")
    for entry in report["cells"]:
        for role in sorted(entry["residency"]):
            states = entry["residency"][role]
            cells = " | ".join(
                f"{states.get(s.value, 0.0) * 100:.1f}%"
                for s in PowerState
                if s is not PowerState.FAILED
            )
            lines.append(
                f"| {entry['scheme']} | {entry['workload']} | {role} "
                f"| {cells} |"
            )
    if report["comparison"]:
        lines.append("")
        lines.append(f"## vs {BASELINE_SCHEME}")
        lines.append("")
        lines.append("| scheme | workload | energy | p95 latency |")
        lines.append("|---|---|---|---|")
        for row in report["comparison"]:
            lines.append(
                f"| {row['scheme']} | {row['workload']} "
                f"| {row['energy_ratio']:.2f}x "
                f"| {row['p95_ratio']:.2f}x |"
            )
    attribution_rows = _attribution_rows(report)
    if attribution_rows:
        lines.append("")
        lines.append("## Critical-path attribution")
        lines.append("")
        lines.append(
            "| " + " | ".join(label for _, label in _ATTR_COLUMNS) + " |"
        )
        lines.append("|" + "|".join("---" for _ in _ATTR_COLUMNS) + "|")
        for row in attribution_rows:
            lines.append(
                "| "
                + " | ".join(str(row[key]) for key, _ in _ATTR_COLUMNS)
                + " |"
            )
    lines.append("")
    return "\n".join(lines)


#: Columns of the critical-path attribution table (``--attribution``).
_ATTR_COLUMNS = (
    ("scheme", "scheme"),
    ("workload", "workload"),
    ("stat", "stat"),
    ("latency_ms", "latency ms"),
    ("queue", "queue"),
    ("spinup", "spin-up"),
    ("interference", "interfere"),
    ("seek", "seek"),
    ("rotation", "rotation"),
    ("transfer", "transfer"),
    ("culprit", "culprit"),
)


def _attribution_rows(report: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten per-cell attribution summaries into renderable rows."""
    rows: List[Dict[str, Any]] = []
    for entry in report["cells"]:
        summary = entry.get("attribution")
        if not summary or not summary.get("count"):
            continue
        stats = [("mean", summary["mean"])]
        stats.extend(sorted(summary["quantiles"].items()))
        for stat, detail in stats:
            row = {
                "scheme": entry["scheme"],
                "workload": entry["workload"],
                "stat": stat,
                "latency_ms": f"{detail['latency_s'] * 1e3:.3f}",
                "culprit": detail.get("culprit") or "-",
            }
            for phase, fraction in detail["fractions"].items():
                row[phase] = f"{fraction * 100:.1f}%"
            rows.append(row)
    return rows


def _latency_charts(report: Dict[str, Any]) -> List[str]:
    """One latency-distribution chart per workload, one series per scheme."""
    from repro.experiments.svg import PALETTE, render_chart_svg

    charts = []
    for workload in report["workloads"]:
        series_list = []
        for entry in report["cells"]:
            if entry["workload"] != workload:
                continue
            histogram = entry["histogram"]
            series = Series(
                name=entry["scheme"],
                x_label="latency ms",
                y_label="requests",
            )
            for bound, count in zip(
                histogram["bounds"], histogram["counts"]
            ):
                if count:
                    series.add(bound * 1e3, float(count))
            if series.points:
                series_list.append(series)
        for start in range(0, len(series_list), len(PALETTE)):
            chunk = series_list[start : start + len(PALETTE)]
            charts.append(
                render_chart_svg(chunk, f"latency distribution - {workload}")
            )
    return charts


def render_html(report: Dict[str, Any]) -> str:
    headers = "".join(
        f"<th>{label}</th>" for _, label in _CELL_COLUMNS
    )
    rows = []
    for entry in report["cells"]:
        cells = "".join(
            f"<td>{html.escape(_fmt(entry[key]))}</td>"
            for key, _ in _CELL_COLUMNS
        )
        rows.append(f"<tr>{cells}</tr>")
    residency_rows = []
    states = [s for s in PowerState if s is not PowerState.FAILED]
    for entry in report["cells"]:
        for role in sorted(entry["residency"]):
            fractions = entry["residency"][role]
            cells = "".join(
                f"<td>{fractions.get(s.value, 0.0) * 100:.1f}%</td>"
                for s in states
            )
            residency_rows.append(
                f"<tr><td>{html.escape(entry['scheme'])}</td>"
                f"<td>{html.escape(entry['workload'])}</td>"
                f"<td>{html.escape(role)}</td>{cells}</tr>"
            )
    comparison_rows = [
        f"<tr><td>{html.escape(row['scheme'])}</td>"
        f"<td>{html.escape(row['workload'])}</td>"
        f"<td>{row['energy_ratio']:.2f}x</td>"
        f"<td>{row['p95_ratio']:.2f}x</td></tr>"
        for row in report["comparison"]
    ]
    comparison_html = ""
    if comparison_rows:
        comparison_html = (
            f"<h2>vs {BASELINE_SCHEME}</h2>"
            "<table><tr><th>scheme</th><th>workload</th>"
            "<th>energy</th><th>p95 latency</th></tr>"
            + "".join(comparison_rows)
            + "</table>"
        )
    attribution_html = ""
    attribution_rows = _attribution_rows(report)
    if attribution_rows:
        attr_heads = "".join(
            f"<th>{label}</th>" for _, label in _ATTR_COLUMNS
        )
        attr_body = "".join(
            "<tr>"
            + "".join(
                f"<td>{html.escape(str(row[key]))}</td>"
                for key, _ in _ATTR_COLUMNS
            )
            + "</tr>"
            for row in attribution_rows
        )
        attribution_html = (
            "<h2>Critical-path attribution</h2>"
            f"<table><tr>{attr_heads}</tr>{attr_body}</table>"
        )
    state_heads = "".join(f"<th>{s.value}</th>" for s in states)
    charts = "\n".join(_latency_charts(report))
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>{html.escape(report["title"])}</title>
<style>
body {{ font-family: -apple-system, sans-serif; margin: 2rem; }}
table {{ border-collapse: collapse; margin-bottom: 1.5rem; }}
td, th {{ border: 1px solid #ccc; padding: 0.3rem 0.6rem;
          text-align: right; }}
td:first-child, th:first-child {{ text-align: left; }}
</style></head><body>
<h1>{html.escape(report["title"])}</h1>
<table><tr>{headers}</tr>
{chr(10).join(rows)}
</table>
<h2>Power-state residency</h2>
<table><tr><th>scheme</th><th>workload</th><th>role</th>{state_heads}</tr>
{chr(10).join(residency_rows)}
</table>
{comparison_html}
{attribution_html}
{charts}
</body></html>
"""


def write_report(
    report: Dict[str, Any], path: str, fmt: Optional[str] = None
) -> str:
    """Write markdown or HTML depending on ``fmt`` (or the extension)."""
    if fmt is None:
        fmt = "html" if path.endswith((".html", ".htm")) else "markdown"
    text = render_html(report) if fmt == "html" else render_markdown(report)
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path
