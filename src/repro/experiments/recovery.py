"""Extension experiment: the §III-C recovery comparison.

Not a numbered figure in the paper, but the claim behind Fig. 9's
RoLo-P > GRAID MTTDL ordering: "only a small subset of the relevant
mirrored disks are spun up for the recovery of the failure of any primary
disk in RoLo-P, while all the mirrored disks must be spun up ... in GRAID".
This experiment primes each scheme with the same write stream, fails a
primary / a mirror, and reports wake-set sizes and rebuild times.
"""

from __future__ import annotations

from typing import Optional

from repro.core import (
    ArrayConfig,
    RecoveryProcess,
    build_controller,
    plan_recovery,
)
from repro.core.base import run_trace as run_trace_base
from repro.experiments.registry import register
from repro.experiments.report import Report, Table
from repro.sim import Simulator
from repro.traces import build_workload_trace

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")
MB = 1024 * 1024


@register(
    "ext-recovery",
    "Disks woken and rebuild time per failure class (extension)",
    "§III-C / §III-D",
)
def run(
    scale: float = 0.01,
    n_pairs: int = 8,
    workload: str = "src2_2",
    rebuild_mb: Optional[int] = 256,
    seed: int = 42,
) -> Report:
    report = Report("ext-recovery", "Failure recovery comparison")
    report.parameters = {"n_pairs": n_pairs, "scale": scale}
    table = report.add_table(
        Table(
            "recovery wake sets and rebuild times",
            [
                "scheme",
                "failure",
                "disks_woken",
                "rebuild_time_s",
                "logging_continues",
            ],
        )
    )
    trace = build_workload_trace(workload, scale=scale, seed=seed)
    for scheme in SCHEMES:
        for failure in ("primary", "mirror"):
            sim = Simulator()
            config = ArrayConfig(n_pairs=n_pairs).scaled(scale)
            controller = build_controller(scheme, sim, config)
            run_trace_base(controller, trace, drain=False)
            roles = controller.disks_by_role()
            victim = roles[failure][0]
            plan = plan_recovery(controller, victim)
            if rebuild_mb is not None:
                plan.rebuild_bytes = rebuild_mb * MB
            process = RecoveryProcess(sim, controller, plan)
            process.start()
            sim.run()
            table.add_row(
                scheme,
                failure,
                plan.disks_woken,
                process.rebuild_time,
                plan.logging_continues,
            )
    return report
