"""Process-pool execution of experiment cells.

The experiment matrix is the repo's dominant compute cost; this module
fans its cells out over a :class:`concurrent.futures.ProcessPoolExecutor`.
Workers execute cells *outside* every cache layer and ship their metrics
back as plain dicts (:meth:`RunMetrics.to_dict`); the parent installs the
results into the in-memory memo and the persistent cache.  Because the
dict round-trip is exact and each cell's simulation is single-threaded and
seeded, parallel runs are bit-for-bit identical to serial ones.

``jobs=1`` never touches the pool: cached/pending cells are only counted,
and the experiment's own serial code path performs the computations —
today's behavior, preserved exactly.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.metrics import RunMetrics
from repro.experiments import runner
from repro.experiments.runner import Cell


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: every available core."""
    return os.cpu_count() or 1


@dataclasses.dataclass
class CellExecution:
    """Outcome summary of one :func:`execute_cells` invocation."""

    total: int = 0
    unique: int = 0
    cached: int = 0
    computed: int = 0
    jobs: int = 1

    def merged(self, other: "CellExecution") -> "CellExecution":
        return CellExecution(
            total=self.total + other.total,
            unique=self.unique + other.unique,
            cached=self.cached + other.cached,
            computed=self.computed + other.computed,
            jobs=max(self.jobs, other.jobs),
        )


def _compute_cell(cell: Cell) -> Dict[str, Any]:
    """Worker entry point: run one cell, return its serialized metrics."""
    return cell.execute().to_dict()


def execute_cells(
    cells: Iterable[Cell],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CellExecution:
    """Ensure every cell's result is cached, computing misses in parallel.

    Duplicate cells (same canonical key) are computed once.  With
    ``jobs=1`` nothing is computed here — the caller's serial path does it
    — but the cached/pending census is still reported.
    """
    if jobs is None:
        jobs = default_jobs()
    cell_list = list(cells)
    stats = CellExecution(total=len(cell_list), jobs=jobs)

    unique: Dict[Tuple, Cell] = {}
    for cell in cell_list:
        unique.setdefault(cell.key(), cell)
    stats.unique = len(unique)

    pending: List[Tuple[Tuple, Cell]] = []
    for key, cell in unique.items():
        if runner.lookup_cached(key) is not None:
            stats.cached += 1
        else:
            pending.append((key, cell))

    if jobs == 1 or not pending:
        return stats

    workers = min(jobs, len(pending))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_compute_cell, cell): (key, cell)
            for key, cell in pending
        }
        for future in as_completed(futures):
            key, cell = futures[future]
            metrics = RunMetrics.from_dict(future.result())
            runner.install_result(key, metrics)
            stats.computed += 1
            if progress is not None:
                progress(
                    f"[{stats.computed + stats.cached}/{stats.unique}] "
                    f"{cell.scheme} x "
                    f"{cell.workload or getattr(cell.trace_config, 'name', '?')}"
                )
    return stats
