"""Process-pool execution of experiment cells.

The experiment matrix is the repo's dominant compute cost; this module
fans its cells out over a :class:`concurrent.futures.ProcessPoolExecutor`.
Workers execute cells *outside* every cache layer and ship their metrics
back as plain dicts (:meth:`RunMetrics.to_dict`); the parent installs the
results into the in-memory memo and the persistent cache.  Because the
dict round-trip is exact and each cell's simulation is single-threaded and
seeded, parallel runs are bit-for-bit identical to serial ones.

``jobs=1`` never touches the pool: cached/pending cells are only counted,
and the experiment's own serial code path performs the computations —
today's behavior, preserved exactly.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.metrics import RunMetrics
from repro.experiments import runner
from repro.experiments.runner import Cell
from repro.obs.profiler import CellProfile, ProfileReport


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: every available core."""
    return os.cpu_count() or 1


@dataclasses.dataclass
class CellExecution:
    """Outcome summary of one :func:`execute_cells` invocation."""

    total: int = 0
    unique: int = 0
    cached: int = 0
    computed: int = 0
    jobs: int = 1
    #: Per-cell timing, present when ``collect_profiles=True`` was passed.
    profiles: Optional[ProfileReport] = None

    def merged(self, other: "CellExecution") -> "CellExecution":
        profiles = None
        if self.profiles is not None or other.profiles is not None:
            profiles = ProfileReport()
            for report in (self.profiles, other.profiles):
                if report is not None:
                    profiles.cells.extend(report.cells)
            profiles.finalize()
        return CellExecution(
            total=self.total + other.total,
            unique=self.unique + other.unique,
            cached=self.cached + other.cached,
            computed=self.computed + other.computed,
            jobs=max(self.jobs, other.jobs),
            profiles=profiles,
        )


def _compute_cell(cell: Cell) -> Dict[str, Any]:
    """Worker entry point: run one cell, return its serialized metrics."""
    return cell.execute().to_dict()


def _compute_cell_profiled(cell: Cell) -> Dict[str, Any]:
    """Worker entry point with per-cell timing attached."""
    metrics, profile = cell.execute_profiled()
    return {"metrics": metrics.to_dict(), "profile": profile.to_dict()}


def execute_cells(
    cells: Iterable[Cell],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    collect_profiles: bool = False,
) -> CellExecution:
    """Ensure every cell's result is cached, computing misses in parallel.

    Duplicate cells (same canonical key) are computed once.  With
    ``jobs=1`` nothing is computed here — the caller's serial path does it
    — but the cached/pending census is still reported.

    With ``collect_profiles=True`` each computed cell additionally returns
    a :class:`CellProfile` (wall time, event count, simulated time);
    cached cells appear in the report with ``source="cached"`` and no
    timing.  Profiling changes nothing about the metrics: workers still
    ship exact ``RunMetrics.to_dict()`` payloads.  To keep the report
    complete, profiling forces pending cells to be computed here even at
    ``jobs=1`` (serially, in-process).
    """
    if jobs is None:
        jobs = default_jobs()
    cell_list = list(cells)
    stats = CellExecution(total=len(cell_list), jobs=jobs)
    report = ProfileReport() if collect_profiles else None

    unique: Dict[Tuple, Cell] = {}
    for cell in cell_list:
        unique.setdefault(cell.key(), cell)
    stats.unique = len(unique)

    pending: List[Tuple[Tuple, Cell]] = []
    for key, cell in unique.items():
        if runner.lookup_cached(key) is not None:
            stats.cached += 1
            if report is not None:
                report.add(CellProfile(label=cell.label(), source="cached"))
        else:
            pending.append((key, cell))

    def _note(key: Tuple, cell: Cell) -> None:
        stats.computed += 1
        if progress is not None:
            progress(
                f"[{stats.computed + stats.cached}/{stats.unique}] "
                f"{cell.scheme} x "
                f"{cell.workload or getattr(cell.trace_config, 'name', '?')}"
            )

    if pending and jobs == 1 and collect_profiles:
        # Serial profiled path: compute in-process so the caller's later
        # serial pass hits the cache and the report covers every cell.
        for key, cell in pending:
            metrics, profile = cell.execute_profiled()
            runner.install_result(key, metrics)
            report.add(profile)
            _note(key, cell)
    elif pending and jobs > 1:
        worker = _compute_cell_profiled if collect_profiles else _compute_cell
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(worker, cell): (key, cell)
                for key, cell in pending
            }
            for future in as_completed(futures):
                key, cell = futures[future]
                payload = future.result()
                if collect_profiles:
                    metrics = RunMetrics.from_dict(payload["metrics"])
                    report.add(CellProfile.from_dict(payload["profile"]))
                else:
                    metrics = RunMetrics.from_dict(payload)
                runner.install_result(key, metrics)
                _note(key, cell)

    if report is not None:
        report.finalize()
        stats.profiles = report
    return stats
