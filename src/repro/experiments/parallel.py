"""Process-pool execution of experiment cells.

The experiment matrix is the repo's dominant compute cost; this module
fans its cells out over a :class:`concurrent.futures.ProcessPoolExecutor`.
Workers execute cells *outside* every cache layer and ship their metrics
back as plain dicts (:meth:`RunMetrics.to_dict`); the parent installs the
results into the in-memory memo and the persistent cache.  Because the
dict round-trip is exact and each cell's simulation is single-threaded and
seeded, parallel runs are bit-for-bit identical to serial ones.

Trace bytes cross the process boundary **once per distinct trace**, not
once per cell: the parent builds each distinct trace (``Cell.trace_key``
groups cells that replay identical traces), publishes its columns into a
:class:`~repro.traces.shm.SharedTraceStore` segment, and submits cells
with a tiny :class:`~repro.traces.shm.TraceRef`.  Workers attach the
segment zero-copy behind the ordinary ``CompiledTrace`` surface and
memoize attachments per process, so consecutive same-trace cells pay
nothing.  Dispatch is locality-aware: pending cells are ordered so
same-trace cells are contiguous, and a bounded in-flight window hands
work out dynamically, keeping the submission queue short enough that
contiguous (warm) cells reach workers in order.

``jobs=1`` never touches the pool: cached/pending cells are only counted,
and the experiment's own serial code path performs the computations —
today's behavior, preserved exactly.
"""

from __future__ import annotations

import dataclasses
import os
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.metrics import RunMetrics
from repro.experiments import runner
from repro.experiments.runner import Cell
from repro.obs.profiler import CellProfile, ProfileReport
from repro.traces import shm
from repro.traces.shm import SharedTraceStore, TraceRef


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given.

    Respects the CPU *affinity mask* where the platform exposes one
    (``os.sched_getaffinity``), so a containerized run pinned to 2 of 64
    cores starts 2 workers, not 64.  Falls back to ``os.cpu_count()``.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            count = len(affinity(0))
        except OSError:  # pragma: no cover - platform quirk
            count = 0
        if count:
            return count
    return os.cpu_count() or 1


class CellExecutionError(RuntimeError):
    """A pool worker failed while computing one cell.

    Raised in the parent with the failing cell's human-readable label;
    the worker's original exception is chained as ``__cause__``.  By the
    time this propagates, outstanding futures have been cancelled, the
    pool has been shut down, and every shared-memory segment unlinked.
    """

    def __init__(self, label: str, cause: BaseException) -> None:
        super().__init__(f"cell {label!r} failed: {cause!r}")
        self.label = label


@dataclasses.dataclass
class CellExecution:
    """Outcome summary of one :func:`execute_cells` invocation."""

    total: int = 0
    unique: int = 0
    cached: int = 0
    computed: int = 0
    jobs: int = 1
    #: Per-cell timing, present when ``collect_profiles=True`` was passed.
    profiles: Optional[ProfileReport] = None

    def merged(self, other: "CellExecution") -> "CellExecution":
        profiles = None
        if self.profiles is not None or other.profiles is not None:
            profiles = ProfileReport()
            for report in (self.profiles, other.profiles):
                if report is not None:
                    profiles.cells.extend(report.cells)
            profiles.finalize()
        return CellExecution(
            total=self.total + other.total,
            unique=self.unique + other.unique,
            cached=self.cached + other.cached,
            computed=self.computed + other.computed,
            jobs=max(self.jobs, other.jobs),
            profiles=profiles,
        )


def _worker_init() -> None:
    """Pool initializer: pre-import the simulation stack.

    With ``fork`` this is a no-op (the child inherits the parent's
    modules); under ``spawn`` it front-loads the import cost once per
    worker instead of on the first submitted cell.
    """
    import repro.core  # noqa: F401
    import repro.experiments.runner  # noqa: F401
    import repro.traces.shm  # noqa: F401


def _compute_cell(cell: Cell, ref: Optional[TraceRef]) -> Dict[str, Any]:
    """Worker entry point: run one cell, return its serialized metrics."""
    trace = shm.attach_cached(ref) if ref is not None else None
    return cell.execute(trace=trace).to_dict()


def _compute_cell_profiled(
    cell: Cell, ref: Optional[TraceRef]
) -> Dict[str, Any]:
    """Worker entry point with per-cell timing attached."""
    trace = shm.attach_cached(ref) if ref is not None else None
    metrics, profile = cell.execute_profiled(trace=trace)
    return {"metrics": metrics.to_dict(), "profile": profile.to_dict()}


def run_grouped(
    pending: List[Tuple[Any, Any]],
    jobs: int,
    worker: Callable[..., Dict[str, Any]],
    handle: Callable[[Any, Any, Dict[str, Any]], None],
) -> None:
    """Locality-aware pool dispatch shared by experiments and campaigns.

    ``pending`` is ``[(key, cell), ...]`` where every cell exposes
    ``trace_key()`` / ``build_trace()`` / ``label()``.  The parent builds
    each distinct trace once, publishes it to a :class:`SharedTraceStore`,
    orders cells so same-trace groups are contiguous, and keeps at most
    ``2 * workers`` futures in flight (dynamic hand-out: one new
    submission per completion).  ``handle(key, cell, payload)`` runs in
    the parent per completed cell.

    Error handling: a worker exception cancels all outstanding futures,
    shuts the pool down, unlinks every segment, and raises
    :class:`CellExecutionError` naming the failing cell.  A
    ``KeyboardInterrupt`` in the parent performs the same cleanup and
    re-raises, so neither the pool nor ``/dev/shm`` segments leak.
    """
    use_shm = shm.available()
    with SharedTraceStore() if use_shm else _NullStore() as store:
        refs: Dict[Tuple, Optional[TraceRef]] = {}
        groups: Dict[Optional[str], List[Tuple[Any, Any, Optional[TraceRef]]]] = {}
        for key, cell in pending:
            tkey = cell.trace_key()
            if tkey not in refs:
                refs[tkey] = (
                    store.publish(cell.build_trace()) if use_shm else None
                )
            ref = refs[tkey]
            group_id = ref.trace_hash if ref is not None else None
            groups.setdefault(group_id, []).append((key, cell, ref))
        queue = deque(
            item for group in groups.values() for item in group
        )

        workers = min(jobs, len(queue))
        window = 2 * workers
        futures: Dict[Future, Tuple[Any, Any]] = {}
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        ) as pool:
            def _submit_next() -> None:
                if queue:
                    key, cell, ref = queue.popleft()
                    futures[pool.submit(worker, cell, ref)] = (key, cell)

            try:
                for _ in range(min(window, len(queue))):
                    _submit_next()
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        key, cell = futures.pop(future)
                        try:
                            payload = future.result()
                        except KeyboardInterrupt:
                            raise
                        except BaseException as exc:
                            raise CellExecutionError(
                                cell.label(), exc
                            ) from exc
                        handle(key, cell, payload)
                        _submit_next()
            except BaseException:
                queue.clear()
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=True, cancel_futures=True)
                raise


class _NullStore:
    """Stand-in store when shared memory is unavailable: cells ship whole."""

    def __enter__(self) -> "_NullStore":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


def execute_cells(
    cells: Iterable[Cell],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    collect_profiles: bool = False,
) -> CellExecution:
    """Ensure every cell's result is cached, computing misses in parallel.

    Duplicate cells (same canonical key) are computed once.  With
    ``jobs=1`` nothing is computed here — the caller's serial path does it
    — but the cached/pending census is still reported.

    With ``collect_profiles=True`` each computed cell additionally returns
    a :class:`CellProfile` (wall time, event count, simulated time);
    cached cells appear in the report with ``source="cached"`` and no
    timing.  Profiling changes nothing about the metrics: workers still
    ship exact ``RunMetrics.to_dict()`` payloads.  To keep the report
    complete, profiling forces pending cells to be computed here even at
    ``jobs=1`` (serially, in-process).
    """
    if jobs is None:
        jobs = default_jobs()
    cell_list = list(cells)
    stats = CellExecution(total=len(cell_list), jobs=jobs)
    report = ProfileReport() if collect_profiles else None

    unique: Dict[Tuple, Cell] = {}
    for cell in cell_list:
        unique.setdefault(cell.key(), cell)
    stats.unique = len(unique)

    pending: List[Tuple[Tuple, Cell]] = []
    for key, cell in unique.items():
        if runner.lookup_cached(key) is not None:
            stats.cached += 1
            if report is not None:
                report.add(CellProfile(label=cell.label(), source="cached"))
        else:
            pending.append((key, cell))

    def _note(key: Tuple, cell: Cell) -> None:
        stats.computed += 1
        if progress is not None:
            progress(
                f"[{stats.computed + stats.cached}/{stats.unique}] "
                f"{cell.scheme} x "
                f"{cell.workload or getattr(cell.trace_config, 'name', '?')}"
            )

    if pending and jobs == 1 and collect_profiles:
        # Serial profiled path: compute in-process so the caller's later
        # serial pass hits the cache and the report covers every cell.
        for key, cell in pending:
            metrics, profile = cell.execute_profiled()
            runner.install_result(key, metrics)
            report.add(profile)
            _note(key, cell)
    elif pending and jobs > 1:
        worker = _compute_cell_profiled if collect_profiles else _compute_cell

        def _handle(key: Tuple, cell: Cell, payload: Dict[str, Any]) -> None:
            if collect_profiles:
                metrics = RunMetrics.from_dict(payload["metrics"])
                report.add(CellProfile.from_dict(payload["profile"]))
            else:
                metrics = RunMetrics.from_dict(payload)
            runner.install_result(key, metrics)
            _note(key, cell)

        run_grouped(pending, jobs, worker, _handle)

    if report is not None:
        report.finalize()
        stats.profiles = report
    return stats
