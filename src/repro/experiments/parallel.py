"""Process-pool execution of experiment cells.

The experiment matrix is the repo's dominant compute cost; this module
fans its cells out over a :class:`concurrent.futures.ProcessPoolExecutor`.
Workers execute cells *outside* every cache layer and ship their metrics
back as plain dicts (:meth:`RunMetrics.to_dict`); the parent installs the
results into the in-memory memo and the persistent cache.  Because the
dict round-trip is exact and each cell's simulation is single-threaded and
seeded, parallel runs are bit-for-bit identical to serial ones.

Trace bytes cross the process boundary **once per distinct trace**, not
once per cell: the parent builds each distinct trace (``Cell.trace_key``
groups cells that replay identical traces), publishes its columns into a
:class:`~repro.traces.shm.SharedTraceStore` segment, and submits cells
with a tiny :class:`~repro.traces.shm.TraceRef`.  Workers attach the
segment zero-copy behind the ordinary ``CompiledTrace`` surface and
memoize attachments per process, so consecutive same-trace cells pay
nothing.  Dispatch is locality-aware: pending cells are ordered so
same-trace cells are contiguous, and a bounded in-flight window hands
work out dynamically, keeping the submission queue short enough that
contiguous (warm) cells reach workers in order.

``jobs=1`` never touches the pool: cached/pending cells are only counted,
and the experiment's own serial code path performs the computations —
today's behavior, preserved exactly.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.metrics import RunMetrics
from repro.experiments import runner
from repro.experiments.runner import Cell
from repro.obs.metrics import MetricsRegistry, log_buckets
from repro.obs.profiler import CellProfile, ProfileReport
from repro.traces import shm
from repro.traces.shm import SharedTraceStore, TraceRef

#: Wall-clock buckets for per-cell dispatch histograms: 1 ms – ~9 min.
CELL_WALL_BUCKETS = log_buckets(1e-3, 2.0, 19)


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given.

    Respects the CPU *affinity mask* where the platform exposes one
    (``os.sched_getaffinity``), so a containerized run pinned to 2 of 64
    cores starts 2 workers, not 64.  Falls back to ``os.cpu_count()``.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            count = len(affinity(0))
        except OSError:  # pragma: no cover - platform quirk
            count = 0
        if count:
            return count
    return os.cpu_count() or 1


class CellExecutionError(RuntimeError):
    """A pool worker failed while computing one cell.

    Raised in the parent with the failing cell's human-readable label;
    the worker's original exception is chained as ``__cause__``.  By the
    time this propagates, outstanding futures have been cancelled, the
    pool has been shut down, and every shared-memory segment unlinked.
    """

    def __init__(self, label: str, cause: BaseException) -> None:
        super().__init__(f"cell {label!r} failed: {cause!r}")
        self.label = label


@dataclasses.dataclass
class CellExecution:
    """Outcome summary of one :func:`execute_cells` invocation."""

    total: int = 0
    unique: int = 0
    cached: int = 0
    computed: int = 0
    jobs: int = 1
    #: Per-cell timing, present when ``collect_profiles=True`` was passed.
    profiles: Optional[ProfileReport] = None
    #: Merged worker + dispatcher metrics, present when
    #: ``collect_metrics=True`` was passed.
    metrics: Optional[MetricsRegistry] = None

    def merged(self, other: "CellExecution") -> "CellExecution":
        profiles = None
        if self.profiles is not None or other.profiles is not None:
            profiles = ProfileReport()
            for report in (self.profiles, other.profiles):
                if report is not None:
                    profiles.cells.extend(report.cells)
            profiles.finalize()
        metrics = None
        if self.metrics is not None or other.metrics is not None:
            metrics = MetricsRegistry()
            for registry in (self.metrics, other.metrics):
                if registry is not None:
                    metrics.merge(registry)
        return CellExecution(
            total=self.total + other.total,
            unique=self.unique + other.unique,
            cached=self.cached + other.cached,
            computed=self.computed + other.computed,
            jobs=max(self.jobs, other.jobs),
            profiles=profiles,
            metrics=metrics,
        )


def _worker_init() -> None:
    """Pool initializer: pre-import the simulation stack.

    With ``fork`` this is a no-op (the child inherits the parent's
    modules); under ``spawn`` it front-loads the import cost once per
    worker instead of on the first submitted cell.
    """
    import repro.core  # noqa: F401
    import repro.experiments.runner  # noqa: F401
    import repro.traces.shm  # noqa: F401
    import repro.verify  # noqa: F401


def _compute_cell(cell: Cell, ref: Optional[TraceRef]) -> Dict[str, Any]:
    """Worker entry point: run one cell, return its serialized metrics."""
    trace = shm.attach_cached(ref) if ref is not None else None
    return cell.execute(trace=trace).to_dict()


def _compute_cell_profiled(
    cell: Cell, ref: Optional[TraceRef]
) -> Dict[str, Any]:
    """Worker entry point with per-cell timing attached."""
    trace = shm.attach_cached(ref) if ref is not None else None
    metrics, profile = cell.execute_profiled(trace=trace)
    return {"metrics": metrics.to_dict(), "profile": profile.to_dict()}


def _compute_cell_metered(
    cell: Cell, ref: Optional[TraceRef]
) -> Dict[str, Any]:
    """Worker entry point with the metrics registry instrumented in."""
    trace = shm.attach_cached(ref) if ref is not None else None
    metrics, registry = cell.execute_metered(trace=trace)
    return {"metrics": metrics.to_dict(), "registry": registry.to_dict()}


def _telemetry_worker(
    worker: Callable[..., Dict[str, Any]], cell: Any, ref: Optional[TraceRef]
) -> Dict[str, Any]:
    """Envelope any worker entry point with dispatcher telemetry.

    Reports the worker pid, per-cell wall clock, and the shm attach-memo
    hit/miss delta this cell caused — the raw material for the end-of-
    sweep utilization table.  ``worker`` stays a module-level function, so
    the pair pickles like a direct submission.
    """
    before = shm.attach_stats()
    started = time.perf_counter()
    payload = worker(cell, ref)
    wall = time.perf_counter() - started
    after = shm.attach_stats()
    return {
        "payload": payload,
        "telemetry": {
            "pid": os.getpid(),
            "wall_s": wall,
            "attach_hits": after["hits"] - before["hits"],
            "attach_misses": after["misses"] - before["misses"],
        },
    }


def _record_telemetry(
    registry: MetricsRegistry, telemetry: Dict[str, Any], inflight: int
) -> None:
    """Fold one cell's dispatch envelope into the sweep registry."""
    worker = str(telemetry["pid"])
    registry.counter(
        "sweep_worker_cells_total", "cells completed per pool worker",
        worker=worker,
    ).inc()
    registry.counter(
        "sweep_worker_busy_seconds_total",
        "wall-clock busy time per pool worker",
        worker=worker,
    ).inc(telemetry["wall_s"])
    registry.histogram(
        "sweep_cell_wall_seconds", "per-cell wall clock in the pool",
        buckets=CELL_WALL_BUCKETS,
    ).observe(telemetry["wall_s"])
    hits = telemetry.get("attach_hits", 0)
    misses = telemetry.get("attach_misses", 0)
    if hits:
        registry.counter(
            "shm_attach_hits_total", "shared-trace attach memo hits",
            worker=worker,
        ).inc(hits)
    if misses:
        registry.counter(
            "shm_attach_misses_total", "shared-trace segment attaches",
            worker=worker,
        ).inc(misses)
    registry.gauge(
        "sweep_inflight_window_peak",
        "peak submitted-but-unfinished futures",
        agg="max",
    ).set_max(float(inflight))


def run_grouped(
    pending: List[Tuple[Any, Any]],
    jobs: int,
    worker: Callable[..., Dict[str, Any]],
    handle: Callable[[Any, Any, Dict[str, Any]], None],
    telemetry: Optional[MetricsRegistry] = None,
) -> None:
    """Locality-aware pool dispatch shared by experiments and campaigns.

    ``pending`` is ``[(key, cell), ...]`` where every cell exposes
    ``trace_key()`` / ``build_trace()`` / ``label()``.  The parent builds
    each distinct trace once, publishes it to a :class:`SharedTraceStore`,
    orders cells so same-trace groups are contiguous, and keeps at most
    ``2 * workers`` futures in flight (dynamic hand-out: one new
    submission per completion).  ``handle(key, cell, payload)`` runs in
    the parent per completed cell.

    With a ``telemetry`` registry, every submission is wrapped in
    :func:`_telemetry_worker` and the parent records dispatcher metrics
    (per-worker cells/busy-seconds, cell wall-clock histogram, shm attach
    hit/miss, in-flight window peak); ``handle`` still receives the bare
    payload.

    Error handling: a worker exception cancels all outstanding futures,
    shuts the pool down, unlinks every segment, and raises
    :class:`CellExecutionError` naming the failing cell.  A
    ``KeyboardInterrupt`` in the parent performs the same cleanup and
    re-raises, so neither the pool nor ``/dev/shm`` segments leak.
    """
    use_shm = shm.available()
    with SharedTraceStore() if use_shm else _NullStore() as store:
        refs: Dict[Tuple, Optional[TraceRef]] = {}
        groups: Dict[Optional[str], List[Tuple[Any, Any, Optional[TraceRef]]]] = {}
        for key, cell in pending:
            tkey = cell.trace_key()
            if tkey not in refs:
                refs[tkey] = (
                    store.publish(cell.build_trace()) if use_shm else None
                )
            ref = refs[tkey]
            group_id = ref.trace_hash if ref is not None else None
            groups.setdefault(group_id, []).append((key, cell, ref))
        queue = deque(
            item for group in groups.values() for item in group
        )

        workers = min(jobs, len(queue))
        window = 2 * workers
        futures: Dict[Future, Tuple[Any, Any]] = {}
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        ) as pool:
            def _submit_next() -> None:
                if queue:
                    key, cell, ref = queue.popleft()
                    if telemetry is not None:
                        future = pool.submit(
                            _telemetry_worker, worker, cell, ref
                        )
                    else:
                        future = pool.submit(worker, cell, ref)
                    futures[future] = (key, cell)

            try:
                for _ in range(min(window, len(queue))):
                    _submit_next()
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        key, cell = futures.pop(future)
                        try:
                            payload = future.result()
                        except KeyboardInterrupt:
                            raise
                        except BaseException as exc:
                            raise CellExecutionError(
                                cell.label(), exc
                            ) from exc
                        if telemetry is not None:
                            _record_telemetry(
                                telemetry,
                                payload["telemetry"],
                                len(futures) + 1,
                            )
                            payload = payload["payload"]
                        handle(key, cell, payload)
                        _submit_next()
            except BaseException:
                queue.clear()
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=True, cancel_futures=True)
                raise


class _NullStore:
    """Stand-in store when shared memory is unavailable: cells ship whole."""

    def __enter__(self) -> "_NullStore":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


def execute_cells(
    cells: Iterable[Cell],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    collect_profiles: bool = False,
    collect_metrics: bool = False,
    registry: Optional[MetricsRegistry] = None,
) -> CellExecution:
    """Ensure every cell's result is cached, computing misses in parallel.

    Duplicate cells (same canonical key) are computed once.  With
    ``jobs=1`` nothing is computed here — the caller's serial path does it
    — but the cached/pending census is still reported.

    With ``collect_profiles=True`` each computed cell additionally returns
    a :class:`CellProfile` (wall time, event count, simulated time);
    cached cells appear in the report with ``source="cached"`` and no
    timing.  Profiling changes nothing about the metrics: workers still
    ship exact ``RunMetrics.to_dict()`` payloads.  To keep the report
    complete, profiling forces pending cells to be computed here even at
    ``jobs=1`` (serially, in-process).

    With ``collect_metrics=True`` each computed cell is run under the
    metrics registry (latency/power histograms, controller counters) and
    the pool dispatch itself is metered (per-worker throughput, shm
    attach locality, in-flight window); worker registries merge into
    ``stats.metrics`` — order-independent, see
    :meth:`MetricsRegistry.merge`.  Metering observes only: the
    ``RunMetrics`` payloads stay byte-identical.  Like profiling, it
    forces pending cells to be computed here even at ``jobs=1``.
    """
    if collect_profiles and collect_metrics:
        raise ValueError(
            "collect_profiles and collect_metrics are mutually exclusive"
        )
    if jobs is None:
        jobs = default_jobs()
    cell_list = list(cells)
    stats = CellExecution(total=len(cell_list), jobs=jobs)
    report = ProfileReport() if collect_profiles else None
    if collect_metrics:
        stats.metrics = registry if registry is not None else MetricsRegistry()

    unique: Dict[Tuple, Cell] = {}
    for cell in cell_list:
        unique.setdefault(cell.key(), cell)
    stats.unique = len(unique)

    pending: List[Tuple[Tuple, Cell]] = []
    for key, cell in unique.items():
        if runner.lookup_cached(key) is not None:
            stats.cached += 1
            if report is not None:
                report.add(CellProfile(label=cell.label(), source="cached"))
        else:
            pending.append((key, cell))

    if isinstance(progress, SweepProgress):
        progress.start(stats.unique, done=stats.cached)

    def _note(key: Tuple, cell: Cell) -> None:
        stats.computed += 1
        if progress is not None:
            label = (
                f"{cell.scheme} x "
                f"{cell.workload or getattr(cell.trace_config, 'name', '?')}"
            )
            if isinstance(progress, SweepProgress):
                # The renderer prefixes its own [done/total] counter.
                progress(label)
            else:
                progress(
                    f"[{stats.computed + stats.cached}/{stats.unique}] "
                    f"{label}"
                )

    if pending and jobs == 1 and collect_profiles:
        # Serial profiled path: compute in-process so the caller's later
        # serial pass hits the cache and the report covers every cell.
        for key, cell in pending:
            metrics, profile = cell.execute_profiled()
            runner.install_result(key, metrics)
            report.add(profile)
            _note(key, cell)
    elif pending and jobs == 1 and collect_metrics:
        # Serial metered path, same rationale as the profiled one.
        for key, cell in pending:
            metrics, _ = cell.execute_metered(registry=stats.metrics)
            runner.install_result(key, metrics)
            _note(key, cell)
    elif pending and jobs > 1:
        if collect_profiles:
            worker = _compute_cell_profiled
        elif collect_metrics:
            worker = _compute_cell_metered
        else:
            worker = _compute_cell

        def _handle(key: Tuple, cell: Cell, payload: Dict[str, Any]) -> None:
            if collect_profiles:
                metrics = RunMetrics.from_dict(payload["metrics"])
                report.add(CellProfile.from_dict(payload["profile"]))
            elif collect_metrics:
                metrics = RunMetrics.from_dict(payload["metrics"])
                stats.metrics.merge(
                    MetricsRegistry.from_dict(payload["registry"])
                )
            else:
                metrics = RunMetrics.from_dict(payload)
            runner.install_result(key, metrics)
            _note(key, cell)

        run_grouped(pending, jobs, worker, _handle, telemetry=stats.metrics)

    if report is not None:
        report.finalize()
        stats.profiles = report
    if isinstance(progress, SweepProgress):
        progress.finish()
    return stats


class SweepProgress:
    """Throttled single-line progress/ETA renderer for long sweeps.

    Drop-in for the ``progress`` callback of :func:`execute_cells` and
    :func:`~repro.faults.campaign.run_campaign`: each call marks one cell
    done and (at most every ``min_interval`` seconds) redraws one
    ``\\r``-terminated status line with percent complete, throughput, and
    the remaining-time estimate.  :meth:`finish` ends the line, so later
    output starts clean.
    """

    def __init__(
        self,
        stream=None,
        min_interval: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._clock = clock
        self.total = 0
        self.done = 0
        self._initial_done = 0
        self._started = clock()
        self._last_emit = -float("inf")
        self._dirty = False
        self._width = 0

    def start(self, total: int, done: int = 0) -> None:
        """Reset for a sweep of ``total`` cells, ``done`` already cached."""
        self.total = total
        self.done = done
        self._initial_done = done
        self._started = self._clock()
        self._last_emit = -float("inf")

    def __call__(self, message: str = "") -> None:
        self.done += 1
        now = self._clock()
        if (
            now - self._last_emit < self.min_interval
            and self.done < self.total
        ):
            return
        self._last_emit = now
        self._emit(message, now)

    def _emit(self, message: str, now: float) -> None:
        computed = self.done - self._initial_done
        elapsed = now - self._started
        rate = computed / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.total - self.done)
        if rate > 0:
            eta = _fmt_duration(remaining / rate)
        else:
            eta = "?"
        pct = 100.0 * self.done / self.total if self.total else 100.0
        line = (
            f"[{self.done}/{self.total}] {pct:5.1f}%  "
            f"{rate:6.2f} cells/s  eta {eta}"
        )
        if message:
            line += f"  {message}"
        pad = max(0, self._width - len(line))
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._dirty = True

    def finish(self) -> None:
        """Terminate the status line (idempotent)."""
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


def _fmt_duration(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"
