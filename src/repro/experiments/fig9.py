"""Figure 9: MTTDL as a function of MTTR (paper §IV).

Plots the closed-form MTTDL of RAID10, GRAID, RoLo-P and RoLo-R for MTTR of
1–7 days at λ = 1e-5/hour, plus (our extension) the exact CTMC solutions
and a spin-derated "combined measure" using the Table I spin counts.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.registry import register
from repro.experiments.report import Report, Series, Table
from repro.reliability import SpinDerating, mttdl_ctmc, mttdl_sweep
from repro.reliability.mttdl import HOURS_PER_DAY, HOURS_PER_YEAR

SCHEMES = ("rolo-r", "raid10", "rolo-p", "graid")


@register("fig9", "MTTDL vs MTTR for four array schemes", "Figure 9")
def run(
    lam: float = 1e-5,
    mttr_days: Iterable[float] = (1, 2, 3, 4, 5, 6, 7),
    **_: object,
) -> Report:
    report = Report("fig9", "Mean Time To Data Loss vs Mean Time To Repair")
    report.parameters = {"lambda_per_hour": lam}
    table = report.add_table(
        Table(
            "Fig 9: MTTDL (years, closed forms)",
            ["mttr_days"] + list(SCHEMES),
        )
    )
    exact = report.add_table(
        Table(
            "MTTDL (years, exact CTMC solutions)",
            ["mttr_days"] + list(SCHEMES),
            note="chains per Figs. 6-8 assumptions; see reliability.mttdl",
        )
    )
    series = {
        scheme: report.add_series(
            Series(f"mttdl-{scheme}", "MTTR (days)", "MTTDL (years)")
        )
        for scheme in SCHEMES
    }
    rows = mttdl_sweep(lam=lam, mttr_days=mttr_days, schemes=SCHEMES)
    for days, values in rows:
        table.add_row(days, *(values[s] for s in SCHEMES))
        mu = 1.0 / (days * HOURS_PER_DAY)
        exact.add_row(
            days,
            *(mttdl_ctmc(s, lam, mu) / HOURS_PER_YEAR for s in SCHEMES),
        )
        for scheme in SCHEMES:
            series[scheme].add(days, values[scheme])

    # Extension: spin-derated combined measure with representative Table I
    # spin counts (per full-scale trace horizon).
    derate = SpinDerating(base_lambda_per_hour=lam)
    spin_counts = {"raid10": 0, "graid": 120, "rolo-p": 12, "rolo-r": 12}
    combined = report.add_table(
        Table(
            "Spin-derated MTTDL at MTTR=3 days (years)",
            ["scheme", "plain", "spin_derated"],
            note="proj_0 Table I spin counts over a 24h horizon, 41 disks",
        )
    )
    mu = 1.0 / (3 * HOURS_PER_DAY)
    adjusted = derate.compare(
        mu, spin_counts, horizon_hours=24.0, n_disks=41
    )
    for days_scheme, years in adjusted.items():
        plain = None
        for d, values in rows:
            if d == 3:
                plain = values.get(days_scheme)
        if plain is None:
            from repro.reliability import mttdl_closed_form

            plain = mttdl_closed_form(days_scheme, lam, mu) / HOURS_PER_YEAR
        combined.add_row(days_scheme, plain, years)
    return report
