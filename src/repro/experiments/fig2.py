"""Figure 2: why bigger logs don't help centralized logging (paper §II).

A GRAID array (10 mirrored pairs + 1 dedicated log disk) replays 100%-write
workloads of 64 KB requests, 70% random, at four intensities, for three
logger capacities.  Panels:

(a) mean logging / destaging interval lengths,
(b) mean logging / destaging energies,
(c) destaging interval ratio,
(d) destaging energy ratio.

The paper's observation: (a) and (b) grow with logger capacity while the
ratios (c) and (d) stay flat — centralized destaging scales its cost with
the logging capacity.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core import ArrayConfig
from repro.experiments.registry import register
from repro.experiments.report import Report, Series, Table
from repro.experiments.runner import simulate_synthetic, synthetic_cell
from repro.traces.synthetic import SyntheticTraceConfig

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

IOPS_LEVELS = (10, 50, 100, 200)
LOGGER_CAPACITIES_GB = (8, 12, 16)


def _workload(
    iops: float, duration_s: float, footprint: int, seed: int
) -> SyntheticTraceConfig:
    return SyntheticTraceConfig(
        duration_s=duration_s,
        iops=iops,
        write_ratio=1.0,
        avg_request_bytes=64 * KB,
        size_sigma=0.0,
        footprint_bytes=footprint,
        write_sequential_fraction=0.3,  # 70% random
        name=f"fig2-iops{iops}",
        seed=seed,
    )


def _cell_setup(
    scale: float,
    iops: float,
    capacity_gb: float,
    target_cycles: int,
    seed: int,
):
    """The (workload, config) one Fig. 2 grid point simulates."""
    capacity = int(capacity_gb * GB * scale)
    config = ArrayConfig(
        n_pairs=10,
        graid_log_capacity_bytes=max(capacity, 64 * MB // 8),
        free_space_bytes=max(capacity // 2, 32 * MB // 8),
    )
    fill_rate = iops * 64 * KB
    cycle_estimate = (
        config.destage_threshold
        * config.graid_log_capacity_bytes
        / fill_rate
    )
    duration = max(60.0, target_cycles * cycle_estimate * 1.2)
    footprint = max(64 * MB, int(config.graid_log_capacity_bytes * 1.5))
    return _workload(iops, duration, footprint, seed), config


def cells(
    scale: float = 0.05,
    iops_levels: Iterable[float] = IOPS_LEVELS,
    capacities_gb: Iterable[float] = LOGGER_CAPACITIES_GB,
    target_cycles: int = 3,
    seed: int = 42,
):
    return [
        synthetic_cell(
            "graid",
            *_cell_setup(scale, iops, capacity_gb, target_cycles, seed),
        )
        for iops in iops_levels
        for capacity_gb in capacities_gb
    ]


@register(
    "fig2",
    "Impact of logger capacity on destaging interval/energy ratios",
    "Figure 2 (a-d)",
    cells=cells,
)
def run(
    scale: float = 0.05,
    iops_levels: Iterable[float] = IOPS_LEVELS,
    capacities_gb: Iterable[float] = LOGGER_CAPACITIES_GB,
    target_cycles: int = 3,
    seed: int = 42,
) -> Report:
    report = Report("fig2", "Logger capacity study (GRAID)")
    report.parameters = {"scale": scale, "target_cycles": target_cycles}
    intervals = report.add_table(
        Table(
            "Fig 2(a): mean interval lengths (s)",
            ["iops", "capacity_gb", "logging_interval", "destage_interval"],
        )
    )
    energies = report.add_table(
        Table(
            "Fig 2(b): mean interval energies (kJ)",
            ["iops", "capacity_gb", "logging_energy", "destage_energy"],
        )
    )
    interval_ratio = report.add_table(
        Table(
            "Fig 2(c): destaging interval ratio",
            ["iops", "capacity_gb", "ratio"],
        )
    )
    energy_ratio = report.add_table(
        Table(
            "Fig 2(d): destaging energy ratio",
            ["iops", "capacity_gb", "ratio"],
        )
    )
    ratio_series: Dict[float, Series] = {}
    for iops in iops_levels:
        ratio_series[iops] = report.add_series(
            Series(
                f"destage-interval-ratio@iops={iops}",
                "logger capacity (GB)",
                "ratio",
            )
        )
    for iops in iops_levels:
        for capacity_gb in capacities_gb:
            workload, config = _cell_setup(
                scale, iops, capacity_gb, target_cycles, seed
            )
            metrics = simulate_synthetic("graid", workload, config)
            complete = [c for c in metrics.cycles if c.complete]
            if not complete:
                continue
            mean_log = sum(c.logging_interval for c in complete) / len(
                complete
            )
            mean_destage = sum(
                c.destage_interval for c in complete
            ) / len(complete)
            mean_log_e = sum(c.logging_energy for c in complete) / len(
                complete
            )
            mean_destage_e = sum(
                c.destage_energy for c in complete
            ) / len(complete)
            intervals.add_row(iops, capacity_gb, mean_log, mean_destage)
            energies.add_row(
                iops, capacity_gb, mean_log_e / 1e3, mean_destage_e / 1e3
            )
            ir = metrics.destage_interval_ratio() or 0.0
            er = metrics.destage_energy_ratio() or 0.0
            interval_ratio.add_row(iops, capacity_gb, ir)
            energy_ratio.add_row(iops, capacity_gb, er)
            ratio_series[iops].add(capacity_gb, ir)
    return report
