"""Figures 11 and 12: sensitivity to the number of disks.

The paper runs 20/30/40-disk arrays (10/15/20 mirrored pairs, plus one log
disk for GRAID).  Fig. 11 reports energy saved over RAID10; Fig. 12 the
absolute mean response times.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.registry import register
from repro.experiments.report import Report, Series, Table
from repro.experiments.runner import run_scheme_set, workload_cell

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")
WORKLOADS = ("src2_2", "proj_0")
PAIR_COUNTS = (10, 15, 20)


def cells(
    scale: Optional[float] = None,
    pair_counts: Iterable[int] = PAIR_COUNTS,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
):
    return [
        workload_cell(s, w, scale=scale, n_pairs=n_pairs, seed=seed)
        for w in workloads
        for n_pairs in pair_counts
        for s in SCHEMES
    ]


def _run_sweep(
    scale: Optional[float],
    pair_counts: Iterable[int],
    workloads: Iterable[str],
    seed: int,
):
    for workload in workloads:
        for n_pairs in pair_counts:
            yield workload, n_pairs, run_scheme_set(
                workload, SCHEMES, scale=scale, n_pairs=n_pairs, seed=seed
            )


@register(
    "fig11",
    "Energy saved over RAID10 as a function of the number of disks",
    "Figure 11 (a-b)",
    cells=cells,
)
def run_fig11(
    scale: Optional[float] = None,
    pair_counts: Iterable[int] = PAIR_COUNTS,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
) -> Report:
    report = Report("fig11", "Energy saving vs array size")
    table = report.add_table(
        Table(
            "Fig 11: energy saved over RAID10",
            ["workload", "n_disks", "graid", "rolo-p", "rolo-r", "rolo-e"],
        )
    )
    series = {
        (w, s): report.add_series(
            Series(f"saving-{w}-{s}", "n_disks", "fraction saved")
        )
        for w in workloads
        for s in SCHEMES[1:]
    }
    for workload, n_pairs, results in _run_sweep(
        scale, pair_counts, workloads, seed
    ):
        base = results["raid10"].total_energy_j
        savings = [
            1 - results[s].total_energy_j / base for s in SCHEMES[1:]
        ]
        table.add_row(workload, 2 * n_pairs, *savings)
        for scheme, saving in zip(SCHEMES[1:], savings):
            series[(workload, scheme)].add(2 * n_pairs, saving)
    return report


@register(
    "fig12",
    "Average response time as a function of the number of disks",
    "Figure 12 (a-b)",
    cells=cells,
)
def run_fig12(
    scale: Optional[float] = None,
    pair_counts: Iterable[int] = PAIR_COUNTS,
    workloads: Iterable[str] = WORKLOADS,
    seed: int = 42,
) -> Report:
    report = Report("fig12", "Response time vs array size")
    table = report.add_table(
        Table(
            "Fig 12: mean response time (ms)",
            ["workload", "n_disks"] + list(SCHEMES),
            note="the paper omits RoLo-E from its response-time sensitivity",
        )
    )
    for workload, n_pairs, results in _run_sweep(
        scale, pair_counts, workloads, seed
    ):
        table.add_row(
            workload,
            2 * n_pairs,
            *(results[s].mean_response_time_ms for s in SCHEMES),
        )
    return report
