"""§V-C sensitivity studies whose plots the paper omits for space:
stripe-unit size and disk size (at a fixed 50% free-space ratio)."""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.core import ArrayConfig
from repro.disk.models import ULTRASTAR_36Z15
from repro.experiments.registry import register
from repro.experiments.report import Report, Table
from repro.experiments.runner import (
    run_scheme_set,
    workload_cell,
    workload_scale,
)

KB = 1024
GB = 1024**3

SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")


def cells_stripe(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    stripe_units_kb: Iterable[int] = (16, 32, 64),
    workloads: Iterable[str] = ("src2_2", "proj_0"),
    seed: int = 42,
):
    return [
        workload_cell(
            s,
            w,
            scale=scale,
            n_pairs=n_pairs,
            seed=seed,
            stripe_unit=stripe_kb * KB,
        )
        for w in workloads
        for stripe_kb in stripe_units_kb
        for s in SCHEMES
    ]


def cells_disksize(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    rolo_free_gb: Iterable[float] = (8, 4, 2),
    workloads: Iterable[str] = ("src2_2",),
    seed: int = 42,
):
    out = []
    for workload in workloads:
        effective = workload_scale(workload, scale)
        for free_gb in rolo_free_gb:
            config = dataclasses.replace(
                ArrayConfig(n_pairs=n_pairs),
                disk=ULTRASTAR_36Z15,
                free_space_bytes=int(free_gb * GB),
                graid_log_capacity_bytes=int(2 * free_gb * GB),
            ).scaled(effective)
            out.extend(
                workload_cell(
                    s,
                    workload,
                    scale=scale,
                    n_pairs=n_pairs,
                    seed=seed,
                    config=config,
                )
                for s in SCHEMES[1:]
            )
    return out


@register(
    "sens-stripe",
    "Sensitivity to the stripe unit size (16/32/64 KB)",
    "§V-C 'Stripe Unit Size'",
    cells=cells_stripe,
)
def run_stripe(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    stripe_units_kb: Iterable[int] = (16, 32, 64),
    workloads: Iterable[str] = ("src2_2", "proj_0"),
    seed: int = 42,
) -> Report:
    report = Report("sens-stripe", "Stripe-unit sensitivity")
    table = report.add_table(
        Table(
            "energy saved over RAID10 by stripe unit",
            ["workload", "stripe_kb", "graid", "rolo-p", "rolo-r", "rolo-e"],
            note="paper finding: only RoLo-E under src2_2 is sensitive",
        )
    )
    for workload in workloads:
        for stripe_kb in stripe_units_kb:
            results = run_scheme_set(
                workload,
                SCHEMES,
                scale=scale,
                n_pairs=n_pairs,
                seed=seed,
                stripe_unit=stripe_kb * KB,
            )
            base = results["raid10"].total_energy_j
            table.add_row(
                workload,
                stripe_kb,
                *(
                    1 - results[s].total_energy_j / base
                    for s in SCHEMES[1:]
                ),
            )
    return report


@register(
    "sens-disksize",
    "Sensitivity to disk size at a fixed 50% free-space ratio",
    "§V-C 'Disk Sizes'",
    cells=cells_disksize,
)
def run_disksize(
    scale: Optional[float] = None,
    n_pairs: int = 20,
    rolo_free_gb: Iterable[float] = (8, 4, 2),
    workloads: Iterable[str] = ("src2_2",),
    seed: int = 42,
) -> Report:
    """GRAID log capacities 16/8/4 GB paired with RoLo free space 8/4/2 GB.

    The paper's finding: the energy-saving effectiveness of RoLo over GRAID
    does not vary with disk size at a fixed free-space ratio.
    """
    report = Report("sens-disksize", "Disk-size sensitivity")
    table = report.add_table(
        Table(
            "energy saved over GRAID by (scaled) disk size",
            ["workload", "rolo_free_gb", "rolo-p", "rolo-r", "rolo-e"],
        )
    )
    for workload in workloads:
        effective = workload_scale(workload, scale)
        for free_gb in rolo_free_gb:
            config = dataclasses.replace(
                ArrayConfig(n_pairs=n_pairs),
                disk=ULTRASTAR_36Z15,
                free_space_bytes=int(free_gb * GB),
                graid_log_capacity_bytes=int(2 * free_gb * GB),
            ).scaled(effective)
            results = run_scheme_set(
                workload,
                SCHEMES[1:],
                scale=scale,
                n_pairs=n_pairs,
                seed=seed,
                config=config,
            )
            base = results["graid"].total_energy_j
            table.add_row(
                workload,
                free_gb,
                *(
                    1 - results[s].total_energy_j / base
                    for s in ("rolo-p", "rolo-r", "rolo-e")
                ),
            )
    return report
