"""Experiment harness: one registered experiment per paper table/figure.

Usage::

    from repro.experiments import get_experiment, list_experiments

    report = get_experiment("fig10").run(scale=0.05)
    print(report.to_text())

Every experiment returns a :class:`~repro.experiments.report.Report` whose
tables/series mirror the rows the paper plots.  ``scale`` shrinks the
replayed horizon together with the log capacities (DESIGN.md §3).
"""

from repro.experiments.registry import (
    Experiment,
    get_experiment,
    list_experiments,
    register,
)
from repro.experiments.report import Report, Series, Table
from repro.experiments.runner import clear_cache, simulate_workload

# Importing the modules registers their experiments.
from repro.experiments import (  # noqa: F401  (import for side effects)
    breakdown,
    fig2,
    fig3,
    fig9,
    fig10,
    fig11_12,
    fig13,
    fig14,
    idleslots,
    raid5,
    rebuild,
    recovery,
    sensitivity,
    tables,
    variance,
)

__all__ = [
    "Experiment",
    "get_experiment",
    "list_experiments",
    "register",
    "Report",
    "Series",
    "Table",
    "simulate_workload",
    "clear_cache",
]
