"""Static SVG rendering of experiment series (figure regeneration).

Produces self-contained .svg files from a report's
:class:`~repro.experiments.report.Series` collection — one chart per
(x-label, y-label) axis pair, so e.g. Fig. 9's four MTTDL curves share one
plot.  Pure standard library.

Design follows the validated reference data-viz palette: categorical hues
in fixed order (never cycled), one y-axis, thin 2 px lines with 8 px point
markers, recessive grid, text in ink colors (identity is carried by the
legend swatch and direct end labels, never by coloring the text itself).
A legend is always present for two or more series; up to four series are
also direct-labeled at their line ends.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.experiments.report import Report, Series

#: Validated categorical palette (light mode), fixed assignment order.
PALETTE = [
    "#2a78d6",  # blue
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
    "#e87ba4",  # magenta
    "#eb6834",  # orange
]
SURFACE = "#fcfcfb"
INK_PRIMARY = "#0b0b0b"
INK_SECONDARY = "#52514e"
GRID = "#e4e3df"

WIDTH, HEIGHT = 720, 440
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 72, 160, 48, 56


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(1, n - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if step >= raw_step:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.1e}"
    text = f"{value:.3f}".rstrip("0").rstrip(".")
    return text


class _Axes:
    """Maps data coordinates to SVG pixel coordinates."""

    def __init__(self, series_list: Sequence[Series]) -> None:
        xs = [x for s in series_list for x, _ in s.points]
        self.numeric_x = all(_is_number(x) for x in xs)
        if self.numeric_x:
            self.x_values: List[float] = sorted({float(x) for x in xs})
            self.x_lo = min(self.x_values)
            self.x_hi = max(self.x_values)
            if self.x_hi == self.x_lo:
                self.x_hi = self.x_lo + 1
        else:
            seen: List[str] = []
            for x in xs:
                if str(x) not in seen:
                    seen.append(str(x))
            self.categories = seen
        ys = [y for s in series_list for _, y in s.points]
        lo, hi = min(ys + [0.0]), max(ys)
        if hi == lo:
            hi = lo + 1
        self.y_ticks = _ticks(lo, hi)
        self.y_lo = self.y_ticks[0]
        self.y_hi = self.y_ticks[-1]

    def x_pos(self, x) -> float:
        span = WIDTH - MARGIN_L - MARGIN_R
        if self.numeric_x:
            frac = (float(x) - self.x_lo) / (self.x_hi - self.x_lo)
        else:
            index = self.categories.index(str(x))
            frac = (index + 0.5) / len(self.categories)
        return MARGIN_L + frac * span

    def y_pos(self, y: float) -> float:
        span = HEIGHT - MARGIN_T - MARGIN_B
        frac = (y - self.y_lo) / (self.y_hi - self.y_lo)
        return HEIGHT - MARGIN_B - frac * span

    def x_tick_values(self):
        if self.numeric_x:
            return _ticks(self.x_lo, self.x_hi)
        return self.categories


def render_chart_svg(
    series_list: Sequence[Series], title: str
) -> str:
    """Render one multi-series line chart as an SVG document string."""
    series_list = [s for s in series_list if s.points]
    if not series_list:
        raise ValueError("nothing to plot")
    if len(series_list) > len(PALETTE):
        raise ValueError(
            f"{len(series_list)} series exceed the fixed palette; fold "
            "extras or split into multiple charts"
        )
    axes = _Axes(series_list)
    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="system-ui, sans-serif">'
    )
    parts.append(
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="{SURFACE}"/>'
    )
    parts.append(
        f'<text x="{MARGIN_L}" y="26" font-size="16" font-weight="600" '
        f'fill="{INK_PRIMARY}">{html.escape(title)}</text>'
    )
    # Grid + y axis labels.
    for tick in axes.y_ticks:
        y = axes.y_pos(tick)
        parts.append(
            f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
            f'x2="{WIDTH - MARGIN_R}" y2="{y:.1f}" stroke="{GRID}" '
            f'stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{MARGIN_L - 8}" y="{y + 4:.1f}" font-size="11" '
            f'text-anchor="end" fill="{INK_SECONDARY}">'
            f"{_fmt_tick(tick)}</text>"
        )
    # X ticks.
    for tick in axes.x_tick_values():
        if axes.numeric_x and not (
            axes.x_lo <= float(tick) <= axes.x_hi
        ):
            continue
        x = axes.x_pos(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{HEIGHT - MARGIN_B}" x2="{x:.1f}" '
            f'y2="{HEIGHT - MARGIN_B + 4}" stroke="{INK_SECONDARY}"/>'
        )
        label = _fmt_tick(tick) if axes.numeric_x else html.escape(str(tick))
        parts.append(
            f'<text x="{x:.1f}" y="{HEIGHT - MARGIN_B + 18}" '
            f'font-size="11" text-anchor="middle" '
            f'fill="{INK_SECONDARY}">{label}</text>'
        )
    # Axis lines (recessive) + labels.
    parts.append(
        f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" '
        f'y2="{HEIGHT - MARGIN_B}" stroke="{INK_SECONDARY}" '
        f'stroke-width="1"/>'
    )
    parts.append(
        f'<line x1="{MARGIN_L}" y1="{HEIGHT - MARGIN_B}" '
        f'x2="{WIDTH - MARGIN_R}" y2="{HEIGHT - MARGIN_B}" '
        f'stroke="{INK_SECONDARY}" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{(MARGIN_L + WIDTH - MARGIN_R) / 2:.0f}" '
        f'y="{HEIGHT - 12}" font-size="12" text-anchor="middle" '
        f'fill="{INK_SECONDARY}">'
        f"{html.escape(series_list[0].x_label)}</text>"
    )
    parts.append(
        f'<text x="16" y="{(MARGIN_T + HEIGHT - MARGIN_B) / 2:.0f}" '
        f'font-size="12" text-anchor="middle" fill="{INK_SECONDARY}" '
        f'transform="rotate(-90 16 '
        f'{(MARGIN_T + HEIGHT - MARGIN_B) / 2:.0f})">'
        f"{html.escape(series_list[0].y_label)}</text>"
    )
    # Series: 2px lines, 8px-diameter markers, fixed palette order.
    for index, series in enumerate(series_list):
        color = PALETTE[index]
        pts = [
            (axes.x_pos(x), axes.y_pos(y)) for x, y in series.points
        ]
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                f'fill="{color}" stroke="{SURFACE}" stroke-width="2"/>'
            )
        if len(series_list) <= 4:
            end_x, end_y = pts[-1]
            parts.append(
                f'<text x="{end_x + 8:.1f}" y="{end_y + 4:.1f}" '
                f'font-size="11" fill="{INK_PRIMARY}">'
                f"{html.escape(series.name)}</text>"
            )
    # Legend (always present for >= 2 series).
    if len(series_list) >= 2:
        legend_x = WIDTH - MARGIN_R + 12
        for index, series in enumerate(series_list):
            y = MARGIN_T + 8 + index * 20
            parts.append(
                f'<rect x="{legend_x}" y="{y - 8}" width="12" '
                f'height="12" rx="2" fill="{PALETTE[index]}"/>'
            )
            parts.append(
                f'<text x="{legend_x + 18}" y="{y + 2}" font-size="11" '
                f'fill="{INK_PRIMARY}">{html.escape(series.name)}</text>'
            )
    parts.append("</svg>")
    return "".join(parts)


def report_to_svgs(
    report: Report, directory: Union[str, Path]
) -> List[Path]:
    """Write one SVG per axis group of the report's series.

    Series sharing (x_label, y_label) are drawn on the same chart, so a
    paper figure's families of curves stay together.  Returns the paths
    written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    groups: Dict[Tuple[str, str], List[Series]] = {}
    for series in report.series:
        if series.points:
            groups.setdefault(
                (series.x_label, series.y_label), []
            ).append(series)
    written: List[Path] = []
    for index, ((x_label, y_label), members) in enumerate(
        sorted(groups.items())
    ):
        charts = [members[i : i + len(PALETTE)]
                  for i in range(0, len(members), len(PALETTE))]
        for chart_no, chunk in enumerate(charts):
            suffix = f"-{chart_no}" if len(charts) > 1 else ""
            name = f"{report.experiment_id}-{index}{suffix}.svg"
            path = directory / name
            title = f"{report.title} ({y_label})"
            path.write_text(render_chart_svg(chunk, title))
            written.append(path)
    return written
