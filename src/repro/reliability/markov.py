"""Absorbing continuous-time Markov chains.

The mean time to absorption from a transient state solves the linear system
``Q_T t = -1`` where ``Q_T`` is the generator restricted to transient
states.  States are arbitrary hashable labels; absorbing states are those
with no outgoing transitions or explicitly declared.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set

import numpy as np

State = Hashable


class AbsorbingCTMC:
    """A CTMC with at least one absorbing state."""

    def __init__(self) -> None:
        self._transitions: Dict[State, Dict[State, float]] = {}
        self._states: List[State] = []
        self._absorbing: Set[State] = set()

    def _ensure_state(self, state: State) -> None:
        if state not in self._transitions:
            self._transitions[state] = {}
            self._states.append(state)

    def add_state(self, state: State, absorbing: bool = False) -> None:
        self._ensure_state(state)
        if absorbing:
            self._absorbing.add(state)

    def add_transition(self, src: State, dst: State, rate: float) -> None:
        """Add (or accumulate) a transition at the given rate (per hour)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if src == dst:
            raise ValueError("self-transitions are meaningless in a CTMC")
        self._ensure_state(src)
        self._ensure_state(dst)
        self._transitions[src][dst] = self._transitions[src].get(dst, 0.0) + rate

    @property
    def states(self) -> List[State]:
        return list(self._states)

    def absorbing_states(self) -> Set[State]:
        """Declared absorbing states plus any state with no exits."""
        implicit = {
            s for s, outs in self._transitions.items() if not outs
        }
        return self._absorbing | implicit

    def exit_rate(self, state: State) -> float:
        return sum(self._transitions[state].values())

    def mean_time_to_absorption(self, start: State) -> float:
        """Expected time from ``start`` until any absorbing state is hit."""
        absorbing = self.absorbing_states()
        if not absorbing:
            raise ValueError("chain has no absorbing state")
        if start in absorbing:
            return 0.0
        transient = [s for s in self._states if s not in absorbing]
        if start not in self._transitions:
            raise KeyError(f"unknown state {start!r}")
        index = {s: i for i, s in enumerate(transient)}
        n = len(transient)
        q = np.zeros((n, n))
        for s in transient:
            i = index[s]
            for dst, rate in self._transitions[s].items():
                if dst in index:  # transient->transient only
                    q[i, index[dst]] += rate
            q[i, i] -= self.exit_rate(s)
        # Transient states from which absorption is unreachable make Q_T
        # singular; report that clearly instead of a LinAlgError.
        try:
            times = np.linalg.solve(q, -np.ones(n))
        except np.linalg.LinAlgError as exc:
            raise ValueError(
                "absorption unreachable from some transient state"
            ) from exc
        return float(times[index[start]])

    def absorption_probabilities(self, start: State) -> Dict[State, float]:
        """Probability of ending in each absorbing state from ``start``."""
        absorbing = sorted(self.absorbing_states(), key=repr)
        transient = [s for s in self._states if s not in set(absorbing)]
        index = {s: i for i, s in enumerate(transient)}
        n = len(transient)
        q = np.zeros((n, n))
        r = np.zeros((n, len(absorbing)))
        a_index = {s: j for j, s in enumerate(absorbing)}
        for s in transient:
            i = index[s]
            for dst, rate in self._transitions[s].items():
                if dst in a_index:
                    r[i, a_index[dst]] += rate
                else:
                    q[i, index[dst]] += rate
            q[i, i] -= self.exit_rate(s)
        if start in a_index:
            return {s: 1.0 if s == start else 0.0 for s in absorbing}
        probs = np.linalg.solve(q, -r)
        row = probs[index[start]]
        return {s: float(row[a_index[s]]) for s in absorbing}
