"""MTTDL of RAID10, GRAID and the three RoLo flavors (paper §IV).

Two views are provided:

* **Closed forms** — equations (1)–(5) of the paper, used verbatim for the
  Fig. 9 sweep.  They approximate four-disk arrays (two mirrored pairs),
  with GRAID adding one dedicated log disk.
* **CTMC builders** — explicit state-transition chains solved exactly by
  :class:`~repro.reliability.markov.AbsorbingCTMC`.  The RoLo-E chain is
  the paper's Fig. 8 and reproduces equation (5) *exactly*; the RAID10
  chain reproduces equation (1) through the independent-pair argument of
  Xin et al. that the paper cites.  For RoLo-P/R the published diagrams
  (Figs. 6–7) are presented only graphically, so the builders encode the
  closest first-principles chains; tests check they agree with the closed
  forms asymptotically (μ ≫ λ), which is the regime Fig. 9 plots.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from repro.reliability.markov import AbsorbingCTMC

HOURS_PER_DAY = 24.0
HOURS_PER_YEAR = 24.0 * 365.0

LOSS = "DATA_LOSS"


def _check(lam: float, mu: float) -> None:
    if lam <= 0 or mu <= 0:
        raise ValueError("failure and repair rates must be positive")


# ----------------------------------------------------------------------
# Closed forms — equations (1) to (5), hours.
# ----------------------------------------------------------------------
def mttdl_raid10_4(lam: float, mu: float) -> float:
    """Equation (1): RAID10 with four disks (two mirrored pairs)."""
    _check(lam, mu)
    return (3 * lam + mu) / (4 * lam * lam)


def mttdl_graid_5(lam: float, mu: float) -> float:
    """Equation (2): GRAID with four data disks plus one log disk."""
    _check(lam, mu)
    return (17 * lam + 2 * mu) / (12 * lam * lam)


def mttdl_rolo_p_4(lam: float, mu: float) -> float:
    """Equation (3): RoLo-P with four disks."""
    _check(lam, mu)
    return (10 * lam + mu) / (5 * lam * lam)


def mttdl_rolo_r_4(lam: float, mu: float) -> float:
    """Equation (4): RoLo-R with four disks."""
    _check(lam, mu)
    return (15 * lam + 2 * mu) / (6 * lam * lam)


def mttdl_rolo_e_4(lam: float, mu: float) -> float:
    """Equation (5): RoLo-E with four disks (one pair spinning)."""
    _check(lam, mu)
    return (3 * lam + mu) / (2 * lam * lam)


MTTDL_CLOSED_FORMS: Dict[str, Callable[[float, float], float]] = {
    "raid10": mttdl_raid10_4,
    "graid": mttdl_graid_5,
    "rolo-p": mttdl_rolo_p_4,
    "rolo-r": mttdl_rolo_r_4,
    "rolo-e": mttdl_rolo_e_4,
}


def mttdl_closed_form(scheme: str, lam: float, mu: float) -> float:
    """MTTDL in hours from the paper's closed-form equations."""
    try:
        fn = MTTDL_CLOSED_FORMS[scheme.lower()]
    except KeyError:
        known = ", ".join(sorted(MTTDL_CLOSED_FORMS))
        raise KeyError(f"unknown scheme {scheme!r}; known: {known}") from None
    return fn(lam, mu)


# ----------------------------------------------------------------------
# CTMC builders
# ----------------------------------------------------------------------
def mirrored_pair_chain(lam: float, mu: float) -> AbsorbingCTMC:
    """One mirrored pair: 0 --2λ--> 1 --λ--> loss, 1 --μ--> 0.

    Solves to exactly (3λ+μ)/2λ², the building block behind equations (1)
    and (5).
    """
    _check(lam, mu)
    chain = AbsorbingCTMC()
    chain.add_state(LOSS, absorbing=True)
    chain.add_transition(0, 1, 2 * lam)
    chain.add_transition(1, 0, mu)
    chain.add_transition(1, LOSS, lam)
    return chain


def raid10_chain(lam: float, mu: float, n_pairs: int = 2) -> AbsorbingCTMC:
    """RAID10 as n independent pairs sharing one repair crew per pair.

    Tracks the number of degraded pairs; data is lost when any degraded
    pair loses its survivor.
    """
    _check(lam, mu)
    if n_pairs < 1:
        raise ValueError("need at least one pair")
    chain = AbsorbingCTMC()
    chain.add_state(LOSS, absorbing=True)
    for degraded in range(n_pairs):
        healthy = n_pairs - degraded
        chain.add_transition(degraded, degraded + 1, 2 * lam * healthy)
        if degraded > 0:
            chain.add_transition(degraded, degraded - 1, mu * degraded)
            chain.add_transition(degraded, LOSS, lam * degraded)
    chain.add_transition(n_pairs, n_pairs - 1, mu * n_pairs)
    chain.add_transition(n_pairs, LOSS, lam * n_pairs)
    return chain


def rolo_e_chain(lam: float, mu: float) -> AbsorbingCTMC:
    """The paper's Fig. 8: only the on-duty pair is exposed.

    0 --2λ--> 1 (one duty disk failed) --λ--> loss; 1 --μ--> 0.
    Matches equation (5) exactly.
    """
    return mirrored_pair_chain(lam, mu)


def rolo_p_chain(lam: float, mu: float) -> AbsorbingCTMC:
    """Four-disk RoLo-P chain (the paper's Fig. 6 assumptions).

    Disks: P0, P1 always on; M0 the on-duty logger carrying the second
    copies of both pairs' recent writes; M1 off duty and stale.  The paper
    counts data as lost when its *newest* copy set is destroyed:

    * a primary failure (2λ) exposes that pair's fresh data, which now
      lives only on the on-duty logger and the pair's mirror — either
      failing (2λ) loses data;
    * an on-duty-logger failure (λ) leaves the fresh second copies unique
      on the failed pair's primary P0 (λ);
    * an off-duty-mirror failure (λ) is benign at second order: its pair's
      fresh data still has two copies (P1 and the logger).

    Asymptotically (μ ≫ λ) this solves to μ/5λ², equation (3)'s leading
    term.
    """
    _check(lam, mu)
    chain = AbsorbingCTMC()
    chain.add_state(LOSS, absorbing=True)
    # 0 healthy; 1 one primary down (2 ways); 2 logger M0 down;
    # 3 off-duty mirror M1 down.
    chain.add_transition(0, 1, 2 * lam)
    chain.add_transition(0, 2, lam)
    chain.add_transition(0, 3, lam)
    chain.add_transition(1, 0, mu)
    chain.add_transition(1, LOSS, 2 * lam)
    chain.add_transition(2, 0, mu)
    chain.add_transition(2, LOSS, lam)
    chain.add_transition(3, 0, mu)
    return chain


def rolo_r_chain(lam: float, mu: float) -> AbsorbingCTMC:
    """Four-disk RoLo-R chain (the paper's Fig. 7 assumptions).

    The on-duty pair (P0, M0) both carry the log, so every fresh write has
    three copies (target primary + two log copies).  Exposures:

    * an off-duty disk failing (P1 or M1, 2λ) leaves that pair's *older*
      data mirrored only by its partner — the partner failing (λ) loses it;
    * the logger primary P0 failing (λ) leaves P0's own in-place data
      solely on M0 (λ);
    * M0 failing alone is benign: everything it held also lives on P0's
      log region and the target primaries.

    Asymptotically this solves to μ/3λ², equation (4)'s leading term.
    """
    _check(lam, mu)
    chain = AbsorbingCTMC()
    chain.add_state(LOSS, absorbing=True)
    # 0 healthy; 1 one off-duty disk down (2 ways); 2 logger primary P0
    # down; 3 logger mirror M0 down (benign).
    chain.add_transition(0, 1, 2 * lam)
    chain.add_transition(0, 2, lam)
    chain.add_transition(0, 3, lam)
    chain.add_transition(1, 0, mu)
    chain.add_transition(1, LOSS, lam)
    chain.add_transition(2, 0, mu)
    chain.add_transition(2, LOSS, lam)
    chain.add_transition(3, 0, mu)
    return chain


def graid_chain(lam: float, mu: float) -> AbsorbingCTMC:
    """Five-disk GRAID chain (equation (2) assumptions).

    The dedicated log disk concentrates every fresh second copy:

    * log disk down (λ): any primary failing (2λ) loses fresh data;
    * a primary down (2λ): its fresh data is unique on the log disk (λ);
    * a mirror down (2λ): its pair's older data survives only on the
      primary (λ).

    Asymptotically this solves to μ/6λ² = equation (2)'s leading term
    2μ/12λ².
    """
    _check(lam, mu)
    chain = AbsorbingCTMC()
    chain.add_state(LOSS, absorbing=True)
    # 0 healthy; 1 log disk down; 2 one primary down; 3 one mirror down.
    chain.add_transition(0, 1, lam)
    chain.add_transition(0, 2, 2 * lam)
    chain.add_transition(0, 3, 2 * lam)
    chain.add_transition(1, 0, mu)
    chain.add_transition(1, LOSS, 2 * lam)
    chain.add_transition(2, 0, mu)
    chain.add_transition(2, LOSS, lam)
    chain.add_transition(3, 0, mu)
    chain.add_transition(3, LOSS, lam)
    return chain


CTMC_BUILDERS: Dict[str, Callable[[float, float], AbsorbingCTMC]] = {
    "raid10": lambda lam, mu: raid10_chain(lam, mu, n_pairs=2),
    "graid": graid_chain,
    "rolo-p": rolo_p_chain,
    "rolo-r": rolo_r_chain,
    "rolo-e": rolo_e_chain,
}


def mttdl_ctmc(scheme: str, lam: float, mu: float) -> float:
    """MTTDL in hours from the exact chain solution."""
    try:
        builder = CTMC_BUILDERS[scheme.lower()]
    except KeyError:
        known = ", ".join(sorted(CTMC_BUILDERS))
        raise KeyError(f"unknown scheme {scheme!r}; known: {known}") from None
    return builder(lam, mu).mean_time_to_absorption(0)


# ----------------------------------------------------------------------
# Figure 9
# ----------------------------------------------------------------------
def mttdl_sweep(
    lam: float = 1e-5,
    mttr_days: Iterable[float] = (1, 2, 3, 4, 5, 6, 7),
    schemes: Iterable[str] = ("rolo-r", "raid10", "rolo-p", "graid"),
) -> List[Tuple[float, Dict[str, float]]]:
    """Fig. 9: MTTDL (years) as a function of MTTR (days).

    ``lam`` defaults to the paper's one failure per 10^5 hours.
    """
    rows: List[Tuple[float, Dict[str, float]]] = []
    for days in mttr_days:
        mu = 1.0 / (days * HOURS_PER_DAY)
        values = {
            scheme: mttdl_closed_form(scheme, lam, mu) / HOURS_PER_YEAR
            for scheme in schemes
        }
        rows.append((days, values))
    return rows
