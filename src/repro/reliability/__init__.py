"""Reliability analysis (paper §IV).

* :mod:`repro.reliability.markov` — generic absorbing continuous-time
  Markov chain solver (mean time to absorption).
* :mod:`repro.reliability.mttdl` — the paper's closed-form MTTDL equations
  (1)–(5), chain builders for the state diagrams of Figs. 6–8, and the
  Fig. 9 sweep.
* :mod:`repro.reliability.spin` — spin-cycle derating of the disk failure
  rate (the paper's "combined measure" of MTTDL and disk-spin frequency).
"""

from repro.reliability.markov import AbsorbingCTMC
from repro.reliability.mttdl import (
    MTTDL_CLOSED_FORMS,
    mttdl_closed_form,
    mttdl_ctmc,
    mttdl_sweep,
)
from repro.reliability.spin import SpinDerating

__all__ = [
    "AbsorbingCTMC",
    "MTTDL_CLOSED_FORMS",
    "mttdl_closed_form",
    "mttdl_ctmc",
    "mttdl_sweep",
    "SpinDerating",
]
