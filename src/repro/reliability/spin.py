"""Spin-cycle derating of the disk failure rate.

The paper argues (§IV, Table I) that MTTDL alone is misleading because
frequent spin up/down cycles raise the failure rate λ; IDEMA-style drive
specifications rate drives for a fixed number of start/stop cycles.  The
paper leaves the effect unquantified; this module provides the standard
life-consumption model so the "combined measure" can be computed:

each start/stop cycle consumes ``1 / rated_cycles`` of the drive's start/
stop budget, adding a wear failure rate proportional to the cycle rate.
With zero spin activity the model reduces to the base λ.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.reliability.mttdl import HOURS_PER_YEAR, mttdl_closed_form


@dataclasses.dataclass(frozen=True)
class SpinDerating:
    """Failure-rate adjustment for spin up/down wear.

    ``rated_cycles`` is the drive's rated start/stop count (50,000 for
    typical enterprise drives per IDEMA); ``wear_weight`` scales how much of
    a nominal drive life one full start/stop budget represents (1.0 means
    exhausting the budget doubles λ on average).
    """

    base_lambda_per_hour: float
    rated_cycles: float = 50_000.0
    wear_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.base_lambda_per_hour <= 0:
            raise ValueError("base failure rate must be positive")
        if self.rated_cycles <= 0:
            raise ValueError("rated cycle count must be positive")
        if self.wear_weight < 0:
            raise ValueError("wear weight must be non-negative")

    def effective_lambda(self, spin_cycles_per_hour: float) -> float:
        """λ adjusted for a sustained spin up+down cycle rate."""
        if spin_cycles_per_hour < 0:
            raise ValueError("cycle rate must be non-negative")
        # Half a spin "cycle count" per transition: Table I counts both ups
        # and downs, while ratings count full start/stop cycles.
        full_cycles_per_hour = spin_cycles_per_hour / 2.0
        wear = (
            self.wear_weight
            * self.base_lambda_per_hour
            * (full_cycles_per_hour * HOURS_PER_YEAR * 10 / self.rated_cycles)
        )
        return self.base_lambda_per_hour + wear

    def adjusted_mttdl(
        self,
        scheme: str,
        mu_per_hour: float,
        spin_transitions: int,
        horizon_hours: float,
        n_disks: int,
    ) -> float:
        """Combined measure: MTTDL (hours) with spin-derated λ.

        ``spin_transitions`` is the run's total spin up+down count across
        ``n_disks`` disks over ``horizon_hours`` (the Table I metric).
        """
        if horizon_hours <= 0 or n_disks <= 0:
            raise ValueError("horizon and disk count must be positive")
        per_disk_rate = spin_transitions / n_disks / horizon_hours
        lam = self.effective_lambda(per_disk_rate)
        return mttdl_closed_form(scheme, lam, mu_per_hour)

    def compare(
        self,
        mu_per_hour: float,
        spin_counts: Dict[str, int],
        horizon_hours: float,
        n_disks: int,
    ) -> Dict[str, float]:
        """Spin-adjusted MTTDL (years) for several schemes at once."""
        return {
            scheme: self.adjusted_mttdl(
                scheme, mu_per_hour, count, horizon_hours, n_disks
            )
            / HOURS_PER_YEAR
            for scheme, count in spin_counts.items()
        }
