"""Pinned performance benchmark suite (`rolo bench`).

One source of perf truth for the repository:

* a **pinned scenario matrix** — all five schemes × two synthetic
  workloads, a fault-injected cell, a trace-compilation scenario, a
  long 10⁶-request hot-path replay, and the ``sweep:*`` family (the full
  five-scheme × two-workload matrix executed end-to-end through the
  parallel runner at ``--jobs`` 1/2/4, the repo's first sweep-level
  rather than per-event benchmark) — whose configurations are frozen so
  numbers are comparable across commits (``BENCH_*.json`` files form the
  repo's perf trajectory);
* a **tolerance gate** comparing a fresh run against a committed baseline
  (``benchmarks/baseline.json``), used by CI to fail on events/sec
  regressions; and
* the **micro-kernels** that ``benchmarks/test_bench_micro.py`` wraps with
  pytest-benchmark, so ad-hoc timing loops don't drift from the harness.

The scenario configurations must never change silently: edit them only
together with a baseline refresh (``rolo bench --update-baseline``) and a
note in the PR, otherwise cross-commit comparisons become meaningless.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core import ArrayConfig, build_controller, run_trace
from repro.sim import Simulator
from repro.traces.synthetic import (
    Burstiness,
    SyntheticTraceConfig,
    generate_compiled,
)

KB = 1024
MB = 1024 * KB

#: Report format version (bump on field/meaning changes).
BENCH_SCHEMA_VERSION = 1

#: The five schemes of the paper's main comparison.
SCHEMES = ("raid10", "graid", "rolo-p", "rolo-r", "rolo-e")

#: Matrix workloads (names only; configs are pinned below).
WORKLOADS = ("write-heavy", "mixed")

DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "baseline.json")
DEFAULT_OUT_PATH = "BENCH_10.json"
DEFAULT_TOLERANCE = 0.25

#: Hot-path replay length per mode.
HOTPATH_REQUESTS = {"full": 1_000_000, "quick": 100_000}

#: Single-failure injection time per mode (inside the trace horizon).
FAULT_TIME = {"full": 40.0, "quick": 10.0}

#: Worker counts of the sweep-level scenarios (end-to-end matrix runs
#: through the parallel executor; jobs=1 is the serial reference).
SWEEP_JOBS = (1, 2, 4)

#: ``matrix:*`` cells report best-of-N wall clock: quick-mode cells run
#: in 0.1–0.4 s, where single-shot timing swings ±15% on a busy box.
MATRIX_REPEATS = 5


# ----------------------------------------------------------------------
# Pinned scenario configurations — do not edit without a baseline refresh
# ----------------------------------------------------------------------
def matrix_trace_config(
    workload: str, quick: bool = False
) -> SyntheticTraceConfig:
    """The two pinned matrix workloads (30 s horizon in quick mode)."""
    duration = 30.0 if quick else 120.0
    if workload == "write-heavy":
        return SyntheticTraceConfig(
            duration_s=duration,
            iops=120.0,
            write_ratio=0.95,
            avg_request_bytes=64 * KB,
            size_sigma=0.5,
            footprint_bytes=96 * MB,
            burstiness=Burstiness.HIGH,
            burst_cycle_s=20.0,
            seed=77,
            name="bench-wh",
        )
    if workload == "mixed":
        return SyntheticTraceConfig(
            duration_s=duration,
            iops=80.0,
            write_ratio=0.55,
            avg_request_bytes=32 * KB,
            size_sigma=0.5,
            footprint_bytes=128 * MB,
            read_locality=0.7,
            seed=78,
            name="bench-mx",
        )
    raise ValueError(f"unknown bench workload {workload!r}")


def matrix_array_config() -> ArrayConfig:
    """The pinned array: 4 mirrored pairs at 1% capacity scale."""
    return ArrayConfig(n_pairs=4).scaled(0.01)


def hotpath_trace_config(n_requests: int) -> SyntheticTraceConfig:
    """The long open-loop replay trace (~``n_requests`` arrivals)."""
    return SyntheticTraceConfig(
        duration_s=n_requests / 500.0,
        iops=500.0,
        write_ratio=0.7,
        avg_request_bytes=64 * KB,
        size_sigma=0.5,
        footprint_bytes=256 * MB,
        seed=1234,
        name=f"bench-hotpath-{n_requests}",
    )


# ----------------------------------------------------------------------
# Timed execution
# ----------------------------------------------------------------------
def timed_replay(
    scheme: str,
    trace,
    config: ArrayConfig,
    fault_spec: Optional[str] = None,
    repeats: int = 1,
) -> Dict[str, Any]:
    """Run one simulation and report wall-clock + events/sec.

    The timed window covers controller construction, the replay itself and
    the consistency check — everything a cell costs — but not trace
    generation (measured by the ``compile:`` scenario).  With ``repeats``
    > 1 the cell is replayed that many times and the best (minimum) wall
    clock is reported: short cells on a loaded single-core box otherwise
    swing ±15% run to run, which would drown the regression gate.
    """
    from repro.faults.injector import FaultInjector
    from repro.faults.oracle import ConsistencyOracle
    from repro.faults.schedule import FaultSchedule

    best = None
    for _ in range(max(1, repeats)):
        sim = Simulator()
        started = time.perf_counter()
        if fault_spec is None:
            controller = build_controller(scheme, sim, config)
            metrics = run_trace(controller, trace)
            controller.assert_consistent()
        else:
            oracle = ConsistencyOracle()
            controller = build_controller(scheme, sim, config, oracle=oracle)
            injector = FaultInjector(
                sim, controller, FaultSchedule.parse(fault_spec), oracle=oracle
            )
            injector.arm()
            metrics = run_trace(controller, trace)
            injector._check("end")
        wall = time.perf_counter() - started
        if best is None or wall < best[0]:
            best = (wall, sim, metrics)
    wall, sim, metrics = best
    result = {
        "wall_s": round(wall, 4),
        "events": sim.events_processed,
        "events_per_sec": round(sim.events_processed / wall, 1),
        "requests": metrics.requests,
        "sim_time_s": round(sim.now, 3),
    }
    if repeats > 1:
        result["repeats"] = repeats
    return result


def timed_compile(config: SyntheticTraceConfig) -> Tuple[Any, Dict[str, Any]]:
    """Generate a compiled trace, timing the lowering throughput."""
    started = time.perf_counter()
    trace = generate_compiled(config)
    wall = time.perf_counter() - started
    return trace, {
        "wall_s": round(wall, 4),
        "records": len(trace),
        "records_per_sec": round(len(trace) / wall, 1),
        "column_bytes": trace.nbytes(),
    }


def sweep_cells(quick: bool = False) -> List[Any]:
    """The pinned end-to-end sweep: all five schemes × both workloads.

    These are real experiment cells (the matrix traces and array config
    above), executed through :func:`repro.experiments.parallel` exactly
    as ``rolo run --jobs N`` would — so the scenario measures everything
    a sweep costs: trace generation, shared-memory publication, worker
    fan-out, simulation, and result installation.
    """
    from repro.experiments.runner import synthetic_cell

    config = matrix_array_config()
    return [
        synthetic_cell(
            scheme, matrix_trace_config(workload, quick=quick), config
        )
        for workload in WORKLOADS
        for scheme in SCHEMES
    ]


def sweep_payload_bytes(cells) -> int:
    """Largest parent-to-worker payload (pickled cell + TraceRef).

    This is the number the shared-trace store pins down: it must stay a
    few hundred bytes regardless of trace length, because the columns
    travel through shared memory, not the pickle.
    """
    import pickle

    from repro.traces.shm import SharedTraceStore, available

    if not available():  # pragma: no cover - exotic builds
        return 0
    largest = 0
    with SharedTraceStore() as store:
        refs = {}
        for cell in cells:
            tkey = cell.trace_key()
            if tkey not in refs:
                refs[tkey] = store.publish(cell.build_trace())
            payload = pickle.dumps((cell, refs[tkey]))
            largest = max(largest, len(payload))
    return largest


def timed_sweep(jobs: int, quick: bool = False) -> Dict[str, Any]:
    """Run the pinned sweep cold (no caches) at one worker count.

    ``jobs=1`` executes the cells serially in-process (the reference the
    acceptance speedup is measured against); ``jobs>1`` goes through
    :func:`~repro.experiments.parallel.execute_cells` — shared-memory
    trace store, locality-grouped dispatch and all.  Both paths start
    from a cold in-memory memo with the persistent cache disabled, and
    both leave every cache layer the way they found it.
    """
    import resource

    from repro.experiments import cache as result_cache
    from repro.experiments import parallel, runner

    cells = sweep_cells(quick=quick)
    previous = result_cache.active_cache()
    result_cache.configure(enabled=False)
    runner.clear_cache()
    started = time.perf_counter()
    try:
        if jobs == 1:
            for cell in cells:
                cell.execute()
        else:
            parallel.execute_cells(cells, jobs=jobs)
    finally:
        wall = time.perf_counter() - started
        runner.clear_cache()
        result_cache.configure(
            directory=previous.directory if previous else None,
            enabled=previous is not None,
        )
    return {
        "wall_s": round(wall, 4),
        "jobs": jobs,
        "cells": len(cells),
        "cells_per_sec": round(len(cells) / wall, 3),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "payload_bytes_per_cell": sweep_payload_bytes(cells),
    }


# ----------------------------------------------------------------------
# Instrumentation-overhead family (``overhead:*``)
# ----------------------------------------------------------------------
#: The pinned overhead cell: one scheme × one workload (the mixed shape,
#: longer horizon — see :func:`overhead_trace_config`), replayed under
#: every instrumentation variant so the deltas are attributable to the
#: instrumentation alone.
OVERHEAD_SCHEME = "rolo-r"

#: Instrumentation variants, in execution order.  ``plain`` never touches
#: any observation machinery; ``disabled`` attaches the full stack and
#: detaches it again before the run (the "literally free when off"
#: claim); the rest run with one layer enabled.
OVERHEAD_VARIANTS = (
    "plain",
    "disabled",
    "traced",
    "metered",
    "verified",
    "spanned",
)

#: Wall-clock repeats per variant; the reported figure is the best run
#: (minimum wall), which filters scheduler noise out of a 2% gate.
OVERHEAD_REPEATS = 5

#: Maximum tolerated throughput cost of *disabled* instrumentation
#: relative to the plain run (the tentpole's zero-overhead budget).
OVERHEAD_MAX_DISABLED_COST = 0.02


def overhead_trace_config(quick: bool = False) -> SyntheticTraceConfig:
    """The pinned overhead trace: the mixed workload, longer horizon.

    A 2% gate needs enough events that one-off costs (hook install and
    teardown, the invariant checker's final sweep) amortize away and the
    timer's own noise stays below the budget — the 30 s quick matrix
    horizon is an order of magnitude too short for that.
    """
    duration = 120.0 if quick else 240.0
    return SyntheticTraceConfig(
        duration_s=duration,
        iops=80.0,
        write_ratio=0.55,
        avg_request_bytes=32 * KB,
        size_sigma=0.5,
        footprint_bytes=128 * MB,
        read_locality=0.7,
        seed=79,
        name="bench-oh",
    )


def _overhead_run(
    variant: str, trace, config: ArrayConfig
) -> Tuple[float, int, Any]:
    """One replay of the overhead cell under ``variant`` instrumentation.

    Returns ``(wall_s, events, metrics)``.  Unlike :func:`timed_replay`,
    the timed window covers *only* the replay and the consistency check:
    the specialization contract moves instrumentation cost to run-setup
    time (loop selection, bound-method swaps, fused-hook compilation), so
    setup and teardown deliberately sit outside the window — what is
    measured is the per-event price each variant pays.
    """
    from repro.obs import (
        NULL_TRACER,
        MetricsRegistry,
        RecordingTracer,
        RunInstrumentation,
    )
    from repro.verify.invariants import InvariantChecker

    sim = Simulator()
    instrumentation = None
    checker = None
    if variant == "plain":
        controller = build_controller(OVERHEAD_SCHEME, sim, config)
    elif variant == "disabled":
        # Attach every observe-only layer, then detach it again: the run
        # itself must go through the same specialized no-hook loop and
        # guard-free completion path as ``plain``.
        controller = build_controller(
            OVERHEAD_SCHEME, sim, config, tracer=NULL_TRACER
        )
        probe = RunInstrumentation(sim, controller, MetricsRegistry())
        probe.install()
        probe.uninstall()
        sweep = InvariantChecker()
        sweep.install(sim, controller)
        sweep.uninstall()
    elif variant == "traced":
        controller = build_controller(
            OVERHEAD_SCHEME, sim, config, tracer=RecordingTracer()
        )
    elif variant == "metered":
        controller = build_controller(OVERHEAD_SCHEME, sim, config)
        instrumentation = RunInstrumentation(
            sim, controller, MetricsRegistry()
        )
        instrumentation.install()
    elif variant == "verified":
        controller = build_controller(OVERHEAD_SCHEME, sim, config)
        checker = InvariantChecker()
        checker.install(sim, controller)
    elif variant == "spanned":
        from repro.obs import SpanRecorder

        controller = build_controller(
            OVERHEAD_SCHEME, sim, config, tracer=SpanRecorder()
        )
    else:
        raise ValueError(f"unknown overhead variant {variant!r}")
    started = time.perf_counter()
    metrics = run_trace(controller, trace)
    controller.assert_consistent()
    wall = time.perf_counter() - started
    if instrumentation is not None:
        instrumentation.uninstall()
        instrumentation.harvest()
    if checker is not None:
        checker.uninstall()
    return wall, sim.events_processed, metrics


def timed_overhead(
    quick: bool = False,
    variants: Tuple[str, ...] = OVERHEAD_VARIANTS,
    repeats: int = OVERHEAD_REPEATS,
) -> Dict[str, Dict[str, Any]]:
    """Run the pinned overhead cell under each variant, best-of-N.

    Besides the timing figures every entry carries
    ``metrics_identical`` — whether all variants produced byte-identical
    :class:`~repro.core.metrics.RunMetrics` (the observe-only contract,
    asserted on real bench traffic, not just the unit suites).
    """
    config = matrix_array_config()
    trace = generate_compiled(overhead_trace_config(quick=quick))
    # One untimed warm-up absorbs cold-start costs (allocator growth,
    # code-object caches, page faults) that would otherwise be billed
    # entirely to whichever variant happens to run first.
    _overhead_run(variants[0], trace, config)
    # Repeats are interleaved round-robin rather than per-variant blocks:
    # a host-speed shift between a "plain" block and a "disabled" block
    # would skew the 2% ratio, while round-robin lets every variant
    # sample the same noise window (best-of-N then pairs fairly).
    best: Dict[str, float] = {}
    events: Dict[str, int] = {}
    requests: Dict[str, int] = {}
    digests: Dict[str, str] = {}
    for _ in range(repeats):
        for variant in variants:
            wall, run_events, metrics = _overhead_run(
                variant, trace, config
            )
            if variant not in best or wall < best[variant]:
                best[variant] = wall
            events[variant] = run_events
            requests[variant] = metrics.requests
            digests[variant] = json.dumps(
                metrics.to_dict(), sort_keys=True
            )
    results: Dict[str, Dict[str, Any]] = {}
    for variant in variants:
        results[f"overhead:{variant}"] = {
            "wall_s": round(best[variant], 4),
            "events": events[variant],
            "events_per_sec": round(events[variant] / best[variant], 1),
            "requests": requests[variant],
            "variant": variant,
            "repeats": repeats,
        }
    reference = next(iter(digests.values()), None)
    identical = all(d == reference for d in digests.values())
    for entry in results.values():
        entry["metrics_identical"] = identical
    return results


def overhead_gate(
    results: Dict[str, Dict[str, Any]],
    max_cost: float = OVERHEAD_MAX_DISABLED_COST,
) -> Optional[Dict[str, Any]]:
    """The family's own gate: disabled instrumentation must be free.

    Returns ``None`` when the family did not run (filtered suites).
    Fails when the ``disabled`` variant's throughput falls more than
    ``max_cost`` below ``plain``, or when any variant broke RunMetrics
    byte-identity.
    """
    plain = results.get("overhead:plain")
    disabled = results.get("overhead:disabled")
    if plain is None or disabled is None:
        return None
    ratio = _rate_of(disabled) / _rate_of(plain)
    identical = all(
        entry.get("metrics_identical", True)
        for name, entry in results.items()
        if name.startswith("overhead:")
    )
    return {
        "disabled_vs_plain": round(ratio, 4),
        "max_cost": max_cost,
        "metrics_identical": identical,
        "passed": ratio >= 1.0 - max_cost and identical,
    }


# ----------------------------------------------------------------------
# cProfile dump of a single scenario (CI artifact for the slowest cell)
# ----------------------------------------------------------------------
def slowest_matrix_scenario(
    results: Dict[str, Dict[str, Any]]
) -> Optional[str]:
    """The ``matrix:*`` scenario with the lowest events/sec, if any ran."""
    rates = {
        name: _rate_of(result)
        for name, result in results.items()
        if name.startswith("matrix:") and _rate_of(result) is not None
    }
    if not rates:
        return None
    return min(rates, key=rates.get)


def profile_scenario(
    name: str, quick: bool = False, top: int = 30
) -> str:
    """Re-run one ``matrix:*`` cell under cProfile; return the stats dump.

    The dump lists the ``top`` functions by cumulative time — the CI
    artifact that answers "where did the regression go" without a local
    reproduction.
    """
    import cProfile
    import io
    import pstats

    family, scheme, workload = name.split(":")
    if family != "matrix":
        raise ValueError(f"can only profile matrix scenarios, not {name!r}")
    trace = generate_compiled(matrix_trace_config(workload, quick=quick))
    profile = cProfile.Profile()
    profile.enable()
    timed_replay(scheme, trace, matrix_array_config())
    profile.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return f"# cProfile top-{top} (cumulative) for {name}\n" + stream.getvalue()


def scenario_names(quick: bool = False) -> List[str]:
    """Every scenario the suite runs, in execution order."""
    mode = "quick" if quick else "full"
    names = [
        f"compile:synthetic-{HOTPATH_REQUESTS[mode] // 1000}k"
        if quick
        else "compile:synthetic-1m",
        "hotpath:raid10-100k" if quick else "hotpath:raid10-1m",
    ]
    names += [
        f"matrix:{scheme}:{workload}"
        for workload in WORKLOADS
        for scheme in SCHEMES
    ]
    names.append("fault:rolo-p:write-heavy")
    names += [f"overhead:{variant}" for variant in OVERHEAD_VARIANTS]
    names += [f"sweep:matrix-full:jobs{jobs}" for jobs in SWEEP_JOBS]
    return names


def run_suite(
    quick: bool = False,
    only: Optional[Iterable[str]] = None,
    progress=None,
) -> Dict[str, Dict[str, Any]]:
    """Run the pinned matrix and return ``{scenario: result}``.

    ``only`` restricts the run to scenarios whose name contains any of the
    given substrings (used by tests and targeted investigations — a
    filtered report must not be used as a baseline).  ``progress`` is an
    optional callable receiving one line per completed scenario.
    """
    mode = "quick" if quick else "full"
    filters = tuple(only) if only else ()

    def wanted(name: str) -> bool:
        return not filters or any(f in name for f in filters)

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    results: Dict[str, Dict[str, Any]] = {}
    config = matrix_array_config()

    n = HOTPATH_REQUESTS[mode]
    compile_name = (
        f"compile:synthetic-{n // 1000}k" if quick else "compile:synthetic-1m"
    )
    hotpath_name = "hotpath:raid10-100k" if quick else "hotpath:raid10-1m"
    hotpath_trace = None
    if wanted(compile_name) or wanted(hotpath_name):
        hotpath_trace, compile_result = timed_compile(hotpath_trace_config(n))
        if wanted(compile_name):
            results[compile_name] = compile_result
            note(
                f"{compile_name}: "
                f"{compile_result['records_per_sec']:,.0f} records/s"
            )
    if wanted(hotpath_name):
        results[hotpath_name] = timed_replay("raid10", hotpath_trace, config)
        note(
            f"{hotpath_name}: "
            f"{results[hotpath_name]['events_per_sec']:,.0f} events/s"
        )
    hotpath_trace = None  # release the columns before the matrix

    for workload in WORKLOADS:
        names = [f"matrix:{scheme}:{workload}" for scheme in SCHEMES]
        if not any(wanted(name) for name in names):
            continue
        trace = generate_compiled(matrix_trace_config(workload, quick=quick))
        for scheme, name in zip(SCHEMES, names):
            if not wanted(name):
                continue
            results[name] = timed_replay(
                scheme, trace, config, repeats=MATRIX_REPEATS
            )
            note(f"{name}: {results[name]['events_per_sec']:,.0f} events/s")

    fault_name = "fault:rolo-p:write-heavy"
    if wanted(fault_name):
        trace = generate_compiled(
            matrix_trace_config("write-heavy", quick=quick)
        )
        results[fault_name] = timed_replay(
            "rolo-p",
            trace,
            config,
            fault_spec=f"fail@{FAULT_TIME[mode]:g}:M1",
        )
        note(
            f"{fault_name}: "
            f"{results[fault_name]['events_per_sec']:,.0f} events/s"
        )

    overhead_variants = tuple(
        variant
        for variant in OVERHEAD_VARIANTS
        if wanted(f"overhead:{variant}")
    )
    if overhead_variants:
        for name, result in timed_overhead(
            quick=quick, variants=overhead_variants
        ).items():
            results[name] = result
            note(f"{name}: {result['events_per_sec']:,.0f} events/s")

    for jobs in SWEEP_JOBS:
        name = f"sweep:matrix-full:jobs{jobs}"
        if not wanted(name):
            continue
        results[name] = timed_sweep(jobs, quick=quick)
        note(
            f"{name}: {results[name]['wall_s']:.2f}s wall, "
            f"{results[name]['cells_per_sec']:.2f} cells/s, "
            f"payload {results[name]['payload_bytes_per_cell']} B/cell"
        )
    return results


# ----------------------------------------------------------------------
# Reports, baselines and the regression gate
# ----------------------------------------------------------------------
def build_report(
    results: Dict[str, Dict[str, Any]],
    mode: str,
    comparison: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON report written to ``BENCH_*.json``."""
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "mode": mode,
        "scenarios": results,
    }
    if comparison is not None:
        report["comparison"] = comparison
    return report


def write_report(report: Dict[str, Any], path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(path: str) -> Dict[str, Dict[str, Any]]:
    """Read a baseline's scenario map.

    Accepts both full reports (``{"scenarios": {...}}``) and bare
    scenario maps, so historical snapshots remain usable.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict) and isinstance(data.get("scenarios"), dict):
        return data["scenarios"]
    if isinstance(data, dict):
        return data
    raise ValueError(f"{path}: not a bench baseline")


def _rate_of(result: Dict[str, Any]) -> Optional[float]:
    """The scenario's throughput figure (events/records/cells per sec)."""
    for field in ("events_per_sec", "records_per_sec", "cells_per_sec"):
        value = result.get(field)
        if isinstance(value, (int, float)) and value > 0:
            return float(value)
    return None


def compare(
    results: Dict[str, Dict[str, Any]],
    baseline: Dict[str, Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """Per-scenario throughput ratios vs a baseline, plus the gate verdict.

    A scenario *regresses* when its throughput falls below
    ``baseline * (1 - tolerance)``.  Scenarios present on only one side
    are reported but never gate (matrix growth must not break CI).
    """
    scenarios: Dict[str, Any] = {}
    regressions: List[str] = []
    for name in sorted(set(results) | set(baseline)):
        current = results.get(name)
        base = baseline.get(name)
        if current is None or base is None:
            # A scenario absent from the baseline is *new* — bench families
            # can grow without touching the committed baseline in the same
            # change (it never gates either way).
            scenarios[name] = {
                "status": "new" if current else "only-baseline"
            }
            continue
        cur_rate = _rate_of(current)
        base_rate = _rate_of(base)
        if cur_rate is None or base_rate is None:
            scenarios[name] = {"status": "no-rate"}
            continue
        ratio = cur_rate / base_rate
        entry = {
            "current": cur_rate,
            "baseline": base_rate,
            "speedup": round(ratio, 3),
            "status": "ok",
        }
        if ratio < 1.0 - tolerance:
            entry["status"] = "regression"
            regressions.append(name)
        scenarios[name] = entry
    return {
        "tolerance": tolerance,
        "regressions": regressions,
        "passed": not regressions,
        "scenarios": scenarios,
    }


def format_table(
    results: Dict[str, Dict[str, Any]],
    comparison: Optional[Dict[str, Any]] = None,
) -> str:
    """Human-readable scenario table for terminal output."""
    rows = []
    header = ("scenario", "wall s", "throughput", "vs baseline")
    compared = (comparison or {}).get("scenarios", {})
    for name in sorted(results):
        result = results[name]
        rate = _rate_of(result)
        if "records_per_sec" in result:
            unit = "rec/s"
        elif "cells_per_sec" in result:
            unit = "cells/s"
        else:
            unit = "ev/s"
        entry = compared.get(name, {})
        if "speedup" in entry:
            delta = f"{entry['speedup']:.2f}x"
            if entry.get("status") == "regression":
                delta += " REGRESSION"
        elif entry.get("status") == "new":
            delta = "new"
        else:
            delta = "-"
        if rate:
            magnitude = f"{rate:,.0f}" if rate >= 100 else f"{rate:,.2f}"
            rate_text = f"{magnitude} {unit}"
        else:
            rate_text = "-"
        rows.append(
            (
                name,
                f"{result.get('wall_s', 0.0):.2f}",
                rate_text,
                delta,
            )
        )
    widths = [
        max(len(str(row[i])) for row in rows + [header])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(header))
    ]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(row))
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Cross-run trend analysis (``rolo bench trend BENCH_*.json``)
# ----------------------------------------------------------------------
#: A consecutive-run throughput change beyond this fraction is flagged.
TREND_THRESHOLD = 0.10


def trend(
    paths: List[str], threshold: float = TREND_THRESHOLD
) -> Dict[str, Any]:
    """Per-scenario throughput trajectory across an ordered run sequence.

    ``paths`` are BENCH report files in chronological order (oldest
    first).  For every scenario the rate series is extracted via
    :func:`_rate_of`; each consecutive pair of *present* rates is diffed
    and changes beyond ``threshold`` (either direction) are recorded as
    drifts — regressions when throughput fell, improvements when it rose.
    Scenarios absent from a run simply skip it (families grow over time).
    """
    if len(paths) < 2:
        raise ValueError("trend needs at least two bench reports")
    runs = []
    for path in paths:
        runs.append(
            {
                "path": path,
                "label": os.path.splitext(os.path.basename(path))[0],
                "scenarios": load_baseline(path),
            }
        )
    names: set = set()
    for run in runs:
        names.update(run["scenarios"])
    scenarios: Dict[str, Any] = {}
    flagged: List[str] = []
    for name in sorted(names):
        rates: List[Optional[float]] = []
        for run in runs:
            result = run["scenarios"].get(name)
            rates.append(_rate_of(result) if result is not None else None)
        drifts = []
        previous_index: Optional[int] = None
        for index, rate in enumerate(rates):
            if rate is None:
                continue
            if previous_index is not None:
                previous = rates[previous_index]
                change = (rate - previous) / previous
                if abs(change) > threshold:
                    drifts.append(
                        {
                            "from": runs[previous_index]["label"],
                            "to": runs[index]["label"],
                            "change": round(change, 4),
                            "direction": (
                                "regression" if change < 0 else "improvement"
                            ),
                        }
                    )
            previous_index = index
        scenarios[name] = {"rates": rates, "drifts": drifts}
        if any(d["direction"] == "regression" for d in drifts):
            flagged.append(name)
    return {
        "threshold": threshold,
        "runs": [run["label"] for run in runs],
        "scenarios": scenarios,
        "flagged": flagged,
    }


def format_trend(report: Dict[str, Any]) -> str:
    """Terminal table: one scenario per row, one column per run."""
    labels = report["runs"]
    header = ("scenario", *labels, "drift")
    rows = []
    for name in sorted(report["scenarios"]):
        entry = report["scenarios"][name]
        cells = [
            "-" if rate is None else _fmt_rate(rate)
            for rate in entry["rates"]
        ]
        if entry["drifts"]:
            notes = []
            for drift in entry["drifts"]:
                arrow = "v" if drift["direction"] == "regression" else "^"
                notes.append(f"{arrow}{abs(drift['change']) * 100:.1f}%")
            drift_text = " ".join(notes)
        else:
            drift_text = "-"
        rows.append((name, *cells, drift_text))
    widths = [
        max(len(str(row[i])) for row in rows + [header])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(header))
    ]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(row))
        )
    if report["flagged"]:
        lines.append(
            f"flagged regressions (> {report['threshold'] * 100:.0f}%): "
            + ", ".join(report["flagged"])
        )
    else:
        lines.append(
            f"no drifts beyond {report['threshold'] * 100:.0f}% detected"
        )
    return "\n".join(lines)


def _fmt_rate(rate: float) -> str:
    return f"{rate:,.0f}" if rate >= 100 else f"{rate:,.2f}"


def render_trend_html(report: Dict[str, Any]) -> str:
    """Self-contained HTML trend report with inline SVG trajectories.

    Each scenario's rates are normalized to its first present run so
    heterogeneous magnitudes (engine ev/s vs sweep cells/s) share one
    axis; charts are chunked to the SVG palette width.
    """
    from repro.experiments.report import Series
    from repro.experiments.svg import PALETTE, render_chart_svg

    labels = report["runs"]
    series_list = []
    for name in sorted(report["scenarios"]):
        entry = report["scenarios"][name]
        first = next((r for r in entry["rates"] if r is not None), None)
        if not first:
            continue
        series = Series(
            name=name, x_label="run", y_label="relative throughput"
        )
        for index, rate in enumerate(entry["rates"]):
            if rate is not None:
                series.add(index, rate / first)
        series_list.append(series)
    charts = []
    for start in range(0, len(series_list), len(PALETTE)):
        chunk = series_list[start : start + len(PALETTE)]
        charts.append(
            render_chart_svg(
                chunk, f"throughput vs first run ({chunk[0].name} ...)"
            )
        )
    rows = []
    for name in sorted(report["scenarios"]):
        entry = report["scenarios"][name]
        cells = "".join(
            f"<td>{'-' if rate is None else _fmt_rate(rate)}</td>"
            for rate in entry["rates"]
        )
        drift = (
            " ".join(
                f"<span class={drift['direction']!r}>"
                f"{drift['change'] * 100:+.1f}%</span>"
                for drift in entry["drifts"]
            )
            or "-"
        )
        rows.append(f"<tr><td>{name}</td>{cells}<td>{drift}</td></tr>")
    heads = "".join(f"<th>{label}</th>" for label in labels)
    flagged = (
        ", ".join(report["flagged"]) if report["flagged"] else "none"
    )
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>bench trend</title>
<style>
body {{ font-family: -apple-system, sans-serif; margin: 2rem; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #ccc; padding: 0.3rem 0.6rem;
          text-align: right; }}
td:first-child, th:first-child {{ text-align: left; }}
.regression {{ color: #c0392b; font-weight: bold; }}
.improvement {{ color: #1e8449; }}
</style></head><body>
<h1>Bench trend</h1>
<p>runs: {" &rarr; ".join(labels)} &middot;
threshold: {report["threshold"] * 100:.0f}% &middot;
flagged regressions: {flagged}</p>
<table><tr><th>scenario</th>{heads}<th>drift</th></tr>
{chr(10).join(rows)}
</table>
{chr(10).join(charts)}
</body></html>
"""


def write_trend_html(report: Dict[str, Any], path: str) -> str:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_trend_html(report))
    return path


# ----------------------------------------------------------------------
# Micro-kernels (wrapped by benchmarks/test_bench_micro.py)
# ----------------------------------------------------------------------
def engine_event_kernel(n_events: int = 10_000) -> int:
    """Schedule + dispatch cost of the event heap."""
    sim = Simulator()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < n_events:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count


def timer_rearm_kernel(n_events: int = 100_000) -> Tuple[int, int]:
    """Timer re-arm storm: each event cancels and re-schedules an expiry.

    Exercises lazy deletion, the cancelled census and automatic heap
    compaction.  Returns ``(ticks + expirations, peak_heap)``; only the
    final armed timer ever fires, and compaction keeps ``peak_heap``
    bounded regardless of ``n_events``.
    """
    from repro.sim.engine import Timer

    sim = Simulator()
    count = 0
    fired = 0
    peak_heap = 0

    def on_expire() -> None:
        nonlocal fired
        fired += 1

    timer = Timer(sim, 1.0, on_expire)

    def tick() -> None:
        nonlocal count, peak_heap
        count += 1
        timer.arm()
        if sim.heap_size > peak_heap:
            peak_heap = sim.heap_size
        if count < n_events:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count + fired, peak_heap


def disk_random_io_kernel(n_ops: int = 2_000, seed: int = 1) -> int:
    """Full service path of random 64K writes on one disk."""
    from repro.disk.disk import Disk, DiskOp, OpKind
    from repro.disk.models import ULTRASTAR_36Z15

    rng = random.Random(seed)
    sectors = ULTRASTAR_36Z15.capacity_sectors
    offsets = [rng.randrange(sectors - 200) for _ in range(n_ops)]
    sim = Simulator()
    disk = Disk(sim, ULTRASTAR_36Z15, "D")
    for sector in offsets:
        disk.submit(DiskOp(OpKind.WRITE, sector, 64 * KB))
    sim.run()
    return disk.ops_completed


def layout_mapping_kernel(n_extents: int = 5_000, seed: int = 2) -> int:
    """Extent-to-segment mapping throughput on a spread layout."""
    from repro.raid.layout import Raid10Layout

    layout = Raid10Layout(20, 64 * KB, 512 * MB, spread=True)
    rng = random.Random(seed)
    extents = [
        (rng.randrange(layout.logical_capacity - MB), rng.randrange(1, MB))
        for _ in range(n_extents)
    ]
    total = 0
    for offset, nbytes in extents:
        total += len(layout.map_extent(offset, nbytes))
    return total


def logspace_kernel(epochs: int = 8, appends_per_epoch: int = 200) -> int:
    """Log-region append/reclaim churn; returns final used bytes (0)."""
    from repro.core.logspace import LogRegion

    region = LogRegion("bench", 0, 64 * MB)
    for epoch in range(epochs):
        for i in range(appends_per_epoch):
            region.append(32 * KB, {i % 4: 32 * KB}, epoch)
        for pair in range(4):
            region.reclaim(pair, epoch)
    region.reclaim_all()
    return region.used
