"""Causal span recording: per-request lifecycle with phase decomposition.

:class:`SpanRecorder` extends :class:`~repro.obs.tracer.RecordingTracer`
with *causal* structure: every disk-op span carries the mechanical phase
breakdown of its service interval (seek / rotation / transfer, exact by
construction — the disk's spanned completion path derives them from the
same :class:`~repro.disk.mechanical.MechanicalModel` arithmetic that
costed the op) and a link back to its owner: the admitted
:class:`~repro.raid.request.IORequest` (as a ``rid`` attr) or the
background process that issued it (destage process, parity pump, cache
fill — as a ``proc`` attr).

Owner resolution is zero-cost on the simulation side: controllers hand
disks either a bound method (whose ``__self__`` *is* the owner) or a
closure tagged with ``_span_owner`` at creation time; the recorder walks
that linkage only at completion, so span-traced runs stay byte-identical
to plain runs per the PR 9 contract (``wants_phases`` selects
``Disk._complete_spanned`` at setup time; nothing is tested per-op when
spans are off).

The resulting event stream is a plain list of
:class:`~repro.obs.tracer.TraceEvent` records — the existing JSONL /
Chrome exporters, :mod:`repro.obs.attribution` and the timeline explorer
all consume it unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.tracer import RecordingTracer, TraceEvent


class SpanRecorder(RecordingTracer):
    """A :class:`RecordingTracer` that records causal, phase-decomposed
    disk-op spans.

    Setting :attr:`wants_phases` makes every disk bind its
    ``_complete_spanned`` path at construction, which reports completions
    through :meth:`disk_op_phases` instead of ``disk_op``.  The span
    attrs gain:

    ``seek_s`` / ``rot_s`` / ``transfer_s``
        Mechanical phase durations; their sum equals the span's ``dur``
        exactly (slowdown factors included, transfer is the residual).
    ``rid``
        The owning request's trace id, when the op belongs to an admitted
        foreground request (fan-out edges of one logical I/O share a rid —
        this is the causal join key across disks).
    ``proc``
        The owning background process name (``rolo-p-destage-3``,
        ``rolo5-parity-pump``, ``rolo-e:cache-fill``) when the op is
        background work — the explicit causal edge from a delayed request
        to its interference culprit.
    """

    wants_phases = True

    def __init__(self) -> None:
        super().__init__()
        #: id(request) -> rid for requests currently in flight.  Pooled
        #: request objects recycle ids, so entries live only from admit to
        #: completion (the reverse map makes cleanup O(1)).
        self._rid_by_obj: Dict[int, int] = {}
        self._obj_by_rid: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Request linkage
    # ------------------------------------------------------------------
    def request_admitted(self, rid: int, request: object) -> None:
        key = id(request)
        self._rid_by_obj[key] = rid
        self._obj_by_rid[rid] = key

    def request_completed(self, rid: int, ts: float) -> None:
        super().request_completed(rid, ts)
        key = self._obj_by_rid.pop(rid, None)
        if key is not None and self._rid_by_obj.get(key) == rid:
            del self._rid_by_obj[key]

    # ------------------------------------------------------------------
    # Phase-decomposed disk ops
    # ------------------------------------------------------------------
    def _resolve_owner(self, op: Any) -> Optional[Dict[str, Any]]:
        """Map a completing op to ``{"rid": n}`` or ``{"proc": name}``.

        The op's completion callback is either a bound method (request
        fan-in, destage/pump step) whose ``__self__`` is the owner, or a
        closure tagged ``_span_owner`` at creation.  Raw fire-and-forget
        ops (RoLo-E cache fills) carry a string ``tag`` instead.
        """
        callback = op.on_complete
        owner: Any = None
        if callback is not None:
            owner = getattr(callback, "__self__", None)
            if owner is None:
                owner = getattr(callback, "_span_owner", None)
        if owner is not None:
            rid = self._rid_by_obj.get(id(owner))
            if rid is not None:
                return {"rid": rid}
            name = getattr(owner, "name", None)
            if name is not None:
                return {"proc": name}
        tag = op.tag
        if isinstance(tag, str):
            return {"proc": tag}
        return None

    def disk_op_phases(
        self,
        disk: str,
        kind: str,
        priority: str,
        sector: int,
        nbytes: int,
        submit_ts: float,
        start_ts: float,
        finish_ts: float,
        seek_s: float,
        rot_s: float,
        transfer_s: float,
        op: object,
    ) -> None:
        attrs: Dict[str, Any] = {
            "sector": sector,
            "nbytes": nbytes,
            "queued_s": start_ts - submit_ts,
            "seek_s": seek_s,
            "rot_s": rot_s,
            "transfer_s": transfer_s,
        }
        owner = self._resolve_owner(op)
        if owner is not None:
            attrs.update(owner)
        self._emit(
            TraceEvent(
                ts=start_ts,
                kind="span",
                category="disk_op",
                name=f"{kind}:{priority}",
                track=disk,
                dur=finish_ts - start_ts,
                attrs=attrs,
            )
        )
