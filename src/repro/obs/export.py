"""Trace exporters and readers.

Two on-disk formats:

* **JSONL** — one :class:`~repro.obs.tracer.TraceEvent` dict per line.
  Trivially greppable / pandas-loadable.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format that
  chrome://tracing and Perfetto load directly.  Every disk gets its own
  named thread track (power-state and disk-op spans), array-level requests
  ride a dedicated ``requests`` track, and controller dynamics (rotations,
  destage windows, cycles) land on the scheme's track.  Occupancy/queue
  counters become ``"C"`` (counter) events, which Perfetto renders as
  filled line charts.

``read_events`` auto-detects either format so ``rolo trace summarize``
works on both.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Sequence

from repro.obs.tracer import REQUEST_TRACK, TraceEvent

_PID = 1

#: Chrome flow-event phases (emitted by us, skipped by the reader).
_FLOW_PHASES = ("s", "t", "f")


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write events as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def _track_ids(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """Deterministic track -> tid map: requests first, then sorted names."""
    tracks = sorted({e.track for e in events} - {REQUEST_TRACK})
    ids = {REQUEST_TRACK: 0}
    for i, track in enumerate(tracks, start=1):
        ids[track] = i
    return ids


def to_chrome_trace(events: Sequence[TraceEvent]) -> Dict:
    """Convert events to a Chrome trace-event JSON document (a dict)."""
    tids = _track_ids(events)
    out: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "rolo-sim"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for event in events:
        tid = tids[event.track]
        ts_us = event.ts * 1e6
        if event.kind == "span":
            out.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "X",
                    "ts": ts_us,
                    "dur": event.dur * 1e6,
                    "pid": _PID,
                    "tid": tid,
                    "args": dict(event.attrs),
                }
            )
        elif event.kind == "counter":
            value = event.attrs.get("value", 0.0)
            out.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "C",
                    "ts": ts_us,
                    "pid": _PID,
                    "tid": tid,
                    "args": {"value": value},
                }
            )
        else:
            out.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "i",
                    "s": "t",
                    "ts": ts_us,
                    "pid": _PID,
                    "tid": tid,
                    "args": dict(event.attrs),
                }
            )
    out.extend(_flow_records(events, tids))
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _flow_records(
    events: Sequence[TraceEvent], tids: Dict[str, int]
) -> List[Dict]:
    """Flow events (``ph: "s"/"t"/"f"``) stitching a request's spans
    together across disk tracks.

    Every span carrying a ``rid`` attr (the request span plus its
    constituent disk ops, from a span-traced run) joins that rid's flow;
    rids touching fewer than two spans emit nothing — a flow needs both
    ends.  Perfetto draws these as arrows from the request lane to each
    disk that served part of it.
    """
    by_rid: Dict[int, List[TraceEvent]] = {}
    for event in events:
        if event.kind != "span":
            continue
        rid = event.attrs.get("rid")
        if rid is not None:
            by_rid.setdefault(rid, []).append(event)
    out: List[Dict] = []
    for rid in sorted(by_rid):
        chain = by_rid[rid]
        if len(chain) < 2:
            continue
        chain.sort(key=lambda e: (e.ts, e.track, e.name))
        last = len(chain) - 1
        for i, event in enumerate(chain):
            ph = "s" if i == 0 else ("f" if i == last else "t")
            record = {
                "name": f"rid-{rid}",
                "cat": "request_flow",
                "ph": ph,
                "id": rid,
                "ts": event.ts * 1e6,
                "pid": _PID,
                "tid": tids[event.track],
            }
            if ph == "f":
                record["bp"] = "e"  # bind to the enclosing slice
            out.append(record)
    return out


def write_chrome_trace(events: Sequence[TraceEvent], path: str) -> int:
    """Write Chrome trace-event JSON; returns the event count (sans
    metadata and flow records, which annotate rather than add events)."""
    doc = to_chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    skip = set(_FLOW_PHASES) | {"M"}
    return sum(1 for e in doc["traceEvents"] if e["ph"] not in skip)


def _events_from_chrome(doc: Dict) -> List[TraceEvent]:
    names: Dict[int, str] = {}
    for record in doc.get("traceEvents", []):
        if record.get("ph") == "M" and record.get("name") == "thread_name":
            names[int(record["tid"])] = record["args"]["name"]
    events: List[TraceEvent] = []
    for record in doc.get("traceEvents", []):
        ph = record.get("ph")
        if ph == "M" or ph in _FLOW_PHASES:
            continue
        track = names.get(int(record.get("tid", 0)), str(record.get("tid")))
        ts = float(record.get("ts", 0.0)) / 1e6
        if ph == "X":
            events.append(
                TraceEvent(
                    ts=ts,
                    kind="span",
                    category=record.get("cat", ""),
                    name=record.get("name", ""),
                    track=track,
                    dur=float(record.get("dur", 0.0)) / 1e6,
                    attrs=dict(record.get("args", {})),
                )
            )
        elif ph == "C":
            events.append(
                TraceEvent(
                    ts=ts,
                    kind="counter",
                    category=record.get("cat", "counter"),
                    name=record.get("name", ""),
                    track=track,
                    attrs=dict(record.get("args", {})),
                )
            )
        else:
            events.append(
                TraceEvent(
                    ts=ts,
                    kind="instant",
                    category=record.get("cat", ""),
                    name=record.get("name", ""),
                    track=track,
                    attrs=dict(record.get("args", {})),
                )
            )
    return events


def read_events(path: str) -> Iterator[TraceEvent]:
    """Stream a saved trace, auto-detecting Chrome JSON vs JSONL.

    Returns a generator.  JSONL traces (the hot case for multi-million
    event runs) are decoded line by line so summarizing never
    materializes the file; only Chrome documents — a single JSON object
    with a ``traceEvents`` key — fall back to a whole-file parse.
    Detection reads just the first line: a line that parses to a
    complete event dict means JSONL; a ``traceEvents`` wrapper or a
    partial line (pretty-printed JSON) means Chrome.
    """
    with open(path) as fh:
        first = fh.readline()
        stripped = first.strip()
        doc = None
        if stripped:
            try:
                doc = json.loads(stripped)
            except json.JSONDecodeError:
                doc = None
        if isinstance(doc, dict) and "traceEvents" not in doc and "ts" in doc:
            # JSON Lines: stream the rest without buffering the file.
            yield TraceEvent.from_dict(doc)
            for line in fh:
                line = line.strip()
                if line:
                    yield TraceEvent.from_dict(json.loads(line))
            return
        # Chrome trace (possibly pretty-printed): needs the whole document.
        text = first + fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        yield from _events_from_chrome(doc)
        return
    # Degenerate JSONL (e.g. an empty or comment-free fragment): fall back
    # to line-wise decoding of what we buffered.
    for line in text.splitlines():
        line = line.strip()
        if line:
            yield TraceEvent.from_dict(json.loads(line))


# ----------------------------------------------------------------------
# Summaries (``rolo trace summarize``)
# ----------------------------------------------------------------------
def summarize_events(events: Iterable[TraceEvent]) -> str:
    """Human-readable cycle/rotation timeline plus per-category totals.

    Single pass over any iterable (including the :func:`read_events`
    generator), so multi-million-event JSONL traces summarize in O(1)
    memory: only the aggregates and the (small) controller timeline are
    retained.  Span-traced runs additionally report phase totals —
    queue / seek / rotation / transfer seconds summed across disk ops.
    """
    lines: List[str] = []
    counts: Dict[str, int] = {}
    total = 0
    ts_lo = ts_hi = None
    residency: Dict[str, Dict[str, float]] = {}
    phase_totals = {
        "queued": 0.0, "seek": 0.0, "rotation": 0.0, "transfer": 0.0
    }
    phased_ops = 0
    timeline: List[TraceEvent] = []
    for event in events:
        total += 1
        counts[event.category] = counts.get(event.category, 0) + 1
        end = event.ts + event.dur
        ts_lo = event.ts if ts_lo is None else min(ts_lo, event.ts)
        ts_hi = end if ts_hi is None else max(ts_hi, end)
        if event.kind == "span":
            if event.category == "power":
                states = residency.setdefault(event.track, {})
                states[event.name] = states.get(event.name, 0.0) + event.dur
            elif event.category == "disk_op" and "seek_s" in event.attrs:
                attrs = event.attrs
                phase_totals["queued"] += float(attrs.get("queued_s", 0.0))
                phase_totals["seek"] += float(attrs.get("seek_s", 0.0))
                phase_totals["rotation"] += float(attrs.get("rot_s", 0.0))
                phase_totals["transfer"] += float(
                    attrs.get("transfer_s", 0.0)
                )
                phased_ops += 1
        if event.category in (
            "rotation", "destage", "cycle", "deactivation"
        ):
            timeline.append(event)
    span = (ts_hi - ts_lo) if ts_lo is not None else 0.0
    lines.append(
        f"trace: {total} events over {span:.3f}s virtual time"
    )
    lines.append("events by category:")
    for category in sorted(counts):
        lines.append(f"  {category:10s} {counts[category]}")

    if phased_ops:
        lines.append(
            f"span phases over {phased_ops} disk ops (seconds):"
        )
        lines.append(
            "  "
            + " ".join(
                f"{name}={phase_totals[name]:.3f}"
                for name in ("queued", "seek", "rotation", "transfer")
            )
        )

    if residency:
        lines.append("power-state residency (seconds):")
        for track in sorted(residency):
            states = residency[track]
            parts = " ".join(
                f"{name}={states[name]:.2f}" for name in sorted(states)
            )
            lines.append(f"  {track:8s} {parts}")

    # Chronological controller timeline (collected in the single pass).
    timeline.sort(key=lambda e: (e.ts, e.category, e.name))
    if timeline:
        lines.append("cycle/rotation timeline:")
        for event in timeline:
            detail = " ".join(
                f"{k}={event.attrs[k]}" for k in sorted(event.attrs)
            )
            if event.kind == "span":
                lines.append(
                    f"  t={event.ts:10.3f}s  {event.category}:{event.name}"
                    f"  dur={event.dur:.3f}s  {detail}".rstrip()
                )
            else:
                lines.append(
                    f"  t={event.ts:10.3f}s  {event.category}:{event.name}"
                    f"  {detail}".rstrip()
                )
    return "\n".join(lines)
