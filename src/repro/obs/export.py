"""Trace exporters and readers.

Two on-disk formats:

* **JSONL** — one :class:`~repro.obs.tracer.TraceEvent` dict per line.
  Trivially greppable / pandas-loadable.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format that
  chrome://tracing and Perfetto load directly.  Every disk gets its own
  named thread track (power-state and disk-op spans), array-level requests
  ride a dedicated ``requests`` track, and controller dynamics (rotations,
  destage windows, cycles) land on the scheme's track.  Occupancy/queue
  counters become ``"C"`` (counter) events, which Perfetto renders as
  filled line charts.

``read_events`` auto-detects either format so ``rolo trace summarize``
works on both.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.obs.tracer import REQUEST_TRACK, TraceEvent

_PID = 1


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write events as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def _track_ids(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """Deterministic track -> tid map: requests first, then sorted names."""
    tracks = sorted({e.track for e in events} - {REQUEST_TRACK})
    ids = {REQUEST_TRACK: 0}
    for i, track in enumerate(tracks, start=1):
        ids[track] = i
    return ids


def to_chrome_trace(events: Sequence[TraceEvent]) -> Dict:
    """Convert events to a Chrome trace-event JSON document (a dict)."""
    tids = _track_ids(events)
    out: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "rolo-sim"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for event in events:
        tid = tids[event.track]
        ts_us = event.ts * 1e6
        if event.kind == "span":
            out.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "X",
                    "ts": ts_us,
                    "dur": event.dur * 1e6,
                    "pid": _PID,
                    "tid": tid,
                    "args": dict(event.attrs),
                }
            )
        elif event.kind == "counter":
            value = event.attrs.get("value", 0.0)
            out.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "C",
                    "ts": ts_us,
                    "pid": _PID,
                    "tid": tid,
                    "args": {"value": value},
                }
            )
        else:
            out.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "i",
                    "s": "t",
                    "ts": ts_us,
                    "pid": _PID,
                    "tid": tid,
                    "args": dict(event.attrs),
                }
            )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[TraceEvent], path: str) -> int:
    """Write Chrome trace-event JSON; returns the event count (sans
    metadata records)."""
    doc = to_chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return sum(1 for e in doc["traceEvents"] if e["ph"] != "M")


def _events_from_chrome(doc: Dict) -> List[TraceEvent]:
    names: Dict[int, str] = {}
    for record in doc.get("traceEvents", []):
        if record.get("ph") == "M" and record.get("name") == "thread_name":
            names[int(record["tid"])] = record["args"]["name"]
    events: List[TraceEvent] = []
    for record in doc.get("traceEvents", []):
        ph = record.get("ph")
        if ph == "M":
            continue
        track = names.get(int(record.get("tid", 0)), str(record.get("tid")))
        ts = float(record.get("ts", 0.0)) / 1e6
        if ph == "X":
            events.append(
                TraceEvent(
                    ts=ts,
                    kind="span",
                    category=record.get("cat", ""),
                    name=record.get("name", ""),
                    track=track,
                    dur=float(record.get("dur", 0.0)) / 1e6,
                    attrs=dict(record.get("args", {})),
                )
            )
        elif ph == "C":
            events.append(
                TraceEvent(
                    ts=ts,
                    kind="counter",
                    category=record.get("cat", "counter"),
                    name=record.get("name", ""),
                    track=track,
                    attrs=dict(record.get("args", {})),
                )
            )
        else:
            events.append(
                TraceEvent(
                    ts=ts,
                    kind="instant",
                    category=record.get("cat", ""),
                    name=record.get("name", ""),
                    track=track,
                    attrs=dict(record.get("args", {})),
                )
            )
    return events


def read_events(path: str) -> List[TraceEvent]:
    """Load a saved trace, auto-detecting Chrome JSON vs JSONL.

    Both formats start with ``{``, so detection parses rather than
    sniffs: a document that is one JSON object with a ``traceEvents``
    key is Chrome format; anything else is treated as JSON Lines.
    """
    with open(path) as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _events_from_chrome(doc)
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Summaries (``rolo trace summarize``)
# ----------------------------------------------------------------------
def summarize_events(events: Sequence[TraceEvent]) -> str:
    """Human-readable cycle/rotation timeline plus per-category totals."""
    lines: List[str] = []
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.category] = counts.get(event.category, 0) + 1
    span = (
        max((e.ts + e.dur for e in events), default=0.0)
        - min((e.ts for e in events), default=0.0)
    )
    lines.append(
        f"trace: {len(events)} events over {span:.3f}s virtual time"
    )
    lines.append("events by category:")
    for category in sorted(counts):
        lines.append(f"  {category:10s} {counts[category]}")

    # Power-state residency per disk track.
    residency: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.category == "power" and event.kind == "span":
            residency.setdefault(event.track, {})
            residency[event.track][event.name] = (
                residency[event.track].get(event.name, 0.0) + event.dur
            )
    if residency:
        lines.append("power-state residency (seconds):")
        for track in sorted(residency):
            states = residency[track]
            parts = " ".join(
                f"{name}={states[name]:.2f}" for name in sorted(states)
            )
            lines.append(f"  {track:8s} {parts}")

    # Chronological controller timeline.
    timeline = [
        e
        for e in events
        if e.category in ("rotation", "destage", "cycle", "deactivation")
    ]
    timeline.sort(key=lambda e: (e.ts, e.category, e.name))
    if timeline:
        lines.append("cycle/rotation timeline:")
        for event in timeline:
            detail = " ".join(
                f"{k}={event.attrs[k]}" for k in sorted(event.attrs)
            )
            if event.kind == "span":
                lines.append(
                    f"  t={event.ts:10.3f}s  {event.category}:{event.name}"
                    f"  dur={event.dur:.3f}s  {detail}".rstrip()
                )
            else:
                lines.append(
                    f"  t={event.ts:10.3f}s  {event.category}:{event.name}"
                    f"  {detail}".rstrip()
                )
    return "\n".join(lines)
