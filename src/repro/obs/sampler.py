"""Fixed-cadence time-series sampling of a live simulation.

A :class:`TimeSeriesSampler` schedules itself on the simulator at a fixed
virtual-time interval and records queue depth, per-role instantaneous
power draw, and log-space occupancy — the raw material for plotting the
idle-slot structure of Fig. 3 and the sawtooth occupancy of Fig. 2.

Sampling is read-only: callbacks never mutate controller or disk state,
so a sampled run's metrics are identical to an unsampled one.  The
sampler re-arms itself only while the simulation still has foreign events
pending, so it never keeps ``Simulator.run`` alive on its own.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import TYPE_CHECKING, Any, Dict, List

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.core.base import Controller


@dataclasses.dataclass
class Sample:
    """One instant's observation of the array."""

    ts: float
    #: Queued (not yet in service) operations across all disks.
    queue_depth: int
    #: Operations currently in service across all disks.
    in_service: int
    #: Disks currently spun up (ACTIVE or IDLE).
    spun_up: int
    #: Instantaneous power draw by disk role (watts).
    power_w: Dict[str, float]
    #: Mean and max log-region occupancy across the scheme's regions
    #: (both 0.0 for schemes without logging space).
    log_occupancy_mean: float
    log_occupancy_max: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ts": self.ts,
            "queue_depth": self.queue_depth,
            "in_service": self.in_service,
            "spun_up": self.spun_up,
            "power_w": dict(self.power_w),
            "log_occupancy_mean": self.log_occupancy_mean,
            "log_occupancy_max": self.log_occupancy_max,
        }


class TimeSeriesSampler:
    """Samples a controller at a fixed virtual-time cadence."""

    def __init__(
        self,
        sim: Simulator,
        controller: "Controller",
        interval: float,
    ) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.controller = controller
        self.interval = interval
        self.samples: List[Sample] = []
        self._started = False

    def start(self) -> None:
        """Begin sampling at the current instant."""
        self._started = True
        self.sim.schedule(0.0, self._tick, label="sampler")

    def _tick(self) -> None:
        if self.sim.peek() is None:
            # This tick is the last event in the queue: the run is over,
            # so record nothing and let the queue drain.  (The clock still
            # lands on this tick's time — at most one interval past the
            # last foreign event — which is why metric windows close at
            # trace completion, not at queue exhaustion.)
            return
        self.samples.append(self.observe())
        self.sim.schedule(self.interval, self._tick, label="sampler")

    def observe(self) -> Sample:
        """Take one sample right now (also usable without scheduling)."""
        controller = self.controller
        now = self.sim.now
        queue_depth = 0
        in_service = 0
        spun_up = 0
        power_w: Dict[str, float] = {}
        for role, disks in controller.disks_by_role().items():
            watts = 0.0
            for disk in disks:
                queue_depth += disk.queue_depth
                in_service += 1 if disk.busy else 0
                spun_up += 1 if disk.state.spun_up else 0
                watts += disk.power.draw(disk.state)
            power_w[role] = watts
        occupancies = [
            region.occupancy for region in controller.log_regions()
        ]
        return Sample(
            ts=now,
            queue_depth=queue_depth,
            in_service=in_service,
            spun_up=spun_up,
            power_w=power_w,
            log_occupancy_mean=(
                sum(occupancies) / len(occupancies) if occupancies else 0.0
            ),
            log_occupancy_max=max(occupancies, default=0.0),
        )

    # ------------------------------------------------------------------
    def to_jsonl(self, path: str) -> int:
        """Write samples as JSON Lines; returns the number written."""
        _ensure_parent(path)
        with open(path, "w") as fh:
            for sample in self.samples:
                fh.write(json.dumps(sample.to_dict(), sort_keys=True))
                fh.write("\n")
        return len(self.samples)

    def to_csv(self, path: str) -> int:
        """Write samples as CSV (power columns per role, sorted)."""
        roles = sorted(
            {role for s in self.samples for role in s.power_w}
        )
        header = (
            ["ts", "queue_depth", "in_service", "spun_up"]
            + [f"power_w_{role}" for role in roles]
            + ["log_occupancy_mean", "log_occupancy_max"]
        )
        _ensure_parent(path)
        with open(path, "w") as fh:
            fh.write(",".join(header) + "\n")
            for s in self.samples:
                row = [
                    repr(s.ts),
                    str(s.queue_depth),
                    str(s.in_service),
                    str(s.spun_up),
                ]
                row += [repr(s.power_w.get(role, 0.0)) for role in roles]
                row += [
                    repr(s.log_occupancy_mean),
                    repr(s.log_occupancy_max),
                ]
                fh.write(",".join(row) + "\n")
        return len(self.samples)

    def summary(self) -> str:
        """One-line digest for CLI output."""
        if not self.samples:
            return "samples: none collected"
        depth_peak = max(s.queue_depth for s in self.samples)
        occ_peak = max(s.log_occupancy_max for s in self.samples)
        watts = [sum(s.power_w.values()) for s in self.samples]
        return (
            f"samples: {len(self.samples)} @ {self.interval}s  "
            f"peak_queue={depth_peak}  "
            f"mean_power={sum(watts) / len(watts):.1f}W  "
            f"peak_log_occupancy={occ_peak:.2%}"
        )


def _ensure_parent(path: str) -> None:
    """Create the exporter target's parent directories (like the trace
    exporters' snapshot paths, deep output locations just work)."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
