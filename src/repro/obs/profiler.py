"""Run profiling: wall time, event throughput, per-cell timing.

Two layers:

* :class:`SimulatorProbe` — wraps one simulation, timing wall-clock
  execution and (via the engine's event hook) counting dispatched events
  by label.  The hook only exists while the probe is active, so unprofiled
  runs keep the engine's optimized zero-instrumentation loop.
* :class:`CellProfile` / :class:`ProfileReport` — per-experiment-cell
  timing collected by :func:`repro.experiments.parallel.execute_cells`.
  Workers measure their own cells and ship the numbers back with the
  metrics; the parent merges them in deterministic (label-sorted) order.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional

from repro.sim.engine import Simulator


@dataclasses.dataclass
class RunProfile:
    """Profile of one simulation run."""

    wall_s: float = 0.0
    events: int = 0
    sim_time_s: float = 0.0
    label_counts: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_s": self.wall_s,
            "events": self.events,
            "sim_time_s": self.sim_time_s,
            "label_counts": dict(self.label_counts),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunProfile":
        return cls(
            wall_s=float(data["wall_s"]),
            events=int(data["events"]),
            sim_time_s=float(data["sim_time_s"]),
            label_counts={
                str(k): int(v)
                for k, v in data.get("label_counts", {}).items()
            },
        )

    def report(self) -> str:
        lines = [
            f"wall={self.wall_s:.3f}s  events={self.events}  "
            f"rate={self.events_per_s:,.0f} ev/s  "
            f"sim_time={self.sim_time_s:.2f}s"
        ]
        if self.label_counts:
            lines.append("events by label:")
            ordered = sorted(
                self.label_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
            for label, count in ordered:
                lines.append(f"  {label:24s} {count}")
        return "\n".join(lines)


class SimulatorProbe:
    """Context manager instrumenting one :class:`Simulator` run.

    While active, an event hook on the simulator counts dispatched events
    by label (``rolo-e:poll``, ``M3:io``, ``arrival``, ...).  On exit the
    hook is removed, restoring the uninstrumented run loop.
    """

    def __init__(self, sim: Simulator, count_labels: bool = True) -> None:
        self.sim = sim
        self.count_labels = count_labels
        self.profile = RunProfile()
        self._events_before = 0
        self._t0 = 0.0

    def __enter__(self) -> "SimulatorProbe":
        self._events_before = self.sim.events_processed
        self._hook = None
        if self.count_labels:
            counts = self.profile.label_counts

            def _hook(event) -> None:
                label = event.label or "(unlabeled)"
                counts[label] = counts.get(label, 0) + 1

            self._hook = _hook
            self.sim.add_event_observer(_hook)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.profile.wall_s = time.perf_counter() - self._t0
        if self._hook is not None:
            self.sim.remove_event_observer(self._hook)
            self._hook = None
        self.profile.events = self.sim.events_processed - self._events_before
        self.profile.sim_time_s = self.sim.now


@dataclasses.dataclass
class CellProfile:
    """Timing of one experiment cell (one scheme x trace simulation)."""

    label: str
    wall_s: float = 0.0
    events: int = 0
    sim_time_s: float = 0.0
    #: "computed" (fresh simulation) or "cached" (served from a cache
    #: layer; wall/events are zero because nothing ran).
    source: str = "computed"

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "wall_s": self.wall_s,
            "events": self.events,
            "sim_time_s": self.sim_time_s,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellProfile":
        return cls(
            label=str(data["label"]),
            wall_s=float(data["wall_s"]),
            events=int(data["events"]),
            sim_time_s=float(data["sim_time_s"]),
            source=str(data.get("source", "computed")),
        )


@dataclasses.dataclass
class ProfileReport:
    """Merged per-cell profiles for one experiment invocation."""

    cells: List[CellProfile] = dataclasses.field(default_factory=list)

    def add(self, cell: CellProfile) -> None:
        self.cells.append(cell)

    def finalize(self) -> None:
        """Deterministic ordering regardless of pool completion order."""
        self.cells.sort(key=lambda c: (c.source, c.label))

    @property
    def computed(self) -> List[CellProfile]:
        return [c for c in self.cells if c.source == "computed"]

    def render(self) -> str:
        self.finalize()
        computed = self.computed
        lines = ["[profile] per-cell timing:"]
        if not self.cells:
            lines.append("  (no cells)")
            return "\n".join(lines)
        width = max(len(c.label) for c in self.cells)
        for cell in self.cells:
            if cell.source == "computed":
                lines.append(
                    f"  {cell.label:{width}s}  wall={cell.wall_s:8.3f}s  "
                    f"events={cell.events:>9d}  "
                    f"rate={cell.events_per_s:>12,.0f} ev/s"
                )
            else:
                lines.append(f"  {cell.label:{width}s}  cached")
        if computed:
            wall = sum(c.wall_s for c in computed)
            events = sum(c.events for c in computed)
            rate = events / wall if wall > 0 else 0.0
            lines.append(
                f"  total: {len(computed)} computed / "
                f"{len(self.cells) - len(computed)} cached  "
                f"cell_wall={wall:.3f}s  events={events}  "
                f"rate={rate:,.0f} ev/s"
            )
        else:
            lines.append(
                f"  total: 0 computed / {len(self.cells)} cached"
            )
        return "\n".join(lines)


def merge_label_counts(
    into: Dict[str, int], counts: Optional[Dict[str, int]]
) -> None:
    """Accumulate one run's label counts into an aggregate dict."""
    if not counts:
        return
    for label, count in counts.items():
        into[label] = into.get(label, 0) + count
