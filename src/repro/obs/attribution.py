"""Critical-path latency attribution over causal span streams.

Consumes the :class:`~repro.obs.spans.SpanRecorder` event stream and
decomposes every request's measured response time into six phases::

    queue + spinup + interference + seek + rotation + transfer == measured

The decomposition follows the request's *critical operation* — the
constituent disk op whose completion fired the fan-in last (for a
mirrored write, the slower copy; for a logged write, the log append if it
finished last).  Its mechanical phases come straight from the span attrs
(``seek_s``/``rot_s``/``transfer_s``, exact by construction).  The wait
window ``[submit, start]`` on the critical disk is then split causally:

* ``spinup`` — overlap with the disk's ``spinning_up`` power spans (the
  RoLo-E read-miss penalty, §III-D);
* ``interference`` — overlap with *background* op service on the same
  disk (destage batches, parity pumps, cache fills stealing the arm);
* ``queue`` — the residual: foreground queueing plus any controller-side
  delay between arrival and submission.

Because ``queue`` is a residual, the six phases sum to the measured
latency exactly (within float rounding), which is what the acceptance
tests assert.  Requests that completed without issuing any disk op (e.g.
fully cache-served reads) attribute everything to ``queue``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.tracer import TraceEvent

#: Phase keys, in presentation order.
PHASES = (
    "queue",
    "spinup",
    "interference",
    "seek",
    "rotation",
    "transfer",
)

#: Default report quantiles (matches ``experiments.runreport``).
ATTRIBUTION_QUANTILES = (0.5, 0.95, 0.99)


@dataclasses.dataclass
class RequestAttribution:
    """One request's latency decomposition."""

    rid: int
    kind: str
    arrival: float
    measured: float
    #: phase -> seconds; keys are exactly :data:`PHASES`.
    phases: Dict[str, float]
    #: Disk that served the critical operation (None for zero-op requests).
    disk: Optional[str] = None
    #: Name of the causal culprit behind the largest non-service wait
    #: component: ``"spin-up:<disk>"`` or a background process name.
    culprit: Optional[str] = None

    def fractions(self) -> Dict[str, float]:
        """Phase fractions of measured latency (all zero when measured
        is zero)."""
        if self.measured <= 0:
            return {phase: 0.0 for phase in PHASES}
        return {
            phase: self.phases[phase] / self.measured for phase in PHASES
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rid": self.rid,
            "kind": self.kind,
            "arrival": self.arrival,
            "measured_s": self.measured,
            "phases": dict(self.phases),
            "disk": self.disk,
            "culprit": self.culprit,
        }


def _overlap(lo: float, hi: float, spans: List[Tuple[float, float]]) -> float:
    total = 0.0
    for start, end in spans:
        o = min(hi, end) - max(lo, start)
        if o > 0:
            total += o
    return total


def attribute_events(
    events: Iterable[TraceEvent],
) -> List[RequestAttribution]:
    """Decompose every request span in ``events`` (ordered by rid).

    ``events`` must come from a span-traced run (disk-op spans carrying
    ``seek_s``/``rot_s``/``transfer_s`` and ``rid``/``proc`` attrs); a
    plain-traced stream yields all-queue attributions, which is honest
    but useless.
    """
    requests: List[TraceEvent] = []
    ops_by_rid: Dict[int, List[TraceEvent]] = {}
    spinup_by_disk: Dict[str, List[Tuple[float, float]]] = {}
    background_by_disk: Dict[str, List[Tuple[float, float, str]]] = {}
    for event in events:
        if event.kind != "span":
            continue
        if event.category == "request":
            requests.append(event)
        elif event.category == "disk_op":
            rid = event.attrs.get("rid")
            if rid is not None:
                ops_by_rid.setdefault(rid, []).append(event)
            if event.name.endswith(":background"):
                background_by_disk.setdefault(event.track, []).append(
                    (
                        event.ts,
                        event.ts + event.dur,
                        str(event.attrs.get("proc", "background")),
                    )
                )
        elif event.category == "power" and event.name == "spinning_up":
            spinup_by_disk.setdefault(event.track, []).append(
                (event.ts, event.ts + event.dur)
            )

    out: List[RequestAttribution] = []
    for req in requests:
        rid = req.attrs.get("rid")
        measured = req.dur
        phases = {phase: 0.0 for phase in PHASES}
        disk: Optional[str] = None
        culprit: Optional[str] = None
        ops = ops_by_rid.get(rid)
        if ops:
            critical = max(ops, key=lambda e: (e.ts + e.dur, e.ts))
            disk = critical.track
            attrs = critical.attrs
            seek = float(attrs.get("seek_s", 0.0))
            rot = float(attrs.get("rot_s", 0.0))
            transfer = float(attrs.get("transfer_s", critical.dur))
            submit = critical.ts - float(attrs.get("queued_s", 0.0))
            start = critical.ts
            spinup = _overlap(
                submit, start, spinup_by_disk.get(disk, [])
            )
            interference = 0.0
            worst_overlap = 0.0
            worst_proc: Optional[str] = None
            for b_lo, b_hi, proc in background_by_disk.get(disk, []):
                o = min(start, b_hi) - max(submit, b_lo)
                if o > 0:
                    interference += o
                    if o > worst_overlap:
                        worst_overlap = o
                        worst_proc = proc
            phases["seek"] = seek
            phases["rotation"] = rot
            phases["transfer"] = transfer
            phases["spinup"] = spinup
            phases["interference"] = interference
            if spinup > 0 and spinup >= interference:
                culprit = f"spin-up:{disk}"
            elif worst_proc is not None:
                culprit = worst_proc
        # Residual: controller-side delay + foreground queueing.  By
        # construction it is non-negative (up to float rounding) and
        # makes the six phases sum to the measured latency exactly.
        phases["queue"] = measured - sum(
            phases[p] for p in PHASES if p != "queue"
        )
        out.append(
            RequestAttribution(
                rid=rid if rid is not None else -1,
                kind=req.name,
                arrival=req.ts,
                measured=measured,
                phases=phases,
                disk=disk,
                culprit=culprit,
            )
        )
    out.sort(key=lambda a: a.rid)
    return out


def _quantile_entry(
    ranked: List[RequestAttribution], q: float
) -> Dict[str, Any]:
    # Nearest-rank: the breakdown reported for p95 is a *real* request's
    # decomposition, so phases still sum to its measured latency exactly.
    n = len(ranked)
    index = min(n - 1, max(0, math.ceil(q * n) - 1))
    pick = ranked[index]
    return {
        "latency_s": pick.measured,
        "rid": pick.rid,
        "disk": pick.disk,
        "culprit": pick.culprit,
        "phases": dict(pick.phases),
        "fractions": pick.fractions(),
    }


def attribution_summary(
    attributions: List[RequestAttribution],
    quantiles: Tuple[float, ...] = ATTRIBUTION_QUANTILES,
) -> Dict[str, Any]:
    """Aggregate per-request decompositions into a report-ready summary.

    ``quantiles`` entries pick the nearest-rank request by measured
    latency and report *that request's* exact breakdown; ``mean`` sums
    phases across all requests (so its phases sum to the mean latency).
    """
    if not attributions:
        return {"count": 0, "mean": None, "quantiles": {}}
    ranked = sorted(attributions, key=lambda a: a.measured)
    n = len(ranked)
    mean_phases = {
        phase: sum(a.phases[phase] for a in ranked) / n for phase in PHASES
    }
    mean_latency = sum(a.measured for a in ranked) / n
    mean_fractions = (
        {p: v / mean_latency for p, v in mean_phases.items()}
        if mean_latency > 0
        else {p: 0.0 for p in PHASES}
    )
    return {
        "count": n,
        "mean": {
            "latency_s": mean_latency,
            "phases": mean_phases,
            "fractions": mean_fractions,
        },
        "quantiles": {
            f"p{int(q * 100)}": _quantile_entry(ranked, q)
            for q in quantiles
        },
    }


def slowest_requests(
    attributions: List[RequestAttribution], k: int
) -> List[RequestAttribution]:
    """The ``k`` slowest requests, slowest first (explorer drill-down)."""
    return sorted(attributions, key=lambda a: -a.measured)[:k]


def format_attribution(summary: Dict[str, Any]) -> str:
    """Plain-text rendering of :func:`attribution_summary` for the CLI."""
    if not summary.get("count"):
        return "no requests attributed"
    lines = [
        f"{summary['count']} requests attributed",
        "  phase fractions (of measured latency):",
    ]
    header = "    {:<6}".format("")
    header += "".join(f"{p:>14}" for p in PHASES)
    header += f"{'latency_ms':>14}"
    lines.append(header)
    rows = [("mean", summary["mean"])]
    rows.extend(sorted(summary["quantiles"].items()))
    for label, entry in rows:
        row = f"    {label:<6}"
        row += "".join(
            f"{entry['fractions'][p]:>13.1%} " for p in PHASES
        )
        row += f"{entry['latency_s'] * 1e3:>13.3f} "
        lines.append(row.rstrip())
    return "\n".join(lines)
