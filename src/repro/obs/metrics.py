"""Process-wide-optional metrics registry: counters, gauges, histograms.

RoLo's claims are distributional — §IV argues energy savings must not cost
tail response time — so the repo needs percentile views of latency and
power, not just the means in :class:`~repro.core.metrics.RunMetrics`.
This module provides them without sample retention:

* :class:`MetricCounter` / :class:`Gauge` — labeled scalars.
* :class:`MetricHistogram` — fixed log-spaced buckets **plus** a P²
  (Jain & Chlamtáč 1985) streaming quantile sketch per tracked quantile
  (p50/p95/p99/p999).  O(1) memory per histogram regardless of sample
  count.
* :class:`MetricsRegistry` — the family store, with an associative
  :meth:`~MetricsRegistry.merge` (worker registries fold into the
  parent's in any order), exact :meth:`~MetricsRegistry.to_dict` /
  :meth:`~MetricsRegistry.from_dict` round-trips, and exporters for
  Prometheus text format and JSONL snapshots.
* :func:`instrument` — attaches a registry to one simulation run
  (engine event dispatch + heap census, disk service times, power-state
  residency, controller counters).  Instrumentation observes only:
  metered runs produce :class:`RunMetrics` byte-identical to unmetered
  ones (tests/test_metrics_registry.py pins this for all five schemes,
  traced and fault-injected).

The registry is *process-wide-optional*: :func:`enable` installs one as
the ambient default, :func:`active` reads it, and everything costs
nothing when disabled (the hot paths guard with a single ``None`` check,
the same discipline as the tracer hooks).
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import re
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "P2Quantile",
    "MetricCounter",
    "Gauge",
    "MetricHistogram",
    "MetricsRegistry",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_POWER_BUCKETS",
    "TRACKED_QUANTILES",
    "enable",
    "disable",
    "active",
    "enabled",
    "instrument",
    "lint_prometheus",
    "read_snapshot",
    "render_registry",
]

#: Snapshot/export schema version (bump on breaking format changes).
METRICS_SCHEMA_VERSION = 1

#: The quantiles every histogram sketches (p50/p95/p99/p999).
TRACKED_QUANTILES = (0.5, 0.95, 0.99, 0.999)


def log_buckets(start: float, factor: float, count: int) -> List[float]:
    """Geometrically spaced bucket bounds (strictly increasing)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("log buckets need start > 0, factor > 1, count >= 1")
    return [start * factor**i for i in range(count)]


#: Latency buckets: 0.1 ms to ~56 s in ×1.6 steps (29 bounds).
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-4, 1.6, 29)

#: Power buckets: 0.5 W to ~1.1 kW in ×1.5 steps (20 bounds).
DEFAULT_POWER_BUCKETS = log_buckets(0.5, 1.5, 20)


# ----------------------------------------------------------------------
# P² streaming quantile estimator
# ----------------------------------------------------------------------
class P2Quantile:
    """The P² single-quantile estimator (Jain & Chlamtáč, CACM 1985).

    Five markers track the running estimate of quantile ``q`` with O(1)
    memory; below five observations the exact sorted buffer answers.
    Marker heights move by piecewise-parabolic (P²) interpolation, falling
    back to linear when the parabola would break marker monotonicity.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_buf")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q!r}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._buf: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        if self.count <= 5:
            self._buf.append(value)
            if self.count == 5:
                self._buf.sort()
                self._heights = list(self._buf)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
                self._buf = []
            return
        heights = self._heights
        positions = self._positions
        # Locate the cell and clamp the extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            for i in range(1, 4):
                if value < heights[i]:
                    break
                cell = i
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        q = self.q
        increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
        desired = self._desired
        for i in range(5):
            desired[i] += increments[i]
        # Adjust the three interior markers.
        for i in range(1, 4):
            delta = desired[i] - positions[i]
            right_gap = positions[i + 1] - positions[i]
            left_gap = positions[i - 1] - positions[i]
            if (delta >= 1.0 and right_gap > 1.0) or (
                delta <= -1.0 and left_gap < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate of the tracked quantile."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            ordered = sorted(self._buf)
            rank = max(
                0, min(len(ordered) - 1, math.ceil(self.q * len(ordered)) - 1)
            )
            return ordered[rank]
        return self._heights[2]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "q": self.q,
            "count": self.count,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "buf": list(self._buf),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "P2Quantile":
        sketch = cls(float(data["q"]))
        sketch.count = int(data["count"])
        sketch._heights = [float(v) for v in data["heights"]]
        sketch._positions = [float(v) for v in data["positions"]]
        sketch._desired = [float(v) for v in data["desired"]]
        sketch._buf = [float(v) for v in data["buf"]]
        return sketch


# ----------------------------------------------------------------------
# Metric instances
# ----------------------------------------------------------------------
class MetricCounter:
    """Monotonically increasing labeled scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time labeled scalar (merge aggregation set by its family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is a new peak."""
        if value > self.value:
            self.value = float(value)


class MetricHistogram:
    """Streaming histogram: log-spaced buckets + P² quantile sketches.

    Buckets count exactly and merge associatively; the P² sketches give
    refined within-run quantiles.  Merging two populated histograms drops
    the sketches (P² states cannot be combined) and falls back to bucket
    interpolation, which is merge-order independent — the property the
    worker fan-out relies on.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max", "_sketches")

    def __init__(self, bounds: Iterable[float]) -> None:
        bounds = [float(b) for b in bounds]
        if not bounds or any(
            bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)
        ):
            raise ValueError("bounds must be strictly increasing, non-empty")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: One sketch per tracked quantile; ``None`` once merged.
        self._sketches: Optional[List[P2Quantile]] = [
            P2Quantile(q) for q in TRACKED_QUANTILES
        ]

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        sketches = self._sketches
        if sketches is not None:
            for sketch in sketches:
                sketch.observe(value)

    @property
    def merged(self) -> bool:
        """True once P² sketches were dropped by a populated merge."""
        return self._sketches is None

    def quantile(self, q: float) -> float:
        """Estimate quantile ``q``: P² when available, else buckets."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        sketches = self._sketches
        if sketches is not None:
            for sketch in sketches:
                if abs(sketch.q - q) < 1e-12:
                    return sketch.value()
        return self.bucket_quantile(q)

    def bucket_quantile(self, q: float) -> float:
        """Quantile by linear interpolation inside the covering bucket.

        Exactly mergeable (depends only on bucket counts), at the cost of
        bucket-width resolution.  The overflow bucket answers with the
        observed maximum.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if not c:
                continue
            if cumulative + c >= target:
                if i >= len(self.bounds):
                    return self.max
                lower = self.bounds[i - 1] if i else 0.0
                upper = self.bounds[i]
                fraction = (target - cumulative) / c
                return lower + fraction * (upper - lower)
            cumulative += c
        return self.max  # pragma: no cover - rounding guard

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "MetricHistogram") -> None:
        """Fold ``other`` in.  Associative and commutative on buckets;
        sketches survive only while exactly one side has observations."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        if other.count == 0:
            return
        if self.count == 0:
            self.counts = list(other.counts)
            self.count = other.count
            self.sum = other.sum
            self.min = other.min
            self.max = other.max
            self._sketches = (
                None
                if other._sketches is None
                else [P2Quantile.from_dict(s.to_dict()) for s in other._sketches]
            )
            return
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._sketches = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "sketches": (
                None
                if self._sketches is None
                else [s.to_dict() for s in self._sketches]
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricHistogram":
        hist = cls(data["bounds"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("histogram count vector mismatch")
        hist.counts = counts
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        hist.min = math.inf if data["min"] is None else float(data["min"])
        hist.max = -math.inf if data["max"] is None else float(data["max"])
        if data["sketches"] is None:
            hist._sketches = None
        else:
            hist._sketches = [
                P2Quantile.from_dict(s) for s in data["sketches"]
            ]
        return hist


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_KINDS = ("counter", "gauge", "histogram")
_GAUGE_AGGS = ("sum", "max", "min")

LabelKey = Tuple[Tuple[str, str], ...]


class _Family:
    """One named metric family: kind, help text, labeled children."""

    __slots__ = ("name", "kind", "help", "agg", "bounds", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        agg: str = "sum",
        bounds: Optional[List[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.agg = agg
        self.bounds = bounds
        self.children: Dict[LabelKey, Any] = {}

    def child(self, key: LabelKey) -> Any:
        instance = self.children.get(key)
        if instance is None:
            if self.kind == "counter":
                instance = MetricCounter()
            elif self.kind == "gauge":
                instance = Gauge()
            else:
                instance = MetricHistogram(self.bounds)
            self.children[key] = instance
        return instance


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A process-local store of counter/gauge/histogram families.

    Family identity is the metric name; children are label sets.  The
    registry is deliberately dependency-free and picklable via
    :meth:`to_dict`, so pool workers meter their cells locally and ship
    the state back for an associative :meth:`merge` in the parent.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        agg: str = "sum",
        bounds: Optional[List[float]] = None,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, agg=agg, bounds=bounds)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"{name}: registered as {family.kind}, requested {kind}"
            )
        if kind == "gauge" and family.agg != agg:
            raise ValueError(
                f"{name}: gauge aggregation mismatch "
                f"({family.agg} vs {agg})"
            )
        if kind == "histogram" and bounds is not None:
            if family.bounds != list(bounds):
                raise ValueError(f"{name}: histogram bucket mismatch")
        return family

    def counter(
        self, name: str, help_text: str = "", **labels: Any
    ) -> MetricCounter:
        """The counter child of ``name`` for this label set."""
        return self._family(name, "counter", help_text).child(
            _label_key(labels)
        )

    def gauge(
        self, name: str, help_text: str = "", agg: str = "sum", **labels: Any
    ) -> Gauge:
        """The gauge child of ``name``; ``agg`` fixes merge semantics."""
        if agg not in _GAUGE_AGGS:
            raise ValueError(f"gauge agg must be one of {_GAUGE_AGGS}")
        return self._family(name, "gauge", help_text, agg=agg).child(
            _label_key(labels)
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> MetricHistogram:
        """The histogram child of ``name`` for this label set."""
        bounds = (
            list(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        )
        return self._family(
            name, "histogram", help_text, bounds=bounds
        ).child(_label_key(labels))

    # ------------------------------------------------------------------
    def families(self) -> List[str]:
        return sorted(self._families)

    def samples(self) -> List[Tuple[str, Dict[str, str], Any]]:
        """Flat ``(name, labels, instance)`` view in deterministic order."""
        out = []
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.children):
                out.append((name, dict(key), family.children[key]))
        return out

    def get(
        self, name: str, **labels: Any
    ) -> Optional[Any]:
        """Existing child or ``None`` (never creates)."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (associative, commutative).

        Counters add, gauges combine by their family's declared
        aggregation, histograms merge buckets exactly (sketches drop once
        both sides are populated).  Returns ``self`` for chaining.
        """
        for name, theirs in other._families.items():
            family = self._family(
                name,
                theirs.kind,
                theirs.help,
                agg=theirs.agg,
                bounds=theirs.bounds,
            )
            if family.kind == "histogram" and family.bounds != theirs.bounds:
                raise ValueError(f"{name}: histogram bucket mismatch")
            for key, their_child in theirs.children.items():
                mine = family.children.get(key)
                if mine is None:
                    # Copy through the exact dict round-trip so later
                    # mutation of either registry stays independent.
                    if family.kind == "histogram":
                        family.children[key] = MetricHistogram.from_dict(
                            their_child.to_dict()
                        )
                    else:
                        child = family.child(key)
                        child.value = their_child.value
                elif family.kind == "counter":
                    mine.value += their_child.value
                elif family.kind == "gauge":
                    if family.agg == "sum":
                        mine.value += their_child.value
                    elif family.agg == "max":
                        mine.value = max(mine.value, their_child.value)
                    else:
                        mine.value = min(mine.value, their_child.value)
                else:
                    mine.merge(their_child)
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        families: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            children = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["histogram"] = child.to_dict()
                else:
                    entry["value"] = child.value
                children.append(entry)
            families[name] = {
                "kind": family.kind,
                "help": family.help,
                "agg": family.agg,
                "children": children,
            }
        return {"schema": METRICS_SCHEMA_VERSION, "families": families}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, spec in data.get("families", {}).items():
            kind = spec["kind"]
            if kind not in _KINDS:
                raise ValueError(f"{name}: unknown metric kind {kind!r}")
            for entry in spec["children"]:
                labels = {
                    str(k): str(v) for k, v in entry["labels"].items()
                }
                if kind == "histogram":
                    hist = MetricHistogram.from_dict(entry["histogram"])
                    family = registry._family(
                        name, kind, spec.get("help", ""), bounds=hist.bounds
                    )
                    family.children[_label_key(labels)] = hist
                elif kind == "counter":
                    registry.counter(
                        name, spec.get("help", ""), **labels
                    ).value = float(entry["value"])
                else:
                    registry.gauge(
                        name,
                        spec.get("help", ""),
                        agg=spec.get("agg", "sum"),
                        **labels,
                    ).value = float(entry["value"])
            # Families with no children still round-trip (kind + help).
            if not spec["children"]:
                registry._family(
                    name, kind, spec.get("help", ""),
                    agg=spec.get("agg", "sum"),
                    bounds=None if kind != "histogram" else DEFAULT_LATENCY_BUCKETS,
                )
        return registry

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if family.kind == "histogram":
                    cumulative = 0
                    for i, bound in enumerate(child.bounds):
                        cumulative += child.counts[i]
                        lines.append(
                            f"{name}_bucket"
                            f"{_prom_labels(key, le=_prom_float(bound))} "
                            f"{cumulative}"
                        )
                    cumulative += child.counts[-1]
                    lines.append(
                        f'{name}_bucket{_prom_labels(key, le="+Inf")} '
                        f"{cumulative}"
                    )
                    lines.append(
                        f"{name}_sum{_prom_labels(key)} "
                        f"{_prom_float(child.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_prom_labels(key)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_prom_labels(key)} "
                        f"{_prom_float(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def write_prometheus(self, path: str) -> str:
        _ensure_parent(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_prometheus())
        return path

    def write_jsonl(self, path: str) -> int:
        """JSONL snapshot: a meta line, then one line per family.

        Returns the number of family lines written.  The snapshot
        round-trips exactly through :func:`read_snapshot` (``rolo top``
        renders these files).
        """
        _ensure_parent(path)
        data = self.to_dict()
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"record": "meta", "schema": data["schema"]},
                    sort_keys=True,
                )
            )
            fh.write("\n")
            for name in sorted(data["families"]):
                record = {"record": "family", "name": name}
                record.update(data["families"][name])
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
                count += 1
        return count


def read_snapshot(path: str) -> MetricsRegistry:
    """Load a registry back from a :meth:`MetricsRegistry.write_jsonl`
    snapshot."""
    families: Dict[str, Any] = {}
    schema = METRICS_SCHEMA_VERSION
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            record_type = record.get("record")
            if record_type == "meta":
                schema = int(record.get("schema", schema))
            elif record_type == "family":
                if "name" not in record or "kind" not in record:
                    raise ValueError(
                        f"{path}: family line missing name/kind"
                    )
                families[record["name"]] = {
                    "kind": record["kind"],
                    "help": record.get("help", ""),
                    "agg": record.get("agg", "sum"),
                    "children": record.get("children", []),
                }
            else:
                raise ValueError(
                    f"{path}: unknown snapshot line {record_type!r}"
                )
    return MetricsRegistry.from_dict(
        {"schema": schema, "families": families}
    )


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def _prom_float(value: float) -> str:
    if value != value:  # pragma: no cover - NaN guard
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:  # pragma: no cover - not produced today
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _prom_labels(key: LabelKey, **extra: str) -> str:
    pairs = list(key) + sorted(extra.items())
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{_prom_escape(v)}"' for k, v in pairs
    )
    return "{" + body + "}"


def _prom_escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


# ----------------------------------------------------------------------
# Prometheus text lint (tests + CI metrics-smoke)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+]+|\+Inf|-Inf|NaN)$"
)
_LABEL_PAIR_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def lint_prometheus(text: str) -> List[str]:
    """Validate Prometheus text format; returns a list of problems.

    Checks line syntax, TYPE declarations, label pair syntax, histogram
    ``le`` monotonicity and the ``+Inf``/``_count`` agreement.  An empty
    return value means the document is clean.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    buckets: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, str], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in _KINDS:
                problems.append(f"line {lineno}: malformed TYPE line")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name, label_blob, value_text = match.groups()
        labels: Dict[str, str] = {}
        if label_blob:
            for pair in _split_label_pairs(label_blob[1:-1]):
                if not _LABEL_PAIR_RE.match(pair):
                    problems.append(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
                    continue
                key, _, raw = pair.partition("=")
                labels[key] = raw[1:-1]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        if base not in types:
            problems.append(f"line {lineno}: {name} has no TYPE declaration")
            continue
        value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        if name.endswith("_bucket") and types.get(base) == "histogram":
            le = labels.get("le")
            if le is None:
                problems.append(f"line {lineno}: bucket sample without le")
                continue
            le_value = math.inf if le == "+Inf" else float(le)
            other = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            buckets.setdefault((base, repr(other)), []).append(
                (le_value, value)
            )
        elif name.endswith("_count") and types.get(base) == "histogram":
            counts[
                (base, repr(tuple(sorted(labels.items()))))
            ] = value
    for (base, labelrepr), series in buckets.items():
        ordered = sorted(series)
        values = [v for _, v in ordered]
        if any(b > a for b, a in zip(values, values[1:])):
            problems.append(f"{base}{labelrepr}: bucket counts not cumulative")
        if ordered and ordered[-1][0] != math.inf:
            problems.append(f"{base}{labelrepr}: missing +Inf bucket")
        total = counts.get((base, labelrepr))
        if total is not None and ordered and ordered[-1][1] != total:
            problems.append(
                f"{base}{labelrepr}: +Inf bucket != _count sample"
            )
    return problems


def _split_label_pairs(blob: str) -> List[str]:
    pairs: List[str] = []
    current = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        pairs.append("".join(current))
    return pairs


# ----------------------------------------------------------------------
# Process-wide-optional ambient registry
# ----------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the ambient process-wide registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    """Clear the ambient registry; metering-off paths cost nothing again."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[MetricsRegistry]:
    """The ambient registry, or ``None`` when metrics are off."""
    return _ACTIVE


@contextlib.contextmanager
def enabled(registry: Optional[MetricsRegistry] = None):
    """Scoped :func:`enable`; restores the previous registry on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Run instrumentation
# ----------------------------------------------------------------------
#: Event-hook sampling stride for the heap census / power histogram /
#: destage-depth gauges (every Nth dispatched event).
_SAMPLE_EVERY = 256

#: Canonical counter names emitted by the verification harness
#: (:mod:`repro.verify`): invariant sweeps run and violations found.
#: Declared here so dashboards and exposition tests share one spelling.
VERIFY_CHECKS_TOTAL = "verify_checks_total"
VERIFY_VIOLATIONS_TOTAL = "verify_violations_total"


class RunInstrumentation:
    """Meters one simulation run into a :class:`MetricsRegistry`.

    Installs observation-only hooks (the engine event hook, per-disk op
    observers, the ``RunMetrics`` response observer) and harvests
    end-of-run state (power residency, spin counts, controller counters).
    Every hook reads and never writes simulator/controller state, so a
    metered run's :class:`RunMetrics` stays byte-identical to an
    unmetered one.
    """

    def __init__(self, sim, controller, registry: MetricsRegistry) -> None:
        self.sim = sim
        self.controller = controller
        self.registry = registry
        self.scheme = controller.scheme_name
        self._events_by_label: Dict[str, int] = {}
        self._heap_peak = 0
        self._power_peak = 0.0
        self._dirty_peak = 0
        self._occupancy_peak = 0.0
        self._tick = 0
        self._power_hist = registry.histogram(
            "array_power_watts",
            "instantaneous array power draw, sampled on event dispatch",
            buckets=DEFAULT_POWER_BUCKETS,
            scheme=self.scheme,
        )
        self._started = time.perf_counter()
        self._installed = False

    # -- hooks ----------------------------------------------------------
    def install(self) -> None:
        # Register through the engine's fused-hook builder so layered
        # observers (the invariant checker, profilers) compose in fixed
        # order and teardown re-selects the no-hook specialized loop.
        self.sim.add_event_observer(self._on_event)
        scheme = self.scheme
        registry = self.registry
        latency = {
            False: registry.histogram(
                "request_latency_seconds",
                "end-to-end logical request latency",
                op="read",
                scheme=scheme,
            ),
            True: registry.histogram(
                "request_latency_seconds",
                "end-to-end logical request latency",
                op="write",
                scheme=scheme,
            ),
        }

        def _on_response(is_write: bool, seconds: float) -> None:
            latency[is_write].observe(seconds)

        self.controller.metrics.on_response = _on_response
        service = {
            0: registry.histogram(
                "disk_service_time_seconds",
                "in-service time of one disk operation",
                priority="foreground",
                scheme=scheme,
            ),
            1: registry.histogram(
                "disk_service_time_seconds",
                "in-service time of one disk operation",
                priority="background",
                scheme=scheme,
            ),
        }
        ops = {
            0: registry.counter(
                "disk_ops_total",
                "completed disk operations",
                priority="foreground",
                scheme=scheme,
            ),
            1: registry.counter(
                "disk_ops_total",
                "completed disk operations",
                priority="background",
                scheme=scheme,
            ),
        }

        def _on_op(disk, op) -> None:
            index = int(op.priority)
            service[index].observe(op.finish_time - op.start_time)
            ops[index].inc()

        for disk in self.controller.all_disks():
            disk.op_observer = _on_op
        self._op_observer = _on_op
        self._installed = True

    def _on_event(self, event) -> None:
        label = event.label
        _, _, suffix = label.rpartition(":")
        counts = self._events_by_label
        counts[suffix or label] = counts.get(suffix or label, 0) + 1
        tick = self._tick + 1
        self._tick = tick
        if tick % _SAMPLE_EVERY == 0:
            self._sample()

    def _sample(self) -> None:
        sim = self.sim
        if sim.heap_size > self._heap_peak:
            self._heap_peak = sim.heap_size
        controller = self.controller
        watts = 0.0
        for disk in controller.all_disks():
            watts += disk.power._watts
        self._power_hist.observe(watts)
        if watts > self._power_peak:
            self._power_peak = watts
        dirty = controller.dirty_units_total()
        if dirty > self._dirty_peak:
            self._dirty_peak = dirty
        for region in controller.log_regions():
            occupancy = region.occupancy
            if occupancy > self._occupancy_peak:
                self._occupancy_peak = occupancy

    # -- teardown -------------------------------------------------------
    def uninstall(self) -> None:
        if not self._installed:
            return
        self.sim.remove_event_observer(self._on_event)
        self.controller.metrics.on_response = None
        for disk in self.controller.all_disks():
            if disk.op_observer is self._op_observer:
                disk.op_observer = None
        self._installed = False

    def harvest(self) -> None:
        """Fold end-of-run state into the registry (idempotent-by-design
        only if called once; call exactly once, after the run)."""
        registry = self.registry
        scheme = self.scheme
        sim = self.sim
        wall = time.perf_counter() - self._started
        # Engine: dispatch census + heap hygiene.
        registry.counter(
            "sim_events_total", "events dispatched by the engine",
            scheme=scheme,
        ).inc(sim.events_processed)
        for label in sorted(self._events_by_label):
            registry.counter(
                "sim_events_by_label_total",
                "events dispatched, by label suffix",
                label=label,
                scheme=scheme,
            ).inc(self._events_by_label[label])
        registry.counter(
            "sim_heap_compactions_total",
            "in-place heap compactions",
            scheme=scheme,
        ).inc(sim.compactions)
        registry.gauge(
            "sim_heap_peak", "peak event-heap size (sampled)",
            agg="max", scheme=scheme,
        ).set_max(float(self._heap_peak))
        registry.gauge(
            "sim_event_free_pool_size",
            "recycled Event objects parked for reuse at harvest",
            agg="max", scheme=scheme,
        ).set_max(float(sim.free_pool_size))
        registry.gauge(
            "sim_event_free_pool_max",
            "hard cap on the engine event free list",
            agg="max", scheme=scheme,
        ).set_max(float(sim.free_pool_max))
        registry.gauge(
            "sim_wall_seconds", "wall-clock time of metered runs",
            agg="sum", scheme=scheme,
        ).inc(wall)
        # Disks: per-state residency, energy, spin counts.
        from repro.disk.power import PowerState

        for role, disks in self.controller.disks_by_role().items():
            spin_ups = registry.counter(
                "disk_spin_ups_total", "spin-up transitions",
                role=role, scheme=scheme,
            )
            spin_downs = registry.counter(
                "disk_spin_downs_total", "spin-down transitions",
                role=role, scheme=scheme,
            )
            energy = registry.counter(
                "disk_energy_joules_total", "energy consumed",
                role=role, scheme=scheme,
            )
            for disk in disks:
                accountant = disk.power
                spin_ups.inc(accountant.spin_up_count)
                spin_downs.inc(accountant.spin_down_count)
                energy.inc(accountant.energy_at(sim.now))
                for state in PowerState:
                    duration = accountant.state_durations[state]
                    if state is accountant.state:
                        duration += sim.now - accountant._last_time
                    if duration:
                        registry.counter(
                            "disk_state_seconds_total",
                            "power-state residency",
                            role=role,
                            scheme=scheme,
                            state=state.value,
                        ).inc(duration)
        # Controller counters (the Table I / Fig. 2 raw material).
        metrics = self.controller.metrics
        for name, value, help_text in (
            ("controller_requests_total", metrics.requests, "logical requests"),
            ("controller_rotations_total", metrics.rotations,
             "logger rotation hand-offs"),
            ("controller_destage_cycles_total", metrics.destage_cycles,
             "destage processes completed"),
            ("controller_logged_bytes_total", metrics.logged_bytes,
             "bytes written to log space"),
            ("controller_destaged_bytes_total", metrics.destaged_bytes,
             "bytes destaged to home locations"),
            ("controller_read_hits_total", metrics.read_hits,
             "reads served from log space"),
            ("controller_read_misses_total", metrics.read_misses,
             "reads that missed log space"),
            ("controller_deactivations_total", metrics.deactivations,
             "disk deactivation decisions"),
            ("controller_degraded_reads_total",
             getattr(self.controller, "degraded_reads", 0),
             "reads served while the pair was degraded"),
        ):
            if value:
                registry.counter(name, help_text, scheme=scheme).inc(value)
        registry.gauge(
            "array_power_peak_watts", "peak sampled array draw",
            agg="max", scheme=scheme,
        ).set_max(self._power_peak)
        registry.gauge(
            "destage_dirty_units_peak", "peak dirty stripe units (sampled)",
            agg="max", scheme=scheme,
        ).set_max(float(self._dirty_peak))
        registry.gauge(
            "log_occupancy_peak", "peak log-region occupancy (sampled)",
            agg="max", scheme=scheme,
        ).set_max(self._occupancy_peak)


@contextlib.contextmanager
def instrument(sim, controller, registry: Optional[MetricsRegistry] = None):
    """Meter one run: install hooks on entry, harvest + remove on exit.

    Usage::

        registry = MetricsRegistry()
        with instrument(sim, controller, registry):
            metrics = run_trace(controller, trace)
    """
    if registry is None:
        registry = active()
    if registry is None:
        yield None
        return
    run = RunInstrumentation(sim, controller, registry)
    run.install()
    try:
        yield run
    finally:
        run.uninstall()
        run.harvest()


# ----------------------------------------------------------------------
# Rendering (``rolo top`` and the sweep utilization table)
# ----------------------------------------------------------------------
def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    if abs(value) >= 1e5 or (value and abs(value) < 1e-3):
        return f"{value:.3g}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_registry(registry: MetricsRegistry) -> str:
    """Human-readable snapshot: counters/gauges, then histogram quantiles.

    This is the ``rolo top`` view — a compact utilization table with the
    tail percentiles the paper's evaluation (and ours) turns on.
    """
    counters: List[str] = []
    gauges: List[str] = []
    hist_rows: List[Tuple[str, ...]] = []
    for name, labels, child in registry.samples():
        title = f"{name}{_fmt_labels(labels)}"
        if isinstance(child, MetricCounter):
            counters.append(f"  {title}  {_fmt_value(child.value)}")
        elif isinstance(child, Gauge):
            gauges.append(f"  {title}  {_fmt_value(child.value)}")
        else:
            hist_rows.append(
                (
                    title,
                    str(child.count),
                    _fmt_value(child.mean),
                    *(
                        _fmt_value(child.quantile(q))
                        for q in TRACKED_QUANTILES
                    ),
                    _fmt_value(child.max if child.count else 0.0),
                    "buckets" if child.merged else "p2",
                )
            )
    lines: List[str] = []
    if counters:
        lines.append("counters:")
        lines.extend(counters)
    if gauges:
        lines.append("gauges:")
        lines.extend(gauges)
    if hist_rows:
        header = (
            "histogram", "count", "mean", "p50", "p95", "p99", "p999",
            "max", "est",
        )
        widths = [
            max(len(header[i]), *(len(r[i]) for r in hist_rows))
            for i in range(len(header))
        ]
        lines.append("histograms:")
        lines.append(
            "  " + "  ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        for row in hist_rows:
            lines.append(
                "  " + "  ".join(c.ljust(w) for c, w in zip(row, widths))
            )
    if not lines:
        return "metrics: empty registry"
    return "\n".join(lines)


def format_sweep_table(registry: MetricsRegistry) -> str:
    """Per-worker utilization table for the end-of-sweep summary."""
    family = registry._families.get("sweep_worker_cells_total")
    if family is None or not family.children:
        return "sweep: no dispatcher telemetry collected"
    busy = registry._families.get("sweep_worker_busy_seconds_total")
    rows = []
    for key in sorted(family.children):
        labels = dict(key)
        worker = labels.get("worker", "?")
        cells = family.children[key].value
        busy_s = 0.0
        if busy is not None:
            child = busy.children.get(key)
            if child is not None:
                busy_s = child.value
        rate = cells / busy_s if busy_s > 0 else 0.0
        rows.append(
            (worker, str(int(cells)), f"{busy_s:.2f}", f"{rate:.2f}")
        )
    header = ("worker", "cells", "busy s", "cells/s")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    extras = []
    for name, label in (
        ("shm_attach_hits_total", "attach hits"),
        ("shm_attach_misses_total", "attach misses"),
    ):
        fam = registry._families.get(name)
        if fam:
            total = sum(c.value for c in fam.children.values())
            extras.append(f"{label}={int(total)}")
    window = registry.get("sweep_inflight_window_peak")
    if window is not None:
        extras.append(f"window peak={int(window.value)}")
    if extras:
        lines.append("  ".join(extras))
    return "\n".join(lines)
