"""Structured event tracing for simulation runs.

The tracing contract has three parts:

* :class:`Tracer` — the pluggable interface.  Every hook is a no-op on the
  base class, so subclasses only override what they care about.
* :class:`NullTracer` — the default.  It is *falsy* (``bool(NULL_TRACER)``
  is ``False``), which lets instrumented call sites normalize it to
  ``None`` once at construction time and guard each emission with a plain
  ``if tracer is not None`` — the disabled path never pays a method call,
  and the optimized ``Simulator.run`` loop is untouched entirely.
* :class:`RecordingTracer` — an in-memory recorder producing
  :class:`TraceEvent` records that the exporters in
  :mod:`repro.obs.export` turn into JSONL or Chrome trace-event JSON.

Tracers observe only: no hook may schedule simulator events or mutate
controller/disk state, which is what keeps a traced run's
:class:`~repro.core.metrics.RunMetrics` byte-identical to an untraced one.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

#: Track name used for array-level request spans (one track for the whole
#: array; individual disks each get their own track).
REQUEST_TRACK = "requests"


@dataclasses.dataclass
class TraceEvent:
    """One recorded observation.

    ``kind`` is ``"span"`` (has a duration), ``"instant"`` (a point event)
    or ``"counter"`` (a sampled value in ``attrs``).  ``ts`` and ``dur``
    are virtual-time seconds; ``track`` groups events into timelines (one
    per disk, one for requests, one per scheme/controller).
    """

    ts: float
    kind: str
    category: str
    name: str
    track: str
    dur: float = 0.0
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ts": self.ts,
            "kind": self.kind,
            "category": self.category,
            "name": self.name,
            "track": self.track,
            "dur": self.dur,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            ts=float(data["ts"]),
            kind=str(data["kind"]),
            category=str(data["category"]),
            name=str(data["name"]),
            track=str(data["track"]),
            dur=float(data.get("dur", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )


class Tracer:
    """Interface every instrumented component emits into.

    All hooks default to no-ops; timestamps are virtual seconds.  The hook
    set mirrors the paper's instrumentation needs: request lifecycle
    (Fig. 3 idle-slot structure), power-state residency (Table I),
    rotation/destage cycles (Fig. 2) and log-space occupancy (§III-E).
    """

    enabled = True

    #: When true, disks bind their span-aware completion path
    #: (``Disk._complete_spanned``) at construction/selection time and
    #: report per-phase service decompositions through
    #: ``disk_op_phases``.  Plain tracers leave this false and keep the
    #: cheaper observed path.
    wants_phases = False

    # -- request lifecycle ------------------------------------------------
    def request_arrived(
        self, rid: int, kind: str, offset: int, nbytes: int, ts: float
    ) -> None:
        """An array-level request entered the controller."""

    def request_admitted(self, rid: int, request: object) -> None:
        """The controller admitted ``request`` (the live
        :class:`~repro.raid.request.IORequest` object) under id ``rid``.

        Span-aware tracers use this to link later disk-op completions back
        to the owning request; plain recorders ignore it."""

    def request_completed(self, rid: int, ts: float) -> None:
        """The request's last constituent disk operation finished."""

    # -- disk server ------------------------------------------------------
    def disk_op(
        self,
        disk: str,
        kind: str,
        priority: str,
        sector: int,
        nbytes: int,
        submit_ts: float,
        start_ts: float,
        finish_ts: float,
    ) -> None:
        """One disk operation completed (queueing + service span known)."""

    def disk_op_phases(
        self,
        disk: str,
        kind: str,
        priority: str,
        sector: int,
        nbytes: int,
        submit_ts: float,
        start_ts: float,
        finish_ts: float,
        seek_s: float,
        rot_s: float,
        transfer_s: float,
        op: object,
    ) -> None:
        """One disk operation completed, with its service interval
        decomposed into mechanical phases (``seek + rot + transfer`` equals
        ``finish_ts - start_ts`` exactly) and the live op for causal owner
        resolution.  Only reached when :attr:`wants_phases` is true; the
        default forwards to :meth:`disk_op`, dropping the extras."""
        self.disk_op(
            disk, kind, priority, sector, nbytes,
            submit_ts, start_ts, finish_ts,
        )

    def power_state(
        self, disk: str, old: Optional[str], new: str, ts: float
    ) -> None:
        """A disk changed power state (``old is None`` seeds the initial
        state at construction time)."""

    # -- controller dynamics ----------------------------------------------
    def instant(
        self, category: str, name: str, track: str, ts: float, **attrs: Any
    ) -> None:
        """A point event: rotation, destage begin/end, deactivation, ..."""

    def span(
        self,
        category: str,
        name: str,
        track: str,
        start_ts: float,
        end_ts: float,
        **attrs: Any,
    ) -> None:
        """A completed interval (destage process, cycle phase, ...)."""

    def counter(
        self, name: str, track: str, ts: float, value: float, **attrs: Any
    ) -> None:
        """A sampled scalar (log occupancy, queue depth, ...)."""

    # -- fault injection ---------------------------------------------------
    def fault(self, name: str, track: str, ts: float, **attrs: Any) -> None:
        """A fault-injection event (disk failure, slowdown, latent error,
        rebuild milestones).  Default routes through :meth:`instant` under
        the ``"fault"`` category so recorders need no extra handling."""
        self.instant("fault", name, track, ts, **attrs)

    # ---------------------------------------------------------------------
    def finish(self, ts: float) -> None:
        """Close any open spans at the end of the run.  Idempotent."""


class NullTracer(Tracer):
    """The zero-overhead default: falsy, and every hook is a no-op."""

    enabled = False

    def __bool__(self) -> bool:
        return False


#: Shared singleton — there is never a reason to hold two NullTracers.
NULL_TRACER = NullTracer()


def normalize(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Map ``None``/NullTracer to ``None`` so call sites guard with a plain
    identity check instead of a virtual call."""
    return tracer if tracer else None


class RecordingTracer(Tracer):
    """Collects :class:`TraceEvent` records in memory.

    Power states and requests arrive as open/close edges; the recorder
    pairs them into spans.  :meth:`finish` closes whatever is still open
    (e.g. the final power state of every disk) at the run's end time.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.counts: Dict[str, int] = {}
        #: disk -> (state name, span start)
        self._open_power: Dict[str, Tuple[str, float]] = {}
        #: rid -> (kind, offset, nbytes, arrival ts)
        self._open_requests: Dict[int, Tuple[str, int, int, float]] = {}
        self._finished = False

    # ------------------------------------------------------------------
    def _emit(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.counts[event.category] = self.counts.get(event.category, 0) + 1

    def request_arrived(
        self, rid: int, kind: str, offset: int, nbytes: int, ts: float
    ) -> None:
        self._open_requests[rid] = (kind, offset, nbytes, ts)

    def request_completed(self, rid: int, ts: float) -> None:
        opened = self._open_requests.pop(rid, None)
        if opened is None:
            return
        kind, offset, nbytes, start = opened
        self._emit(
            TraceEvent(
                ts=start,
                kind="span",
                category="request",
                name=kind,
                track=REQUEST_TRACK,
                dur=ts - start,
                attrs={"rid": rid, "offset": offset, "nbytes": nbytes},
            )
        )

    def disk_op(
        self,
        disk: str,
        kind: str,
        priority: str,
        sector: int,
        nbytes: int,
        submit_ts: float,
        start_ts: float,
        finish_ts: float,
    ) -> None:
        self._emit(
            TraceEvent(
                ts=start_ts,
                kind="span",
                category="disk_op",
                name=f"{kind}:{priority}",
                track=disk,
                dur=finish_ts - start_ts,
                attrs={
                    "sector": sector,
                    "nbytes": nbytes,
                    "queued_s": start_ts - submit_ts,
                },
            )
        )

    def power_state(
        self, disk: str, old: Optional[str], new: str, ts: float
    ) -> None:
        opened = self._open_power.get(disk)
        if opened is not None:
            state, since = opened
            self._emit(
                TraceEvent(
                    ts=since,
                    kind="span",
                    category="power",
                    name=state,
                    track=disk,
                    dur=ts - since,
                )
            )
        self._open_power[disk] = (new, ts)

    def instant(
        self, category: str, name: str, track: str, ts: float, **attrs: Any
    ) -> None:
        self._emit(
            TraceEvent(
                ts=ts,
                kind="instant",
                category=category,
                name=name,
                track=track,
                attrs=attrs,
            )
        )

    def span(
        self,
        category: str,
        name: str,
        track: str,
        start_ts: float,
        end_ts: float,
        **attrs: Any,
    ) -> None:
        self._emit(
            TraceEvent(
                ts=start_ts,
                kind="span",
                category=category,
                name=name,
                track=track,
                dur=end_ts - start_ts,
                attrs=attrs,
            )
        )

    def counter(
        self, name: str, track: str, ts: float, value: float, **attrs: Any
    ) -> None:
        self._emit(
            TraceEvent(
                ts=ts,
                kind="counter",
                category="counter",
                name=name,
                track=track,
                attrs={"value": value, **attrs},
            )
        )

    def finish(self, ts: float) -> None:
        if self._finished:
            return
        self._finished = True
        for disk in sorted(self._open_power):
            state, since = self._open_power[disk]
            self._emit(
                TraceEvent(
                    ts=since,
                    kind="span",
                    category="power",
                    name=state,
                    track=disk,
                    dur=ts - since,
                )
            )
        self._open_power.clear()

    # ------------------------------------------------------------------
    def sorted_events(self) -> List[TraceEvent]:
        """Events in (ts, track, name) order — stable across runs because
        virtual time and emission order are both deterministic."""
        return sorted(
            self.events, key=lambda e: (e.ts, e.track, e.category, e.name)
        )
