"""Self-contained HTML timeline explorer for span-traced runs.

``render_explorer_html`` turns a :class:`~repro.obs.spans.SpanRecorder`
event stream into one standalone HTML document (inline SVG only, no
scripts, no external assets) with four sections:

1. **Power-state Gantt** — one lane per disk, colored by power state,
   with rotation hand-off markers and the logging/destage cycle windows
   as a top strip.  This is Fig. 2/3 of the paper as a timeline.
2. **Log occupancy** — the ``occupancy:*`` counter series, drawn with the
   shared :func:`repro.experiments.svg.render_chart_svg` line-chart
   helper (same palette and axis treatment as the figure pipeline).
3. **Slowest requests** — the K worst requests' span trees: a stacked
   phase bar (queue / spin-up / interference / seek / rotation /
   transfer, from :mod:`repro.obs.attribution`) plus each constituent
   disk op drawn against the request's own time base, with its causal
   culprit named.
4. **Attribution table** — the run-level phase fraction summary.

Everything styles off the validated palette in
:mod:`repro.experiments.svg` so the explorer matches the repo's figures.
"""

from __future__ import annotations

import html
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.experiments.report import Series
from repro.experiments.svg import (
    GRID,
    INK_PRIMARY,
    INK_SECONDARY,
    PALETTE,
    SURFACE,
    render_chart_svg,
)
from repro.obs.attribution import (
    PHASES,
    RequestAttribution,
    attribute_events,
    attribution_summary,
    slowest_requests,
)
from repro.obs.tracer import REQUEST_TRACK, TraceEvent

#: Power-state lane colors (palette hues for the states that matter,
#: recessive neutrals for the quiet ones).
POWER_COLORS = {
    "active": PALETTE[1],        # aqua: the arm is moving
    "idle": GRID,                # recessive: spun up, nothing to do
    "standby": "#cfcecb",        # darker neutral: spun down
    "spinning_up": PALETTE[2],   # yellow: the RoLo-E wait culprit
    "spinning_down": PALETTE[7], # orange
    "failed": PALETTE[5],        # red
}

#: Attribution phase colors, aligned with the stacked request bars.
PHASE_COLORS = {
    "queue": PALETTE[0],
    "spinup": PALETTE[2],
    "interference": PALETTE[5],
    "seek": PALETTE[4],
    "rotation": PALETTE[6],
    "transfer": PALETTE[1],
}

_LANE_H = 22
_LANE_GAP = 6
_GANTT_L = 120
_GANTT_R = 24
_GANTT_W = 960


def _esc(text: Any) -> str:
    return html.escape(str(text))


def _collect(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    power: Dict[str, List[TraceEvent]] = {}
    ops_by_rid: Dict[int, List[TraceEvent]] = {}
    occupancy: Dict[str, List[Tuple[float, float]]] = {}
    handoffs: List[TraceEvent] = []
    cycles: List[TraceEvent] = []
    t_end = 0.0
    materialized: List[TraceEvent] = []
    for event in events:
        materialized.append(event)
        t_end = max(t_end, event.ts + event.dur)
        if event.category == "power":
            power.setdefault(event.track, []).append(event)
        elif event.category == "disk_op":
            rid = event.attrs.get("rid")
            if rid is not None:
                ops_by_rid.setdefault(rid, []).append(event)
        elif event.category == "rotation":
            handoffs.append(event)
        elif event.category == "cycle":
            cycles.append(event)
        elif (
            event.kind == "counter"
            and event.name.startswith("occupancy:")
        ):
            occupancy.setdefault(event.name[len("occupancy:"):], []).append(
                (event.ts, float(event.attrs.get("value", 0.0)))
            )
    return {
        "events": materialized,
        "power": power,
        "ops_by_rid": ops_by_rid,
        "occupancy": occupancy,
        "handoffs": handoffs,
        "cycles": cycles,
        "t_end": t_end if t_end > 0 else 1.0,
    }


def _gantt_svg(data: Dict[str, Any]) -> str:
    disks = sorted(data["power"])
    t_end = data["t_end"]
    lanes = len(disks) + 1  # + the cycle strip
    height = 40 + lanes * (_LANE_H + _LANE_GAP) + 28
    span_w = _GANTT_W - _GANTT_L - _GANTT_R

    def x_of(ts: float) -> float:
        return _GANTT_L + (ts / t_end) * span_w

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_GANTT_W}" '
        f'height="{height}" viewBox="0 0 {_GANTT_W} {height}" '
        f'font-family="system-ui, sans-serif">',
        f'<rect width="{_GANTT_W}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="{_GANTT_L}" y="20" font-size="14" font-weight="600" '
        f'fill="{INK_PRIMARY}">Per-disk power states'
        f' (0 → {t_end:.2f} s)</text>',
    ]
    # Cycle strip: logging vs destage windows on the controller track.
    strip_y = 32
    parts.append(
        f'<text x="{_GANTT_L - 8}" y="{strip_y + 15}" font-size="11" '
        f'text-anchor="end" fill="{INK_SECONDARY}">cycle</text>'
    )
    for cyc in data["cycles"]:
        color = PALETTE[0] if cyc.name == "logging" else PALETTE[3]
        x0, x1 = x_of(cyc.ts), x_of(cyc.ts + cyc.dur)
        parts.append(
            f'<rect x="{x0:.1f}" y="{strip_y}" '
            f'width="{max(1.0, x1 - x0):.1f}" height="{_LANE_H - 8}" '
            f'rx="2" fill="{color}" opacity="0.55">'
            f"<title>{_esc(cyc.name)} "
            f"[{cyc.ts:.3f}, {cyc.ts + cyc.dur:.3f}]s</title></rect>"
        )
    # Disk lanes.
    for lane, disk in enumerate(disks):
        y = 32 + (lane + 1) * (_LANE_H + _LANE_GAP)
        parts.append(
            f'<text x="{_GANTT_L - 8}" y="{y + 15}" font-size="11" '
            f'text-anchor="end" fill="{INK_SECONDARY}">{_esc(disk)}</text>'
        )
        for span in data["power"][disk]:
            color = POWER_COLORS.get(span.name, GRID)
            x0, x1 = x_of(span.ts), x_of(span.ts + span.dur)
            parts.append(
                f'<rect x="{x0:.1f}" y="{y}" '
                f'width="{max(0.5, x1 - x0):.1f}" height="{_LANE_H}" '
                f'fill="{color}">'
                f"<title>{_esc(disk)} {_esc(span.name)} "
                f"{span.dur:.3f}s</title></rect>"
            )
    # Rotation duty hand-offs: dashed markers across all lanes.
    lane_top = 32
    lane_bottom = 32 + lanes * (_LANE_H + _LANE_GAP)
    for inst in data["handoffs"]:
        x = x_of(inst.ts)
        parts.append(
            f'<line x1="{x:.1f}" y1="{lane_top}" x2="{x:.1f}" '
            f'y2="{lane_bottom}" stroke="{INK_PRIMARY}" stroke-width="1" '
            f'stroke-dasharray="3,3" opacity="0.6">'
            f"<title>{_esc(inst.name)} @ {inst.ts:.3f}s</title></line>"
        )
    # Legend.
    legend_y = lane_bottom + 16
    x = _GANTT_L
    for state, color in POWER_COLORS.items():
        parts.append(
            f'<rect x="{x}" y="{legend_y - 10}" width="12" height="12" '
            f'rx="2" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + 16}" y="{legend_y}" font-size="11" '
            f'fill="{INK_PRIMARY}">{_esc(state)}</text>'
        )
        x += 16 + 8 * len(state) + 24
    parts.append("</svg>")
    return "".join(parts)


def _occupancy_svg(data: Dict[str, Any]) -> Optional[str]:
    if not data["occupancy"]:
        return None
    series_list = []
    for name in sorted(data["occupancy"]):
        series = Series(
            name=name,
            x_label="time (s)",
            y_label="log occupancy",
        )
        for ts, value in data["occupancy"][name]:
            series.add(ts, value)
        series_list.append(series)
    # render_chart_svg caps series at the palette size; fold the rest.
    series_list = series_list[: len(PALETTE)]
    return render_chart_svg(series_list, "Log-space occupancy")


def _phase_bar(attr: RequestAttribution, width: int = 640) -> str:
    if attr.measured <= 0:
        return ""
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="16" viewBox="0 0 {width} 16">'
    ]
    x = 0.0
    for phase in PHASES:
        frac = attr.phases[phase] / attr.measured
        w = frac * width
        if w <= 0:
            continue
        parts.append(
            f'<rect x="{x:.1f}" y="0" width="{max(0.5, w):.1f}" '
            f'height="16" fill="{PHASE_COLORS[phase]}">'
            f"<title>{phase}: {attr.phases[phase] * 1e3:.3f} ms "
            f"({frac:.1%})</title></rect>"
        )
        x += w
    parts.append("</svg>")
    return "".join(parts)


def _request_tree(
    attr: RequestAttribution, ops: List[TraceEvent], width: int = 640
) -> str:
    """The request's ops drawn against its own [arrival, finish] base."""
    lo = attr.arrival
    span = max(attr.measured, 1e-9)
    rows = []
    for op in sorted(ops, key=lambda e: (e.ts, e.track)):
        submit = op.ts - float(op.attrs.get("queued_s", 0.0))
        qx = (submit - lo) / span * width
        qw = (op.ts - submit) / span * width
        sx = (op.ts - lo) / span * width
        sw = op.dur / span * width
        bar = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="12" viewBox="0 0 {width} 12">'
            f'<rect x="{qx:.1f}" y="3" width="{max(0.5, qw):.1f}" '
            f'height="6" fill="{GRID}">'
            f"<title>queued {op.ts - submit:.4f}s</title></rect>"
            f'<rect x="{sx:.1f}" y="1" width="{max(0.5, sw):.1f}" '
            f'height="10" fill="{PALETTE[0]}">'
            f"<title>service {op.dur:.4f}s</title></rect>"
            f"</svg>"
        )
        rows.append(
            "<tr>"
            f'<td class="mono">{_esc(op.track)}</td>'
            f'<td class="mono">{_esc(op.name)}</td>'
            f"<td>{bar}</td>"
            "</tr>"
        )
    return (
        '<table class="ops"><thead><tr><th>disk</th><th>op</th>'
        "<th>queue + service (request time base)</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table>'
    )


def _summary_table(summary: Dict[str, Any]) -> str:
    if not summary.get("count"):
        return "<p>No requests attributed.</p>"
    head = "".join(f"<th>{_esc(p)}</th>" for p in PHASES)
    rows = []
    entries = [("mean", summary["mean"])]
    entries.extend(sorted(summary["quantiles"].items()))
    for label, entry in entries:
        cells = "".join(
            f"<td>{entry['fractions'][p]:.1%}</td>" for p in PHASES
        )
        rows.append(
            f"<tr><td>{_esc(label)}</td>"
            f"<td>{entry['latency_s'] * 1e3:.3f}</td>{cells}</tr>"
        )
    return (
        "<table><thead><tr><th></th><th>latency (ms)</th>"
        f"{head}</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def render_explorer_html(
    events: Iterable[TraceEvent],
    title: str = "RoLo timeline explorer",
    top: int = 8,
) -> str:
    """Render the explorer document; ``top`` bounds the slowest-request
    drill-down."""
    data = _collect(events)
    attributions = attribute_events(data["events"])
    summary = attribution_summary(attributions)
    worst = slowest_requests(attributions, top)

    sections: List[str] = []
    sections.append(f"<h2>Power-state timeline</h2>{_gantt_svg(data)}")
    occupancy = _occupancy_svg(data)
    if occupancy is not None:
        sections.append(f"<h2>Log occupancy</h2>{occupancy}")
    sections.append(
        f"<h2>Latency attribution</h2>{_summary_table(summary)}"
    )
    if worst:
        blocks = []
        for attr in worst:
            ops = data["ops_by_rid"].get(attr.rid, [])
            culprit = (
                f' — culprit: <span class="mono">{_esc(attr.culprit)}'
                "</span>"
                if attr.culprit
                else ""
            )
            blocks.append(
                '<div class="request">'
                f"<h3>rid {attr.rid} · {_esc(attr.kind)} · "
                f"{attr.measured * 1e3:.3f} ms{culprit}</h3>"
                f"{_phase_bar(attr)}"
                f"{_request_tree(attr, ops)}"
                "</div>"
            )
        legend = " ".join(
            f'<span style="color:{PHASE_COLORS[p]}">■</span> {p}'
            for p in PHASES
        )
        sections.append(
            f"<h2>{len(worst)} slowest requests</h2>"
            f'<p class="legend">{legend}</p>' + "".join(blocks)
        )

    body = "\n".join(sections)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_esc(title)}</title>
<style>
body {{ font-family: system-ui, sans-serif; background: {SURFACE};
       color: {INK_PRIMARY}; margin: 2rem auto; max-width: 64rem; }}
h1 {{ font-size: 1.4rem; }}
h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
h3 {{ font-size: 0.95rem; margin: 1rem 0 0.25rem; }}
table {{ border-collapse: collapse; font-size: 0.85rem; }}
th, td {{ border: 1px solid {GRID}; padding: 0.25rem 0.6rem;
          text-align: right; }}
th {{ background: {GRID}; }}
td:first-child, th:first-child {{ text-align: left; }}
.mono {{ font-family: ui-monospace, monospace; }}
.legend {{ font-size: 0.85rem; color: {INK_SECONDARY}; }}
.request {{ margin-bottom: 1rem; }}
table.ops td, table.ops th {{ border: none; text-align: left;
                              padding: 0.1rem 0.5rem; }}
</style>
</head>
<body>
<h1>{_esc(title)}</h1>
{body}
</body>
</html>
"""
