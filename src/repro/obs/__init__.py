"""Observability layer: structured tracing, time-series sampling and run
profiling for simulation runs.

See ``docs/architecture.md`` §8 for the design.  The key contract: every
hook observes without mutating, so traced/sampled/profiled runs produce
:class:`~repro.core.metrics.RunMetrics` byte-identical to plain runs, and
the disabled path (:data:`NULL_TRACER`) adds no work to the optimized
simulator loop.
"""

from repro.obs.metrics import (
    MetricCounter,
    Gauge,
    MetricHistogram,
    MetricsRegistry,
    P2Quantile,
    RunInstrumentation,
    active,
    disable,
    enable,
    enabled,
    format_sweep_table,
    instrument,
    lint_prometheus,
    log_buckets,
    read_snapshot,
    render_registry,
)
from repro.obs.attribution import (
    ATTRIBUTION_QUANTILES,
    PHASES,
    RequestAttribution,
    attribute_events,
    attribution_summary,
    format_attribution,
    slowest_requests,
)
from repro.obs.explorer import render_explorer_html
from repro.obs.export import (
    read_events,
    summarize_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.spans import SpanRecorder
from repro.obs.profiler import (
    CellProfile,
    ProfileReport,
    RunProfile,
    SimulatorProbe,
    merge_label_counts,
)
from repro.obs.sampler import Sample, TimeSeriesSampler
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    REQUEST_TRACK,
    TraceEvent,
    Tracer,
    normalize,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "SpanRecorder",
    "TraceEvent",
    "REQUEST_TRACK",
    "normalize",
    "ATTRIBUTION_QUANTILES",
    "PHASES",
    "RequestAttribution",
    "attribute_events",
    "attribution_summary",
    "format_attribution",
    "slowest_requests",
    "render_explorer_html",
    "read_events",
    "summarize_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "Sample",
    "TimeSeriesSampler",
    "RunProfile",
    "CellProfile",
    "ProfileReport",
    "SimulatorProbe",
    "merge_label_counts",
    "MetricCounter",
    "Gauge",
    "MetricHistogram",
    "MetricsRegistry",
    "P2Quantile",
    "RunInstrumentation",
    "active",
    "disable",
    "enable",
    "enabled",
    "format_sweep_table",
    "instrument",
    "lint_prometheus",
    "log_buckets",
    "read_snapshot",
    "render_registry",
]
