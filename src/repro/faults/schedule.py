"""Deterministic, seedable fault schedules.

A :class:`FaultSchedule` is an ordered set of fault events, each pinned to
a virtual time and a disk name.  Schedules round-trip through a compact
spec string (``fail@40:M0,slow@10:P1:4x20,lse@5:P0:2048+16``) so they can
be typed on the CLI, stored in campaign cache keys, and pinned in golden
files.  Randomized schedules come from :meth:`FaultSchedule.random_single_
failure` and friends, which draw from a caller-seeded ``random.Random`` —
the same seed always yields the same schedule.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Sequence, Tuple, Union


class FaultScheduleError(ValueError):
    """Raised for malformed schedule specs or invalid event parameters."""


def _fmt(value: float) -> str:
    """Compact float formatting for spec strings (no trailing zeros)."""
    text = f"{value:g}"
    return text


@dataclasses.dataclass(frozen=True)
class DiskFailure:
    """Fail-stop whole-disk failure at ``time`` (optionally no rebuild)."""

    time: float
    disk: str
    rebuild: bool = True

    def spec(self) -> str:
        tail = "" if self.rebuild else ":norebuild"
        return f"fail@{_fmt(self.time)}:{self.disk}{tail}"


@dataclasses.dataclass(frozen=True)
class Slowdown:
    """Transient service-time inflation: ``factor``x for ``duration`` s."""

    time: float
    disk: str
    factor: float
    duration: float

    def spec(self) -> str:
        return (
            f"slow@{_fmt(self.time)}:{self.disk}"
            f":{_fmt(self.factor)}x{_fmt(self.duration)}"
        )


@dataclasses.dataclass(frozen=True)
class LatentSectorError:
    """Latent media error, surfaced when a later read passes over it."""

    time: float
    disk: str
    sector: int
    n_sectors: int = 8

    def spec(self) -> str:
        return (
            f"lse@{_fmt(self.time)}:{self.disk}"
            f":{self.sector}+{self.n_sectors}"
        )


FaultEvent = Union[DiskFailure, Slowdown, LatentSectorError]


def _parse_one(token: str) -> FaultEvent:
    try:
        head, rest = token.split("@", 1)
        parts = rest.split(":")
        time = float(parts[0])
    except (ValueError, IndexError):
        raise FaultScheduleError(f"malformed fault spec {token!r}") from None
    if time < 0:
        raise FaultScheduleError(f"negative fault time in {token!r}")
    try:
        if head == "fail":
            if len(parts) == 2:
                return DiskFailure(time, parts[1])
            if len(parts) == 3 and parts[2] == "norebuild":
                return DiskFailure(time, parts[1], rebuild=False)
        elif head == "slow" and len(parts) == 3:
            factor, duration = parts[2].split("x", 1)
            return Slowdown(time, parts[1], float(factor), float(duration))
        elif head == "lse" and len(parts) == 3:
            sector, n_sectors = parts[2].split("+", 1)
            return LatentSectorError(
                time, parts[1], int(sector), int(n_sectors)
            )
    except (ValueError, IndexError):
        raise FaultScheduleError(f"malformed fault spec {token!r}") from None
    raise FaultScheduleError(f"unknown fault spec {token!r}")


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.spec()))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def spec(self) -> str:
        """Canonical spec string; ``parse(spec())`` round-trips exactly."""
        return ",".join(event.spec() for event in self.events)

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        tokens = [t.strip() for t in text.split(",") if t.strip()]
        if not tokens:
            raise FaultScheduleError("empty fault schedule spec")
        return cls(tuple(_parse_one(token) for token in tokens))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_failure(
        cls, disk: str, time: float, rebuild: bool = True
    ) -> "FaultSchedule":
        return cls((DiskFailure(time, disk, rebuild=rebuild),))

    @classmethod
    def random_single_failure(
        cls,
        rng: Union[int, random.Random],
        disks: Sequence[str],
        t_min: float,
        t_max: float,
        rebuild: bool = True,
    ) -> "FaultSchedule":
        """One failure of a random disk at a uniform-random time.

        ``rng`` is a seed or a caller-owned ``random.Random``; equal seeds
        yield equal schedules.
        """
        if isinstance(rng, int):
            rng = random.Random(rng)
        if not disks:
            raise FaultScheduleError("no candidate disks")
        if not t_max >= t_min >= 0:
            raise FaultScheduleError(f"bad window [{t_min}, {t_max}]")
        disk = rng.choice(list(disks))
        time = rng.uniform(t_min, t_max)
        return cls.single_failure(disk, time, rebuild=rebuild)

    @classmethod
    def random_soup(
        cls,
        rng: Union[int, random.Random],
        disks: Sequence[str],
        t_min: float,
        t_max: float,
        n_slowdowns: int = 2,
        n_lse: int = 2,
        data_capacity_bytes: int = 8 * 1024 * 1024,
    ) -> "FaultSchedule":
        """Transient-only chaos: slowdown windows plus latent errors."""
        if isinstance(rng, int):
            rng = random.Random(rng)
        events: List[FaultEvent] = []
        max_sector = max(1, data_capacity_bytes // 512)
        for _ in range(n_slowdowns):
            events.append(
                Slowdown(
                    round(rng.uniform(t_min, t_max), 3),
                    rng.choice(list(disks)),
                    factor=round(rng.uniform(2.0, 8.0), 2),
                    duration=round(rng.uniform(1.0, 10.0), 3),
                )
            )
        for _ in range(n_lse):
            events.append(
                LatentSectorError(
                    round(rng.uniform(t_min, t_max), 3),
                    rng.choice(list(disks)),
                    sector=rng.randrange(0, max_sector, 8),
                    n_sectors=8 * rng.randint(1, 4),
                )
            )
        return cls(tuple(events))
