"""Fault-injection campaigns: scheme x workload x fault-time grids.

A campaign is a grid of :class:`FaultCell`\\ s — one faulted simulation
each — executed with the same two-layer caching (in-process memo +
persistent :class:`~repro.experiments.cache.ResultCache`) and process-pool
fan-out as the main experiment matrix, including its shared-memory trace
store: a campaign sweeping five schemes × five fault times over one
workload publishes that workload's trace to shared memory once and fans
out fifty :class:`~repro.traces.shm.TraceRef`-carrying cells.  Results
are :class:`~repro.faults.injector.FaultRunResult` payloads; workers ship
them back as plain dicts, so parallel campaigns are bit-for-bit identical
to serial ones.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.experiments import runner
from repro.experiments.cache import active_cache
from repro.faults.injector import FaultRunResult, run_faulted
from repro.faults.schedule import FaultSchedule
from repro.traces.compiled import AnyTrace

#: In-process memo of completed fault cells (spec-keyed payload dicts).
_MEMO: Dict[Tuple, Dict[str, Any]] = {}


def clear_memo() -> None:
    _MEMO.clear()


@dataclasses.dataclass(frozen=True, eq=False)
class FaultCell:
    """One faulted simulation: a base workload cell plus a fault schedule.

    ``base`` supplies the trace and array configuration exactly as the
    fault-free experiments build them, so a fault-free control run of the
    same cell hits the main result cache.
    """

    base: runner.Cell
    schedule_spec: str

    def key(self) -> Tuple:
        return ("fault", self.base.key(), self.schedule_spec)

    def label(self) -> str:
        return f"{self.base.label()} + [{self.schedule_spec}]"

    def trace_key(self) -> Tuple:
        """Trace identity (faults never perturb the arrival stream)."""
        return self.base.trace_key()

    def build_trace(self) -> AnyTrace:
        return self.base.build_trace()

    def execute(self, trace: Optional[AnyTrace] = None) -> FaultRunResult:
        """Run the faulted simulation, bypassing every cache layer.

        ``trace`` substitutes a shared-memory attachment for the freshly
        generated trace (identical records either way).
        """
        if trace is None:
            trace = self.base.build_trace()
        config = self.base.resolve_config()
        schedule = FaultSchedule.parse(self.schedule_spec)
        return run_faulted(self.base.scheme, config, trace, schedule)

    def execute_metered(
        self, trace: Optional[AnyTrace] = None, registry=None
    ) -> Tuple[FaultRunResult, Any]:
        """Run uncached with the metrics registry instrumented in.

        Returns ``(result, registry)``.  Metering observes only: the
        result is byte-identical to :meth:`execute`.
        """
        from repro.obs.metrics import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        if trace is None:
            trace = self.base.build_trace()
        config = self.base.resolve_config()
        schedule = FaultSchedule.parse(self.schedule_spec)
        result = run_faulted(
            self.base.scheme, config, trace, schedule, registry=registry
        )
        return result, registry


def fault_cell(
    scheme: str,
    workload: str,
    schedule: FaultSchedule,
    scale: Optional[float] = None,
    n_pairs: int = 4,
    seed: int = 42,
    **config_overrides,
) -> FaultCell:
    return FaultCell(
        base=runner.workload_cell(
            scheme,
            workload,
            scale=scale,
            n_pairs=n_pairs,
            seed=seed,
            **config_overrides,
        ),
        schedule_spec=schedule.spec(),
    )


def build_campaign(
    schemes: Iterable[str],
    workloads: Iterable[str],
    fault_times: Iterable[float],
    disks: Iterable[str] = ("P0", "M0"),
    rebuild: bool = True,
    **cell_kwargs,
) -> List[FaultCell]:
    """The full grid: one single-failure cell per combination."""
    cells = []
    for scheme in schemes:
        for workload in workloads:
            for time in fault_times:
                for disk in disks:
                    schedule = FaultSchedule.single_failure(
                        disk, time, rebuild=rebuild
                    )
                    cells.append(
                        fault_cell(scheme, workload, schedule, **cell_kwargs)
                    )
    return cells


# ----------------------------------------------------------------------
# Cached + parallel execution
# ----------------------------------------------------------------------
def _lookup(key: Tuple) -> Optional[Dict[str, Any]]:
    hit = _MEMO.get(key)
    if hit is not None:
        return hit
    disk = active_cache()
    if disk is not None:
        payload = disk.get_payload(key)
        if payload is not None:
            _MEMO[key] = payload
            return payload
    return None


def _install(key: Tuple, payload: Dict[str, Any]) -> None:
    _MEMO[key] = payload
    disk = active_cache()
    if disk is not None:
        disk.put_payload(key, payload)


def _compute_fault_cell(cell: FaultCell, ref=None) -> Dict[str, Any]:
    """Worker entry point: run one cell, ship its payload dict back."""
    from repro.traces import shm

    trace = shm.attach_cached(ref) if ref is not None else None
    return cell.execute(trace=trace).to_dict()


def _compute_fault_cell_metered(cell: FaultCell, ref=None) -> Dict[str, Any]:
    """Worker entry point with the metrics registry instrumented in."""
    from repro.traces import shm

    trace = shm.attach_cached(ref) if ref is not None else None
    result, registry = cell.execute_metered(trace=trace)
    return {"result": result.to_dict(), "registry": registry.to_dict()}


def run_campaign(
    cells: Iterable[FaultCell],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    collect_metrics: bool = False,
    registry=None,
) -> List[FaultRunResult]:
    """Execute (or fetch) every cell; returns results in input order.

    ``progress`` may be a plain ``callable(str)`` or a
    :class:`~repro.experiments.parallel.SweepProgress` (throttled
    single-line rendering with ETA).  With ``collect_metrics=True``
    computed cells run instrumented and worker registries merge into
    ``registry`` (created if omitted) along with dispatcher telemetry;
    the cached payloads stay byte-identical either way.  Metering only
    covers cells computed in this call — cached cells contribute nothing.
    """
    from repro.experiments.parallel import SweepProgress

    if collect_metrics and registry is None:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()

    cell_list = list(cells)
    unique: Dict[Tuple, FaultCell] = {}
    for cell in cell_list:
        unique.setdefault(cell.key(), cell)

    pending = [
        (key, cell)
        for key, cell in unique.items()
        if _lookup(key) is None
    ]
    done = len(unique) - len(pending)
    if isinstance(progress, SweepProgress):
        progress.start(len(unique), done=done)

    def _note(cell: FaultCell) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            if isinstance(progress, SweepProgress):
                progress(cell.label())
            else:
                progress(f"[{done}/{len(unique)}] {cell.label()}")

    if pending and jobs > 1:
        from repro.experiments.parallel import run_grouped

        if collect_metrics:
            from repro.obs.metrics import MetricsRegistry

            def _handle(key: Tuple, cell: FaultCell, payload: Dict[str, Any]):
                _install(key, payload["result"])
                registry.merge(MetricsRegistry.from_dict(payload["registry"]))
                _note(cell)

            run_grouped(
                pending,
                jobs,
                _compute_fault_cell_metered,
                _handle,
                telemetry=registry,
            )
        else:

            def _handle(key: Tuple, cell: FaultCell, payload: Dict[str, Any]):
                _install(key, payload)
                _note(cell)

            run_grouped(pending, jobs, _compute_fault_cell, _handle)
    else:
        for key, cell in pending:
            if collect_metrics:
                result, _ = cell.execute_metered(registry=registry)
                _install(key, result.to_dict())
            else:
                _install(key, cell.execute().to_dict())
            _note(cell)

    if isinstance(progress, SweepProgress):
        progress.finish()
    return [
        FaultRunResult.from_dict(_lookup(cell.key()))
        for cell in cell_list
    ]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def campaign_summary(
    cells: List[FaultCell], results: List[FaultRunResult]
) -> Dict[str, Any]:
    """Golden-file-friendly projection of a campaign's outcome.

    Continuous quantities are rounded so the summary is stable across
    platforms; counts and verdicts are exact.
    """
    rows = []
    for cell, result in zip(cells, results):
        rebuild_time = (
            round(result.rebuilds[0]["rebuild_time"], 3)
            if result.rebuilds
            else None
        )
        rows.append(
            {
                "scheme": result.scheme,
                "workload": cell.base.workload
                or getattr(cell.base.trace_config, "name", "?"),
                "schedule": result.schedule,
                "requests": result.metrics.requests,
                "lost_blocks": result.lost_blocks_total,
                "consistent": result.consistent,
                "checks": len(result.checks),
                "rebuild_time_s": rebuild_time,
            }
        )
    return {
        "cells": len(rows),
        "inconsistent_cells": sum(1 for r in rows if not r["consistent"]),
        "rows": rows,
    }
