"""Drives a :class:`FaultSchedule` through a live simulation.

The injector schedules each fault event on the simulator clock before the
run starts.  Disk failures honor the fail-stop-between-operations model:
if the victim is mid-operation at the scheduled instant, the injector
polls until the disk is quiet and fails it then (the event log records
both the scheduled and the effective time).  After a failure it runs an
oracle sweep, optionally starts an online rebuild, and sweeps again once
the replacement is swapped in.

Slowdown windows set/restore ``Disk.slowdown_factor``; latent sector
errors are planted with ``Disk.inject_latent_error`` and, when a later
read surfaces them, repaired by a background re-write of the damaged
range (the scrub path), all visible in the event log.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.core import build_controller, run_trace
from repro.core.base import Controller
from repro.core.metrics import RunMetrics
from repro.disk.disk import Disk, DiskOp, OpKind, Priority
from repro.faults.oracle import ConsistencyOracle, OracleCheck
from repro.faults.schedule import (
    DiskFailure,
    FaultSchedule,
    FaultScheduleError,
    LatentSectorError,
    Slowdown,
)
from repro.sim.engine import Simulator


class FaultInjector:
    """Applies a schedule's events to one controller's disks."""

    def __init__(
        self,
        sim: Simulator,
        controller: Controller,
        schedule: FaultSchedule,
        oracle: Optional[ConsistencyOracle] = None,
        poll_interval: float = 0.005,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.schedule = schedule
        self.oracle = oracle
        self.poll_interval = poll_interval
        #: Chronological log of everything the injector did.
        self.events: List[Dict[str, Any]] = []
        self.rebuilds: List[Dict[str, Any]] = []
        self.checks: List[OracleCheck] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault event; call once, before the run."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        for event in self.schedule.events:
            if isinstance(event, DiskFailure):
                self.sim.at(
                    event.time, self._fail, event, label="fault:fail"
                )
            elif isinstance(event, Slowdown):
                self.sim.at(
                    event.time, self._slow_start, event, label="fault:slow"
                )
            elif isinstance(event, LatentSectorError):
                self.sim.at(
                    event.time, self._plant_lse, event, label="fault:lse"
                )
            else:  # pragma: no cover - schedule types are closed
                raise FaultScheduleError(f"unknown event {event!r}")

    # ------------------------------------------------------------------
    def _find_disk(self, name: str) -> Disk:
        for disk in self.controller.all_disks():
            if disk.name == name:
                return disk
        raise FaultScheduleError(
            f"{name!r} is not a member disk of "
            f"{self.controller.scheme_name}"
        )

    def _check(self, event: str) -> None:
        if self.oracle is not None:
            self.checks.append(self.oracle.check(event))

    # ------------------------------------------------------------------
    # Disk failure + rebuild
    # ------------------------------------------------------------------
    def _fail(self, event: DiskFailure) -> None:
        disk = self._find_disk(event.disk)

        def quiet() -> bool:
            return not disk.busy and disk.queue_depth == 0

        def act() -> None:
            self.controller.fail_disk(disk)
            self.events.append(
                {
                    "kind": "disk-failure",
                    "disk": event.disk,
                    "scheduled_t": event.time,
                    "t": self.sim.now,
                }
            )
            self._check(f"at-fault:{event.disk}")
            if event.rebuild:
                started = self.sim.now
                self.controller.begin_rebuild(
                    disk,
                    on_complete=lambda: self._rebuilt(event, started),
                )

        if quiet():
            act()
        else:
            # Fail-stop between operations: wait for the in-flight work to
            # complete, then fail the disk.
            self.sim.poll(
                self.poll_interval, quiet, act, label="fault:wait-quiet"
            )

    def _rebuilt(self, event: DiskFailure, started: float) -> None:
        self.rebuilds.append(
            {
                "disk": event.disk,
                "started": started,
                "finished": self.sim.now,
                "rebuild_time": self.sim.now - started,
            }
        )
        self._check(f"post-rebuild:{event.disk}")

    # ------------------------------------------------------------------
    # Transient slowdowns
    # ------------------------------------------------------------------
    def _slow_start(self, event: Slowdown) -> None:
        disk = self._find_disk(event.disk)
        disk.slowdown_factor = event.factor
        self.events.append(
            {
                "kind": "slowdown-start",
                "disk": event.disk,
                "t": self.sim.now,
                "factor": event.factor,
            }
        )
        self.sim.schedule(
            event.duration,
            self._slow_end,
            event,
            disk,
            label="fault:slow-end",
        )

    def _slow_end(self, event: Slowdown, disk: Disk) -> None:
        # Restore on the original object: correct even if the disk failed
        # or was replaced meanwhile (then it is simply inert).
        disk.slowdown_factor = 1.0
        self.events.append(
            {"kind": "slowdown-end", "disk": event.disk, "t": self.sim.now}
        )

    # ------------------------------------------------------------------
    # Latent sector errors
    # ------------------------------------------------------------------
    def _plant_lse(self, event: LatentSectorError) -> None:
        disk = self._find_disk(event.disk)
        if disk.failed:
            self.events.append(
                {
                    "kind": "lse-skipped",
                    "disk": event.disk,
                    "t": self.sim.now,
                }
            )
            return
        disk.on_media_error = self._media_error
        disk.inject_latent_error(event.sector, event.n_sectors)
        self.events.append(
            {
                "kind": "lse-planted",
                "disk": event.disk,
                "t": self.sim.now,
                "sector": event.sector,
                "n_sectors": event.n_sectors,
            }
        )

    def _media_error(self, disk: Disk, sector: int, n_sectors: int) -> None:
        self.events.append(
            {
                "kind": "media-error",
                "disk": disk.name,
                "t": self.sim.now,
                "sector": sector,
                "n_sectors": n_sectors,
            }
        )
        if self.controller.tracer is not None:
            self.controller.tracer.fault(
                "media-error",
                self.controller.scheme_name,
                self.sim.now,
                disk=disk.name,
                sector=sector,
            )
        # Scrub repair: re-write the damaged range from the mirrored copy.
        self.sim.schedule(
            0.0, self._scrub, disk, sector, n_sectors, label="fault:scrub"
        )

    def _scrub(self, disk: Disk, sector: int, n_sectors: int) -> None:
        if disk.failed:
            return
        disk.submit(
            DiskOp(
                OpKind.WRITE,
                sector,
                n_sectors * 512,
                priority=Priority.BACKGROUND,
            )
        )
        self.events.append(
            {
                "kind": "scrub-repair",
                "disk": disk.name,
                "t": self.sim.now,
                "sector": sector,
                "n_sectors": n_sectors,
            }
        )


# ----------------------------------------------------------------------
# One-shot faulted run
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FaultRunResult:
    """Everything one faulted run produced, JSON round-trippable."""

    scheme: str
    schedule: str
    metrics: RunMetrics
    events: List[Dict[str, Any]]
    rebuilds: List[Dict[str, Any]]
    checks: List[OracleCheck]
    #: Full :meth:`ConsistencyOracle.to_dict` snapshot (clauses + checks)
    #: when the run had an oracle; ``None`` otherwise.  The snapshot is
    #: the canonical serialization of the checks — ``to_dict`` emits the
    #: bare ``checks`` list only for oracle-less runs.
    oracle: Optional[Dict[str, Any]] = None

    @property
    def lost_blocks_total(self) -> int:
        return sum(len(check.lost) for check in self.checks)

    @property
    def consistent(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "scheme": self.scheme,
            "schedule": self.schedule,
            "metrics": self.metrics.to_dict(),
            "events": self.events,
            "rebuilds": self.rebuilds,
        }
        if self.oracle is not None:
            data["oracle"] = self.oracle
        else:
            data["checks"] = [check.to_dict() for check in self.checks]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRunResult":
        oracle = data.get("oracle")
        if oracle is not None:
            checks_data = oracle["checks"]
        else:
            checks_data = data.get("checks", [])
        return cls(
            scheme=data["scheme"],
            schedule=data["schedule"],
            metrics=RunMetrics.from_dict(data["metrics"]),
            events=data["events"],
            rebuilds=data["rebuilds"],
            checks=[OracleCheck.from_dict(c) for c in checks_data],
            oracle=oracle,
        )


def run_faulted(
    scheme: str,
    config,
    trace,
    schedule: FaultSchedule,
    with_oracle: bool = True,
    tracer=None,
    registry=None,
    oracle: Optional[ConsistencyOracle] = None,
    checker=None,
) -> FaultRunResult:
    """Replay ``trace`` under ``schedule`` and report the fault outcome.

    The simulation is drained to completion, so any rebuild started by the
    schedule has finished (and been oracle-checked) by the time this
    returns.  A final ``end`` sweep covers schedules without rebuilds.

    With a metrics ``registry`` the run is instrumented (latency/power
    histograms, degraded-read counts); like the oracle and tracer, the
    registry observes only, so metered fault runs stay byte-identical.

    A caller-supplied ``oracle`` (e.g. the verification harness's
    :class:`~repro.verify.ReferenceModel`) replaces the internal
    :class:`ConsistencyOracle`; ``checker`` is an invariant checker with
    ``install(sim, controller)``/``uninstall()`` that chains onto the
    engine event hook *inside* any metrics instrumentation so both
    observers see every event and unwind cleanly.  RAID5-family schemes
    are built through :func:`repro.core.build_raid5_controller` (their
    fail-stop surface has no ``fail_disk``, so schedules for them must
    contain only slowdown/LSE events).
    """
    from repro.core import RAID5_SCHEMES, build_raid5_controller

    sim = Simulator()
    if oracle is None and with_oracle:
        oracle = ConsistencyOracle()
    if scheme.lower() in RAID5_SCHEMES:
        controller = build_raid5_controller(
            scheme, sim, config, oracle=oracle
        )
    else:
        controller = build_controller(
            scheme, sim, config, tracer=tracer, oracle=oracle
        )
    injector = FaultInjector(sim, controller, schedule, oracle=oracle)
    injector.arm()
    if registry is not None:
        from repro.obs.metrics import instrument

        with instrument(sim, controller, registry):
            if checker is not None:
                checker.install(sim, controller)
            try:
                metrics = run_trace(controller, trace)
            finally:
                if checker is not None:
                    checker.uninstall()
    else:
        if checker is not None:
            checker.install(sim, controller)
        try:
            metrics = run_trace(controller, trace)
        finally:
            if checker is not None:
                checker.uninstall()
    injector._check("end")
    return FaultRunResult(
        scheme=scheme,
        schedule=schedule.spec(),
        metrics=metrics,
        events=injector.events,
        rebuilds=injector.rebuilds,
        checks=injector.checks,
        oracle=oracle.to_dict() if oracle is not None else None,
    )
