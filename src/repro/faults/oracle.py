"""Shadow block-store consistency oracle.

The oracle mirrors every *acknowledged* logical write at stripe-unit
granularity and tracks, for each unit, **where its latest contents live**.
Controllers report three kinds of events:

* ``note_segment_write`` — a write segment was acknowledged with copies on
  the named disks (home copies and/or log copies);
* ``note_destage`` — previously logged units were copied onto their home
  disks;
* ``note_rebuilt`` — a replacement disk now holds a full copy of a pair's
  data.

State per ``(pair, unit)`` is a list of CNF clauses, each a frozenset of
disk names: the unit's latest contents are reconstructable iff *every*
clause intersects the set of surviving (non-failed) disks.  A full-unit
overwrite replaces the clause list (older copies are obsolete); a partial
overwrite appends a clause (the old content under the new bytes is still
needed, but so are the new bytes); a destage or rebuild unions the new
holder into existing clauses (the data gained a copy, nothing was lost).

The bookkeeping is exact under the single-fault scope this repo's
campaigns exercise; log-space reclaim is deliberately *not* modeled
because every controller destages (union) before it reclaims, so a clause
can only over-approximate the surviving copies after a second fault.

The oracle only observes: it never schedules events, issues I/O, or
mutates controller state, so runs with an oracle attached are
byte-identical to plain runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Tuple


@dataclasses.dataclass
class OracleCheck:
    """Outcome of one consistency sweep (at fault time, post-rebuild...)."""

    event: str
    time: float
    tracked_units: int
    #: ``(pair, unit_base)`` of every unit whose latest contents cannot be
    #: reconstructed from the surviving disks.  Empty == consistent.
    lost: List[Tuple[int, int]]

    @property
    def ok(self) -> bool:
        return not self.lost

    def to_dict(self) -> dict:
        return {
            "event": self.event,
            "time": self.time,
            "tracked_units": self.tracked_units,
            "lost": [list(item) for item in self.lost],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OracleCheck":
        return cls(
            event=data["event"],
            time=data["time"],
            tracked_units=data["tracked_units"],
            lost=[tuple(item) for item in data["lost"]],
        )


class ConsistencyOracle:
    """Tracks reconstructability of every acknowledged write."""

    def __init__(self) -> None:
        self.controller = None
        #: (pair, unit_base) -> CNF clauses over disk names.
        self._clauses: Dict[Tuple[int, int], List[FrozenSet[str]]] = {}
        self.checks: List[OracleCheck] = []

    def attach(self, controller) -> None:
        """Install this oracle on ``controller`` (sets ``.oracle``)."""
        controller.oracle = self
        self.controller = controller

    # ------------------------------------------------------------------
    # Write-path events (called by the controllers)
    # ------------------------------------------------------------------
    def note_segment_write(self, controller, seg, copies: List[str]) -> None:
        """An acknowledged write segment landed on the named disks.

        ``map_extent`` segments never cross stripe-unit boundaries, so a
        segment covers exactly one unit, fully or partially.
        """
        unit = controller.layout.stripe_unit
        base = (seg.disk_offset // unit) * unit
        full = seg.disk_offset == base and seg.nbytes == unit
        self.note_write(seg.pair, base, copies, full)

    def note_write(
        self, pair: int, base: int, copies: List[str], full: bool
    ) -> None:
        clause = frozenset(copies)
        key = (pair, base)
        if full or key not in self._clauses:
            # Full overwrite: older copies of this unit are obsolete.
            self._clauses[key] = [clause]
        else:
            # Partial overwrite: old content under the new bytes is still
            # live, AND the new bytes are needed.
            self._clauses[key].append(clause)

    def note_destage(
        self, pair: int, units: List[int], targets: List[str]
    ) -> None:
        """Logged units of ``pair`` were copied onto the target disks."""
        names = frozenset(targets)
        for base in units:
            clauses = self._clauses.get((pair, base))
            if clauses is None:
                continue
            self._clauses[(pair, base)] = [c | names for c in clauses]

    def note_rebuilt(
        self, role: str, index: int, replacement_name: str
    ) -> None:
        """A replacement for pair ``index``'s ``role`` disk is consistent."""
        if role == "log":
            return  # log disks hold copies already attributed by name
        extra = frozenset((replacement_name,))
        for key, clauses in self._clauses.items():
            if key[0] != index:
                continue
            self._clauses[key] = [c | extra for c in clauses]

    # ------------------------------------------------------------------
    # Read-path / cache events (no-ops here; the verification reference
    # model overrides these to check read routing — keeping them on the
    # base class lets controllers call them unconditionally through any
    # attached oracle)
    # ------------------------------------------------------------------
    def note_read(self, controller, seg, disk_name: str, kind: str) -> None:
        """A read segment was served from ``disk_name`` (observe-only)."""

    def note_cache_fill(
        self, pair: int, base: int, disk_names: List[str]
    ) -> None:
        """A unit was copied into a log-region read cache (RoLo-E)."""

    def note_parity_write(self, controller, seg) -> None:
        """A data segment landed on its owner disk (RAID5/RoLo-5)."""

    def note_parity_read(self, controller, seg, disk_name: str) -> None:
        """A read was served by a RAID5/RoLo-5 owner disk."""

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Complete, JSON-safe snapshot of the oracle's tracked state.

        Clause sets are emitted sorted so equal oracle states serialize to
        equal dictionaries; :meth:`from_dict` round-trips exactly.  Used by
        fault-campaign payloads and ``rolo verify`` shrink artifacts.
        """
        return {
            "clauses": [
                [list(key), sorted(sorted(clause) for clause in clauses)]
                for key, clauses in sorted(self._clauses.items())
            ],
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConsistencyOracle":
        oracle = cls()
        for key, clauses in data["clauses"]:
            oracle._clauses[tuple(key)] = [
                frozenset(clause) for clause in clauses
            ]
        oracle.checks = [
            OracleCheck.from_dict(check) for check in data["checks"]
        ]
        return oracle

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    @property
    def tracked_units(self) -> int:
        return len(self._clauses)

    def lost_blocks(self) -> List[Tuple[int, int]]:
        """Units whose latest contents no surviving-disk set can rebuild."""
        if self.controller is None:
            return []
        alive = {
            d.name for d in self.controller.all_disks() if not d.failed
        }
        lost = []
        for key in sorted(self._clauses):
            for clause in self._clauses[key]:
                if not (clause & alive):
                    lost.append(key)
                    break
        return lost

    def check(self, event: str) -> OracleCheck:
        """Sweep all tracked units and record an :class:`OracleCheck`."""
        report = OracleCheck(
            event=event,
            time=self.controller.sim.now if self.controller else 0.0,
            tracked_units=self.tracked_units,
            lost=self.lost_blocks(),
        )
        self.checks.append(report)
        return report
