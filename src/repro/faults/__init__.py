"""Fault injection: schedules, the injector, and the consistency oracle.

Quick start::

    from repro.core import ArrayConfig
    from repro.faults import FaultSchedule, run_faulted
    from repro.traces import build_workload_trace

    schedule = FaultSchedule.parse("fail@40:M0")
    result = run_faulted(
        "rolo-p",
        ArrayConfig(n_pairs=4).scaled(0.05),
        build_workload_trace("src2_2", scale=0.05),
        schedule,
    )
    assert result.consistent  # zero unrecoverable blocks

See :mod:`repro.faults.campaign` for scheme x workload x fault-time grids
with caching and process-pool fan-out, and ``rolo faults`` on the CLI.
"""

from repro.faults.campaign import (
    FaultCell,
    build_campaign,
    campaign_summary,
    fault_cell,
    run_campaign,
)
from repro.faults.injector import FaultInjector, FaultRunResult, run_faulted
from repro.faults.oracle import ConsistencyOracle, OracleCheck
from repro.faults.schedule import (
    DiskFailure,
    FaultSchedule,
    FaultScheduleError,
    LatentSectorError,
    Slowdown,
)

__all__ = [
    "ConsistencyOracle",
    "OracleCheck",
    "DiskFailure",
    "Slowdown",
    "LatentSectorError",
    "FaultSchedule",
    "FaultScheduleError",
    "FaultInjector",
    "FaultRunResult",
    "run_faulted",
    "FaultCell",
    "fault_cell",
    "build_campaign",
    "run_campaign",
    "campaign_summary",
]
