"""Controller base class and the trace replay driver."""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional

from repro.core.config import ArrayConfig
from repro.core.metrics import RunMetrics
from repro.disk.disk import (
    Disk,
    DiskOp,
    OpKind,
    Priority,
    Scheduler,
    acquire_op,
)
from repro.disk.power import PowerState
from repro.raid.request import (
    IORequest,
    RequestKind,
    acquire_request,
    release_request,
)
from repro.sim.engine import Simulator
from repro.traces.compiled import AnyTrace, CompiledTrace
from repro.traces.record import Trace

#: Kind-column decode table (indexes match KIND_READ / KIND_WRITE).
_KIND_BY_CODE = (RequestKind.READ, RequestKind.WRITE)


def _noop_note(*_args, **_kwargs) -> None:
    """Module-level no-op bound in place of oracle notes when no oracle
    is attached, so hot paths call straight through instead of testing
    ``self.oracle is not None`` per segment."""


class DataLossError(RuntimeError):
    """Both copies of a mirrored pair are gone."""


class Controller(abc.ABC):
    """Base class of all array controllers (RAID10, GRAID, RoLo-P/R/E).

    A controller owns its disks, translates logical
    :class:`~repro.raid.request.IORequest` objects into disk operations, and
    implements the scheme's power policy.  Subclasses must implement
    :meth:`submit`, :meth:`_build_disks` and :meth:`disks_by_role`.

    Fault handling is shared: :meth:`fail_disk` injects a fail-stop disk
    failure and :meth:`begin_rebuild` runs an online rebuild onto a fresh
    replacement.  Schemes customize through the :meth:`_on_disk_failed` /
    :meth:`_on_rebuild_complete` hooks rather than by overriding the entry
    points.
    """

    scheme_name = "abstract"

    def __init__(
        self,
        sim: Simulator,
        config: ArrayConfig,
        tracer: object = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.layout = config.layout()
        self.metrics = RunMetrics()
        # ``tracer`` is a repro.obs Tracer; the NullTracer default is
        # falsy, so disabled tracing normalizes to None and every hook
        # below guards with one identity check.
        self.tracer = tracer if tracer else None
        self._finalized = False
        #: Reads routed around a failed copy (degraded-mode service count).
        self.degraded_reads = 0
        self._pending_sleep: Dict[Disk, Callable[[Disk], None]] = {}
        #: failed disk -> in-progress replacement (empty until a rebuild).
        self._rebuilding: Dict[Disk, Disk] = {}
        #: Pair indices with a failed copy, maintained by ``fail_disk`` /
        #: rebuild completion so hot routing (mirror pick, write targets)
        #: skips the per-segment ``.failed`` property chains while the
        #: array is healthy.
        self._degraded_pairs: set = set()
        #: Optional repro.faults ConsistencyOracle; attached post-
        #: construction by ``ConsistencyOracle.attach``.  The oracle only
        #: observes, so runs with it enabled are byte-identical.  The
        #: property setter binds ``_note_read`` once per attach — a
        #: module-level no-op when detached — so read paths never test
        #: for an oracle per segment.
        self.oracle = None
        self._build_disks()

    # ------------------------------------------------------------------
    # Oracle attachment (note elision)
    # ------------------------------------------------------------------
    @property
    def oracle(self):
        """The attached consistency oracle (``None`` when detached)."""
        return self._oracle

    @oracle.setter
    def oracle(self, oracle) -> None:
        self._oracle = oracle
        # Cheap-argument notes resolve to bound oracle methods (or the
        # module-level no-op) exactly once per attach; notes whose
        # arguments are expensive to build (copy-name lists) keep an
        # explicit ``if self.oracle is not None`` guard at the call site.
        self._note_read = (
            _noop_note if oracle is None else oracle.note_read
        )

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build_disks(self) -> None:
        """Create the scheme's disks in their initial power states."""

    @abc.abstractmethod
    def submit(self, request: IORequest) -> None:
        """Issue one logical request.  The controller must eventually drive
        ``request`` to completion via its fan-in counters."""

    @abc.abstractmethod
    def disks_by_role(self) -> Dict[str, List[Disk]]:
        """Disks grouped by role ('primary', 'mirror', 'log')."""

    def drain(self) -> None:
        """Flush all inconsistent state (called after the trace completes,
        outside the measured window).  Default: nothing to flush."""

    def dirty_units_total(self) -> int:
        """Stripe units whose mirrored copy is stale.  Used by consistency
        tests; schemes without logging return 0."""
        return 0

    def log_regions(self) -> List:
        """The scheme's log regions (for occupancy sampling); default none."""
        return []

    # ------------------------------------------------------------------
    # Fault injection and online rebuild (shared across all schemes)
    # ------------------------------------------------------------------
    def _locate(self, disk: Disk) -> "tuple":
        """Return ``(role, index)`` of a member disk."""
        for role, disks in self.disks_by_role().items():
            for index, candidate in enumerate(disks):
                if candidate is disk:
                    return role, index
        raise ValueError(f"{disk.name} is not part of {self.scheme_name}")

    def fail_disk(self, disk: Disk) -> None:
        """Inject a fail-stop failure; subsequent I/O routes around it.

        The scheme-specific reaction (duty hand-off, destage abort,
        degraded routing state) happens in :meth:`_on_disk_failed`.
        """
        role, index = self._locate(disk)
        disk.fail()
        self._cancel_sleep(disk)
        if role in ("primary", "mirror"):
            self._degraded_pairs.add(index)
        self._trace_instant(
            "fault", "disk-failure", disk=disk.name, role=role
        )
        self._on_disk_failed(disk, role, index)

    def _on_disk_failed(self, disk: Disk, role: str, index: int) -> None:
        """Scheme hook: adapt in-flight logging/destaging to the failure.

        Runs after the disk is already FAILED.  Default: nothing beyond
        the generic degraded routing."""

    def begin_rebuild(
        self,
        disk: Disk,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        """Rebuild a failed disk onto a fresh replacement, online.

        New writes are mirrored to the replacement while the background
        copy runs, so the replacement is fully consistent at swap time.
        Returns the :class:`~repro.core.recovery.RecoveryProcess`.
        """
        from repro.core.recovery import RecoveryProcess, plan_recovery

        if not disk.failed:
            raise ValueError(f"{disk.name} has not failed")
        if disk in self._rebuilding:
            raise ValueError(f"{disk.name} is already rebuilding")
        role, index = self._locate(disk)
        plan = plan_recovery(self, disk)
        start_ts = self.sim.now

        def _swap(process: "RecoveryProcess") -> None:
            replacement = process.replacement
            self._replace_disk(disk, replacement)
            del self._rebuilding[disk]
            if role in ("primary", "mirror") and not (
                self.primaries[index].failed
                or self.mirrors[index].failed
            ):
                self._degraded_pairs.discard(index)
            self._trace_span(
                "fault",
                "rebuild",
                start_ts,
                disk=disk.name,
                replacement=replacement.name,
            )
            if self.oracle is not None:
                self.oracle.note_rebuilt(role, index, replacement.name)
            self._on_rebuild_complete(disk, replacement)
            if on_complete is not None:
                on_complete()

        process = RecoveryProcess(
            self.sim, self, plan, on_complete=_swap
        )
        self._rebuilding[disk] = process.replacement
        process.start()
        return process

    def _replace_disk(self, old: Disk, new: Disk) -> None:
        """Swap a rebuilt replacement into every role list holding ``old``.

        ``disks_by_role`` must therefore return the controller's actual
        lists, not copies (all schemes do)."""
        for disks in self.disks_by_role().values():
            for index, candidate in enumerate(disks):
                if candidate is old:
                    disks[index] = new

    def _on_rebuild_complete(self, old: Disk, new: Disk) -> None:
        """Scheme hook: the replacement has been swapped in for ``old``."""

    def _pair_degraded(self, pair: int) -> bool:
        """True while either disk of a mirrored pair is failed.

        Memoized: ``_degraded_pairs`` is maintained by ``fail_disk`` and
        rebuild completion (the only failure/repair entry points), so the
        healthy-array hot path is one set-membership test instead of two
        property chains per segment.
        """
        return pair in self._degraded_pairs

    def _write_targets(self, pair: int) -> List[Disk]:
        """Where an in-place write to ``pair`` must land: the surviving
        copies, plus the replacement while a rebuild is running."""
        primary = self.primaries[pair]
        mirror = self.mirrors[pair]
        if pair not in self._degraded_pairs:
            return [primary, mirror]
        targets: List[Disk] = []
        for disk in (primary, mirror):
            if disk.failed:
                replacement = self._rebuilding.get(disk)
                if replacement is not None:
                    targets.append(replacement)
            else:
                targets.append(disk)
        if not targets:
            raise DataLossError(f"pair {pair} has lost both copies")
        return targets

    def _read_source(self, pair: int) -> Disk:
        """Least-loaded surviving copy of a mirrored pair."""
        primary = self.primaries[pair]
        mirror = self.mirrors[pair]
        if pair not in self._degraded_pairs:
            # Healthy pair: inline the two-way min (ties go to the
            # primary, matching min() over [primary, mirror]).
            if primary.queue_depth <= mirror.queue_depth:
                return primary
            return mirror
        alive = [d for d in (primary, mirror) if not d.failed]
        if not alive:
            raise DataLossError(f"pair {pair} has lost both copies")
        if len(alive) == 1:
            self.degraded_reads += 1
        return min(alive, key=lambda d: d.queue_depth)

    def _unit_coverage(self, offset: int, nbytes: int):
        """Yield ``(pair, unit_base, fully_covered)`` for every stripe unit
        a logical extent touches — the consistency oracle's granularity."""
        unit = self.layout.stripe_unit
        for seg in self.layout.map_extent(offset, nbytes):
            first = (seg.disk_offset // unit) * unit
            last = ((seg.end_offset - 1) // unit) * unit
            for base in range(first, last + 1, unit):
                full = (
                    seg.disk_offset <= base
                    and seg.end_offset >= base + unit
                )
                yield seg.pair, base, full

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def all_disks(self) -> List[Disk]:
        return [d for disks in self.disks_by_role().values() for d in disks]

    def _make_disk(
        self, name: str, standby: bool = False
    ) -> Disk:
        initial = PowerState.STANDBY if standby else PowerState.IDLE
        return Disk(
            self.sim,
            self.config.disk,
            name,
            initial_state=initial,
            scheduler=Scheduler(self.config.disk_scheduler),
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # Tracing hooks (no-ops unless a tracer is attached).  Subclasses call
    # these at rotation hand-offs, destage-process completion, cycle-window
    # closure and log-space occupancy changes; every hook observes only, so
    # traced runs stay bit-identical to untraced ones.
    # ------------------------------------------------------------------
    def _trace_instant(self, category: str, name: str, **attrs) -> None:
        """Point event on the scheme's track (rotation, deactivation, ...)."""
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                category, name, self.scheme_name, self.sim.now, **attrs
            )

    def _trace_span(
        self, category: str, name: str, start_ts: float, **attrs
    ) -> None:
        """Interval ending now on the scheme's track (destage process, ...)."""
        tracer = self.tracer
        if tracer is not None:
            tracer.span(
                category,
                name,
                self.scheme_name,
                start_ts,
                self.sim.now,
                **attrs,
            )

    def _trace_occupancy(self, region) -> None:
        """Sample one log region's occupancy as a counter series."""
        tracer = self.tracer
        if tracer is not None:
            tracer.counter(
                f"occupancy:{region.name}",
                self.scheme_name,
                self.sim.now,
                region.occupancy,
            )

    def _trace_cycle(self, window) -> None:
        """Emit a closed cycle window as logging + destage phase spans."""
        tracer = self.tracer
        if tracer is None or window.destage_start < 0:
            return
        tracer.span(
            "cycle",
            "logging",
            self.scheme_name,
            window.logging_start,
            window.destage_start,
        )
        if window.destage_end >= 0:
            tracer.span(
                "cycle",
                "destage-window",
                self.scheme_name,
                window.destage_start,
                window.destage_end,
            )

    def _issue(
        self,
        disk: Disk,
        kind: OpKind,
        offset: int,
        nbytes: int,
        request: Optional[IORequest] = None,
        priority: Priority = Priority.FOREGROUND,
        sequential: bool = False,
        on_complete: Optional[Callable[[DiskOp], None]] = None,
    ) -> DiskOp:
        """Submit one disk op, optionally tied to a request's fan-in."""
        if request is not None:
            request.add_waits()
            if on_complete is None:
                # Common case: the fan-in is the only completion consumer,
                # so hand the disk the bound method directly instead of
                # allocating a closure per operation.
                callback: Optional[Callable[[DiskOp], None]] = (
                    request.op_complete
                )
            else:

                def _done(op: DiskOp, _cb=on_complete) -> None:
                    _cb(op)
                    request.op_done(self.sim.now)

                # Span layer linkage: lets a span-aware tracer map this
                # op back to its owning request (bound methods carry
                # __self__; closures need the explicit tag).
                _done._span_owner = request
                callback = _done
        else:
            callback = on_complete
        # Slab-pooled: the disk recycles the op right after its completion
        # callback runs, so no caller of _issue may retain the return value
        # past that point (none do — the fan-in reads finish_time and
        # forgets the op).
        op = acquire_op(
            kind,
            offset // 512,
            nbytes,
            priority=priority,
            on_complete=callback,
            sequential_hint=sequential,
        )
        disk.submit(op)
        return op

    def total_energy_now(self) -> float:
        """Instantaneous cumulative energy across all disks (joules)."""
        now = self.sim.now
        return sum(d.power.energy_at(now) for d in self.all_disks())

    def _sleep_when_quiet(self, disk: Disk) -> None:
        """Spin ``disk`` down now or as soon as it drains."""
        if disk.failed or disk in self._pending_sleep:
            return
        if disk.request_spin_down():
            return

        def _listener(d: Disk) -> None:
            if d.request_spin_down():
                self._cancel_sleep(d)

        self._pending_sleep[disk] = _listener
        disk.add_idle_listener(_listener)

    def _cancel_sleep(self, disk: Disk) -> None:
        """Withdraw a pending sleep request (e.g. the disk went on duty)."""
        listener = self._pending_sleep.pop(disk, None)
        if listener is not None:
            disk.remove_idle_listener(listener)

    def finalize(self) -> RunMetrics:
        """Close accounting at the current instant and return the metrics.

        Idempotent: the first call fixes the measurement window and takes a
        snapshot, so post-window flush activity (``drain``) never leaks
        into the reported counters.
        """
        if not self._finalized:
            self.metrics.finalize(self.sim.now, self.disks_by_role())
            self._metrics_snapshot = self.metrics.snapshot()
            self._finalized = True
        return self._metrics_snapshot

    def assert_consistent(self) -> None:
        """Raise AssertionError if any mirrored data is still stale."""
        dirty = self.dirty_units_total()
        if dirty:
            raise AssertionError(
                f"{self.scheme_name}: {dirty} stripe units still dirty"
            )


class TraceDriver:
    """Replays a trace against a controller with open-loop arrivals.

    Arrivals are streamed: only the *next* arrival (plus whatever
    completions are outstanding) lives in the event heap at any instant, so
    peak heap size is O(in-flight), independent of trace length.  A
    :class:`~repro.traces.compiled.CompiledTrace` replays through a
    columnar fast path that reads arrival/offset/size/kind by index and
    never materializes ``TraceRecord`` objects; both paths schedule exactly
    one arrival event per trace record, so ``events_processed`` is
    identical between them (the arrival-streaming delta is zero).
    """

    def __init__(
        self,
        sim: Simulator,
        controller: Controller,
        trace: AnyTrace,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.trace = trace
        self.on_complete = on_complete
        self._compiled = isinstance(trace, CompiledTrace)
        if self._compiled:
            self._arrivals = trace.arrivals
            self._offsets = trace.offsets
            self._sizes = trace.sizes
            self._kinds = trace.kinds
            self._n = len(trace.arrivals)
            self._index = 0
        else:
            self._iter = iter(trace)
        self._outstanding = 0
        self._dispatched = 0
        self._arrivals_done = False
        self.completed_at: float = -1.0
        #: Request ids for tracing: sequential dispatch numbers, so traces
        #: are comparable across runs (unlike ``id()``).
        self._rids: Dict[IORequest, int] = {}

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._compiled:
            i = self._index
            if i >= self._n:
                self._arrivals_done = True
                self._check_done()
                return
            self._index = i + 1
            self.sim.at(
                self._arrivals[i], self._arrive_compiled, i, label="arrival"
            )
            return
        record = next(self._iter, None)
        if record is None:
            self._arrivals_done = True
            self._check_done()
            return
        self.sim.at(record.timestamp, self._arrive, record, label="arrival")

    def _arrive_compiled(self, i: int) -> None:
        kind = _KIND_BY_CODE[self._kinds[i]]
        offset = self._offsets[i]
        nbytes = self._sizes[i]
        # Slab-pooled: _request_done releases the request after recording
        # its response, so replay allocates no per-request objects.
        request = acquire_request(
            kind,
            offset,
            nbytes,
            arrival_time=self.sim._now,
            on_complete=self._request_done,
        )
        self._outstanding += 1
        tracer = self.controller.tracer
        if tracer is not None:
            rid = self._dispatched
            self._rids[request] = rid
            tracer.request_arrived(
                rid, kind.value, offset, nbytes, self.sim.now
            )
            tracer.request_admitted(rid, request)
        self._dispatched += 1
        self.controller.submit(request)
        self._schedule_next()

    def _arrive(self, record) -> None:
        request = acquire_request(
            record.kind,
            record.offset,
            record.nbytes,
            arrival_time=self.sim._now,
            on_complete=self._request_done,
        )
        self._outstanding += 1
        tracer = self.controller.tracer
        if tracer is not None:
            rid = self._dispatched
            self._rids[request] = rid
            tracer.request_arrived(
                rid,
                record.kind.value,
                record.offset,
                record.nbytes,
                self.sim.now,
            )
            tracer.request_admitted(rid, request)
        self._dispatched += 1
        self.controller.submit(request)
        self._schedule_next()

    def _request_done(self, request: IORequest) -> None:
        self.controller.metrics.record_response(
            request.is_write, request.response_time
        )
        tracer = self.controller.tracer
        if tracer is not None:
            rid = self._rids.pop(request, None)
            if rid is not None:
                tracer.request_completed(rid, self.sim.now)
        release_request(request)
        self._outstanding -= 1
        self._check_done()

    def _check_done(self) -> None:
        if self._arrivals_done and self._outstanding == 0:
            if self.completed_at < 0:
                self.completed_at = self.sim.now
                if self.on_complete is not None:
                    self.on_complete()


def run_trace(
    controller: Controller, trace: AnyTrace, drain: bool = True
) -> RunMetrics:
    """Replay ``trace`` against ``controller`` and return its metrics.

    ``trace`` may be a legacy :class:`Trace` or a columnar
    :class:`~repro.traces.compiled.CompiledTrace`; both produce
    byte-identical metrics.  The measurement window closes when the last
    request completes; the post-trace flush (``drain=True``) brings mirrors
    consistent *outside* the window so schemes are compared over identical
    horizons.
    """
    sim = controller.sim
    driver = TraceDriver(
        sim, controller, trace, on_complete=controller.finalize
    )
    driver.start()
    sim.run()
    if driver.completed_at < 0:
        raise RuntimeError("trace replay did not complete")
    if drain:
        controller.drain()
        sim.run()
    if controller.tracer is not None:
        controller.tracer.finish(sim.now)
    return controller.finalize()
