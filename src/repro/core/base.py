"""Controller base class and the trace replay driver."""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional

from repro.core.config import ArrayConfig
from repro.core.metrics import RunMetrics
from repro.disk.disk import Disk, DiskOp, OpKind, Priority, Scheduler
from repro.disk.power import PowerState
from repro.raid.request import IORequest
from repro.sim.engine import Simulator
from repro.traces.record import Trace


class Controller(abc.ABC):
    """Base class of all array controllers (RAID10, GRAID, RoLo-P/R/E).

    A controller owns its disks, translates logical
    :class:`~repro.raid.request.IORequest` objects into disk operations, and
    implements the scheme's power policy.  Subclasses must implement
    :meth:`submit`, :meth:`_build_disks` and :meth:`disks_by_role`.
    """

    scheme_name = "abstract"

    def __init__(
        self,
        sim: Simulator,
        config: ArrayConfig,
        tracer: object = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.layout = config.layout()
        self.metrics = RunMetrics()
        # ``tracer`` is a repro.obs Tracer; the NullTracer default is
        # falsy, so disabled tracing normalizes to None and every hook
        # below guards with one identity check.
        self.tracer = tracer if tracer else None
        self._finalized = False
        self._pending_sleep: Dict[Disk, Callable[[Disk], None]] = {}
        self._build_disks()

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build_disks(self) -> None:
        """Create the scheme's disks in their initial power states."""

    @abc.abstractmethod
    def submit(self, request: IORequest) -> None:
        """Issue one logical request.  The controller must eventually drive
        ``request`` to completion via its fan-in counters."""

    @abc.abstractmethod
    def disks_by_role(self) -> Dict[str, List[Disk]]:
        """Disks grouped by role ('primary', 'mirror', 'log')."""

    def drain(self) -> None:
        """Flush all inconsistent state (called after the trace completes,
        outside the measured window).  Default: nothing to flush."""

    def dirty_units_total(self) -> int:
        """Stripe units whose mirrored copy is stale.  Used by consistency
        tests; schemes without logging return 0."""
        return 0

    def log_regions(self) -> List:
        """The scheme's log regions (for occupancy sampling); default none."""
        return []

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def all_disks(self) -> List[Disk]:
        return [d for disks in self.disks_by_role().values() for d in disks]

    def _make_disk(
        self, name: str, standby: bool = False
    ) -> Disk:
        initial = PowerState.STANDBY if standby else PowerState.IDLE
        return Disk(
            self.sim,
            self.config.disk,
            name,
            initial_state=initial,
            scheduler=Scheduler(self.config.disk_scheduler),
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # Tracing hooks (no-ops unless a tracer is attached).  Subclasses call
    # these at rotation hand-offs, destage-process completion, cycle-window
    # closure and log-space occupancy changes; every hook observes only, so
    # traced runs stay bit-identical to untraced ones.
    # ------------------------------------------------------------------
    def _trace_instant(self, category: str, name: str, **attrs) -> None:
        """Point event on the scheme's track (rotation, deactivation, ...)."""
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                category, name, self.scheme_name, self.sim.now, **attrs
            )

    def _trace_span(
        self, category: str, name: str, start_ts: float, **attrs
    ) -> None:
        """Interval ending now on the scheme's track (destage process, ...)."""
        tracer = self.tracer
        if tracer is not None:
            tracer.span(
                category,
                name,
                self.scheme_name,
                start_ts,
                self.sim.now,
                **attrs,
            )

    def _trace_occupancy(self, region) -> None:
        """Sample one log region's occupancy as a counter series."""
        tracer = self.tracer
        if tracer is not None:
            tracer.counter(
                f"occupancy:{region.name}",
                self.scheme_name,
                self.sim.now,
                region.occupancy,
            )

    def _trace_cycle(self, window) -> None:
        """Emit a closed cycle window as logging + destage phase spans."""
        tracer = self.tracer
        if tracer is None or window.destage_start < 0:
            return
        tracer.span(
            "cycle",
            "logging",
            self.scheme_name,
            window.logging_start,
            window.destage_start,
        )
        if window.destage_end >= 0:
            tracer.span(
                "cycle",
                "destage-window",
                self.scheme_name,
                window.destage_start,
                window.destage_end,
            )

    def _issue(
        self,
        disk: Disk,
        kind: OpKind,
        offset: int,
        nbytes: int,
        request: Optional[IORequest] = None,
        priority: Priority = Priority.FOREGROUND,
        sequential: bool = False,
        on_complete: Optional[Callable[[DiskOp], None]] = None,
    ) -> DiskOp:
        """Submit one disk op, optionally tied to a request's fan-in."""
        if request is not None:
            request.add_waits()

            def _done(op: DiskOp, _cb=on_complete) -> None:
                if _cb is not None:
                    _cb(op)
                request.op_done(self.sim.now)

            callback: Optional[Callable[[DiskOp], None]] = _done
        else:
            callback = on_complete
        op = DiskOp(
            kind,
            offset // 512,
            nbytes,
            priority=priority,
            on_complete=callback,
            sequential_hint=sequential,
        )
        disk.submit(op)
        return op

    def total_energy_now(self) -> float:
        """Instantaneous cumulative energy across all disks (joules)."""
        now = self.sim.now
        return sum(d.power.energy_at(now) for d in self.all_disks())

    def _sleep_when_quiet(self, disk: Disk) -> None:
        """Spin ``disk`` down now or as soon as it drains."""
        if disk in self._pending_sleep:
            return
        if disk.request_spin_down():
            return

        def _listener(d: Disk) -> None:
            if d.request_spin_down():
                self._cancel_sleep(d)

        self._pending_sleep[disk] = _listener
        disk.add_idle_listener(_listener)

    def _cancel_sleep(self, disk: Disk) -> None:
        """Withdraw a pending sleep request (e.g. the disk went on duty)."""
        listener = self._pending_sleep.pop(disk, None)
        if listener is not None:
            disk.remove_idle_listener(listener)

    def finalize(self) -> RunMetrics:
        """Close accounting at the current instant and return the metrics.

        Idempotent: the first call fixes the measurement window and takes a
        snapshot, so post-window flush activity (``drain``) never leaks
        into the reported counters.
        """
        if not self._finalized:
            self.metrics.finalize(self.sim.now, self.disks_by_role())
            self._metrics_snapshot = self.metrics.snapshot()
            self._finalized = True
        return self._metrics_snapshot

    def assert_consistent(self) -> None:
        """Raise AssertionError if any mirrored data is still stale."""
        dirty = self.dirty_units_total()
        if dirty:
            raise AssertionError(
                f"{self.scheme_name}: {dirty} stripe units still dirty"
            )


class TraceDriver:
    """Replays a trace against a controller with open-loop arrivals."""

    def __init__(
        self,
        sim: Simulator,
        controller: Controller,
        trace: Trace,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.trace = trace
        self.on_complete = on_complete
        self._iter = iter(trace)
        self._outstanding = 0
        self._dispatched = 0
        self._arrivals_done = False
        self.completed_at: float = -1.0
        #: Request ids for tracing: sequential dispatch numbers, so traces
        #: are comparable across runs (unlike ``id()``).
        self._rids: Dict[IORequest, int] = {}

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        record = next(self._iter, None)
        if record is None:
            self._arrivals_done = True
            self._check_done()
            return
        self.sim.at(record.timestamp, self._arrive, record, label="arrival")

    def _arrive(self, record) -> None:
        request = IORequest(
            record.kind,
            record.offset,
            record.nbytes,
            arrival_time=self.sim.now,
            on_complete=self._request_done,
        )
        self._outstanding += 1
        tracer = self.controller.tracer
        if tracer is not None:
            rid = self._dispatched
            self._rids[request] = rid
            tracer.request_arrived(
                rid,
                record.kind.value,
                record.offset,
                record.nbytes,
                self.sim.now,
            )
        self._dispatched += 1
        self.controller.submit(request)
        self._schedule_next()

    def _request_done(self, request: IORequest) -> None:
        self.controller.metrics.record_response(
            request.is_write, request.response_time
        )
        tracer = self.controller.tracer
        if tracer is not None:
            rid = self._rids.pop(request, None)
            if rid is not None:
                tracer.request_completed(rid, self.sim.now)
        self._outstanding -= 1
        self._check_done()

    def _check_done(self) -> None:
        if self._arrivals_done and self._outstanding == 0:
            if self.completed_at < 0:
                self.completed_at = self.sim.now
                if self.on_complete is not None:
                    self.on_complete()


def run_trace(
    controller: Controller, trace: Trace, drain: bool = True
) -> RunMetrics:
    """Replay ``trace`` against ``controller`` and return its metrics.

    The measurement window closes when the last request completes; the
    post-trace flush (``drain=True``) brings mirrors consistent *outside*
    the window so schemes are compared over identical horizons.
    """
    sim = controller.sim
    driver = TraceDriver(
        sim, controller, trace, on_complete=controller.finalize
    )
    driver.start()
    sim.run()
    if driver.completed_at < 0:
        raise RuntimeError("trace replay did not complete")
    if drain:
        controller.drain()
        sim.run()
    if controller.tracer is not None:
        controller.tracer.finish(sim.now)
    return controller.finalize()
