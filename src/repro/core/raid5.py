"""RAID5 baseline controller (substrate for the §VII future-work study).

Implements the classic small-write path: a partial-row write performs a
read-modify-write of both the data unit(s) and the rotating parity unit
(two reads + two writes per touched row), while a full-stripe write skips
the reads entirely.  All disks stay spinning — in a parity array every
disk holds live data, so RoLo's energy lever does not apply; what the
parity variant of RoLo targets is the *small-write penalty* (see
:mod:`repro.core.rolo5`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.base import _noop_note
from repro.core.metrics import RunMetrics
from repro.disk.disk import Disk, DiskOp, OpKind, Priority, Scheduler
from repro.disk.models import ULTRASTAR_36Z15, DiskSpec
from repro.disk.power import PowerState
from repro.raid.raid5 import Raid5Layout
from repro.raid.request import IORequest
from repro.sim.engine import Simulator

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclasses.dataclass(frozen=True)
class Raid5Config:
    """Configuration of a RAID5 array (parity analogue of ArrayConfig)."""

    n_disks: int = 10
    stripe_unit: int = 64 * KB
    disk: DiskSpec = ULTRASTAR_36Z15
    #: Per-disk logging-region capacity for RoLo-5.
    free_space_bytes: int = 8 * GB
    rotate_threshold: float = 0.8
    idle_grace_s: float = 0.05
    spread_data: bool = True
    disk_scheduler: str = "fcfs"

    def __post_init__(self) -> None:
        if self.n_disks < 3:
            raise ValueError("RAID5 needs at least three disks")
        if self.stripe_unit <= 0 or self.stripe_unit % 512:
            raise ValueError("stripe unit must be a positive sector multiple")
        if not 0 < self.free_space_bytes < self.disk.capacity_bytes:
            raise ValueError("free space must fit inside the disk")
        if not 0.05 <= self.rotate_threshold <= 1.0:
            raise ValueError("rotate threshold out of range")
        if self.idle_grace_s < 0:
            raise ValueError("idle grace must be non-negative")
        if self.disk_scheduler not in ("fcfs", "sstf"):
            raise ValueError("disk_scheduler must be 'fcfs' or 'sstf'")

    @property
    def data_capacity_bytes(self) -> int:
        raw = self.disk.capacity_bytes - self.free_space_bytes
        return (raw // self.stripe_unit) * self.stripe_unit

    @property
    def log_region_offset(self) -> int:
        return self.data_capacity_bytes

    def layout(self) -> Raid5Layout:
        return Raid5Layout(
            self.n_disks,
            self.stripe_unit,
            self.data_capacity_bytes,
            spread=self.spread_data,
        )

    def scaled(self, scale: float) -> "Raid5Config":
        if scale <= 0:
            raise ValueError("scale must be positive")
        unit = self.stripe_unit
        snapped = max(unit * 4, int(self.free_space_bytes * scale) // unit * unit)
        return dataclasses.replace(self, free_space_bytes=snapped)


class Raid5Controller:
    """Plain RAID5 with read-modify-write parity maintenance."""

    scheme_name = "RAID5"

    def __init__(
        self,
        sim: Simulator,
        config: Raid5Config,
        tracer: object = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.layout = config.layout()
        self.metrics = RunMetrics()
        self._finalized = False
        # Same contract as Controller: a falsy tracer normalizes to None
        # so run_trace and the disks guard with one identity check.
        self.tracer = tracer if tracer else None
        self.disks: List[Disk] = [
            Disk(
                sim,
                config.disk,
                f"D{i}",
                initial_state=PowerState.IDLE,
                scheduler=Scheduler(config.disk_scheduler),
                tracer=self.tracer,
            )
            for i in range(config.n_disks)
        ]
        #: Parity read-modify-write pairs issued (the small-write penalty).
        self.parity_rmw_count = 0
        #: Optional consistency oracle (set by ``oracle.attach``); parity
        #: controllers report data segments via ``note_parity_write`` /
        #: ``note_parity_read``.  The setter rebinds the ``_note_parity_*``
        #: fast paths so the no-oracle hot loop never tests for one.
        self._oracle = None
        self._note_parity_write = _noop_note
        self._note_parity_read = _noop_note

    @property
    def oracle(self):
        return self._oracle

    @oracle.setter
    def oracle(self, oracle) -> None:
        self._oracle = oracle
        if oracle is None:
            self._note_parity_write = _noop_note
            self._note_parity_read = _noop_note
        else:
            self._note_parity_write = oracle.note_parity_write
            self._note_parity_read = oracle.note_parity_read

    # ------------------------------------------------------------------
    def disks_by_role(self) -> Dict[str, List[Disk]]:
        return {"data": self.disks}

    def all_disks(self) -> List[Disk]:
        return list(self.disks)

    def dirty_units_total(self) -> int:
        return 0  # parity is maintained synchronously

    def assert_consistent(self) -> None:
        if self.dirty_units_total():
            raise AssertionError("stale parity rows remain")

    def finalize(self) -> RunMetrics:
        if not self._finalized:
            self.metrics.finalize(self.sim.now, self.disks_by_role())
            self._metrics_snapshot = self.metrics.snapshot()
            self._finalized = True
        return self._metrics_snapshot

    def drain(self) -> None:
        """Nothing deferred in the synchronous baseline."""

    # ------------------------------------------------------------------
    def _chain_rmw(
        self,
        disk: Disk,
        offset: int,
        nbytes: int,
        request: IORequest,
    ) -> None:
        """Read-then-write of one extent on one disk, tied to the request."""
        request.add_waits()

        def after_read(_op: DiskOp) -> None:
            disk.submit(
                DiskOp(
                    OpKind.WRITE,
                    offset // 512,
                    nbytes,
                    priority=Priority.FOREGROUND,
                    # op.finish_time is sim.now when the completion fires,
                    # so the bound fan-in equals the former per-op closure.
                    on_complete=request.op_complete,
                )
            )

        # Span linkage: the read's closure hides the owning request from
        # callback introspection, so tag it explicitly.
        after_read._span_owner = request
        disk.submit(
            DiskOp(
                OpKind.READ,
                offset // 512,
                nbytes,
                priority=Priority.FOREGROUND,
                on_complete=after_read,
            )
        )

    def _write_direct(
        self, disk: Disk, offset: int, nbytes: int, request: IORequest
    ) -> None:
        request.add_waits()
        disk.submit(
            DiskOp(
                OpKind.WRITE,
                offset // 512,
                nbytes,
                priority=Priority.FOREGROUND,
                on_complete=request.op_complete,
            )
        )

    def submit(self, request: IORequest) -> None:
        if not request.is_write:
            for seg in self.layout.map_extent(request.offset, request.nbytes):
                self._issue_read(seg, request)
            request.seal(self.sim.now)
            return
        unit = self.layout.stripe_unit
        note_parity_write = self._note_parity_write
        for row, row_off, row_len in self.layout.iter_row_extents(
            request.offset, request.nbytes
        ):
            base = row * self.layout.data_disks_per_row * unit
            segments = self.layout.map_extent(base + row_off, row_len)
            parity_disk, parity_offset = self.layout.parity_offset(row)
            if self.layout.is_full_stripe(
                request.offset, request.nbytes, row
            ):
                for seg in segments:
                    note_parity_write(self, seg)
                    self._write_direct(
                        self.disks[seg.disk], seg.disk_offset, seg.nbytes,
                        request,
                    )
                self._write_direct(
                    self.disks[parity_disk], parity_offset, unit, request
                )
            else:
                for seg in segments:
                    note_parity_write(self, seg)
                    self._chain_rmw(
                        self.disks[seg.disk], seg.disk_offset, seg.nbytes,
                        request,
                    )
                self._chain_rmw(
                    self.disks[parity_disk], parity_offset, unit, request
                )
                self.parity_rmw_count += 1
        request.seal(self.sim.now)

    def _issue_read(self, seg, request: IORequest) -> None:
        disk = self.disks[seg.disk]
        self._note_parity_read(self, seg, disk.name)
        request.add_waits()
        disk.submit(
            DiskOp(
                OpKind.READ,
                seg.disk_offset // 512,
                seg.nbytes,
                priority=Priority.FOREGROUND,
                on_complete=request.op_complete,
            )
        )
