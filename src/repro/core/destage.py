"""Destage processes.

A :class:`DestageProcess` moves a snapshot of inconsistent stripe units from
a source disk to one or more target disks as *background* I/O.  Two driving
modes cover all schemes in the paper:

* ``idle_gated=True`` — RoLo's decentralized destaging (§III-A): the next
  batch is issued only after every involved disk has been free of foreground
  work for a grace interval, so destage I/O is spread and diluted among the
  short idle slots.
* ``idle_gated=False`` — centralized destaging (GRAID, and RoLo-E's
  end-of-log destage): batches chain back-to-back at background priority,
  which is exactly the bursty behaviour §II measures.

Either way the batch in flight runs at :class:`~repro.disk.disk.Priority`
BACKGROUND, so queued foreground requests always pass it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.disk.disk import Disk, DiskOp, OpKind, Priority
from repro.sim.engine import Simulator, Timer


def coalesce_units(
    units: Sequence[int], unit_size: int, max_batch: int
) -> List[Tuple[int, int]]:
    """Merge sorted unit offsets into (offset, nbytes) batches.

    Adjacent units form one contiguous batch up to ``max_batch`` bytes —
    the paper's "bundle as many data blocks with successive location as
    possible in one destaging I/O operation" (§VI).
    """
    if unit_size <= 0 or max_batch < unit_size:
        raise ValueError("invalid unit/batch sizes")
    batches: List[Tuple[int, int]] = []
    ordered = sorted(units)
    i = 0
    while i < len(ordered):
        start = ordered[i]
        length = unit_size
        i += 1
        while (
            i < len(ordered)
            and ordered[i] == start + length
            and length + unit_size <= max_batch
        ):
            length += unit_size
            i += 1
        batches.append((start, length))
    return batches


class DestageProcess:
    """Copies a fixed set of stripe units from ``source`` to ``targets``."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        source: Disk,
        targets: Sequence[Disk],
        units: Sequence[int],
        unit_size: int,
        batch_bytes: int,
        idle_gated: bool,
        idle_grace_s: float,
        on_complete: Optional[Callable[["DestageProcess"], None]] = None,
    ) -> None:
        if not targets:
            raise ValueError("need at least one target disk")
        self.sim = sim
        self.name = name
        self.source = source
        self.targets = list(targets)
        self.unit_size = unit_size
        self.idle_gated = idle_gated
        self._batches = coalesce_units(units, unit_size, batch_bytes)
        self._next_batch = 0
        self._in_flight = False
        self._writes_outstanding = 0
        self.aborted = False
        self.on_complete = on_complete
        self.bytes_moved = 0
        self.started_at = sim.now
        self.finished_at: float = -1.0
        self._gate_disks = [source] + self.targets
        self._timer: Optional[Timer] = None
        if idle_gated:
            self._timer = Timer(sim, idle_grace_s, self._grace_elapsed)
            for disk in self._gate_disks:
                disk.add_idle_listener(self._on_disk_idle)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.finished_at >= 0

    @property
    def remaining_batches(self) -> int:
        return len(self._batches) - self._next_batch

    def _batch_units(self, batch: Tuple[int, int]) -> List[int]:
        offset, nbytes = batch
        return list(range(offset, offset + nbytes, self.unit_size))

    def completed_units(self) -> List[int]:
        """Unit offsets whose copy has fully landed on every target.

        The batch currently in flight is *not* counted: its write fan-out
        may be partial, so after an abort those units must be re-destaged.
        """
        upto = self._next_batch - (1 if self._in_flight else 0)
        units: List[int] = []
        for batch in self._batches[:upto]:
            units.extend(self._batch_units(batch))
        return units

    def remaining_units(self) -> List[int]:
        """Unit offsets not yet safely destaged (includes any in-flight batch)."""
        start = self._next_batch - (1 if self._in_flight else 0)
        units: List[int] = []
        for batch in self._batches[start:]:
            units.extend(self._batch_units(batch))
        return units

    def abort(self) -> None:
        """Stop the process without running ``on_complete``.

        Used when a participating disk fails mid-cycle.  In-flight disk ops
        are left to complete (their effects are dropped); the caller decides
        what to do with :meth:`remaining_units`.  Idempotent.
        """
        if self.done:
            return
        self.aborted = True
        self.finished_at = self.sim.now
        self._detach()

    def start(self) -> None:
        """Begin pumping.  Completes immediately when there is nothing to do."""
        if self.done:
            return
        if self._next_batch >= len(self._batches):
            self._finish()
            return
        if self.idle_gated:
            self._poke()
        else:
            self._issue_next()

    # ------------------------------------------------------------------
    # Idle gating
    # ------------------------------------------------------------------
    def _quiet(self) -> bool:
        """True when no foreground work is pending on any involved disk."""
        return all(d.pending_foreground == 0 for d in self._gate_disks)

    def _on_disk_idle(self, _disk: Disk) -> None:
        self._poke()

    def _poke(self) -> None:
        if self.done or self._in_flight:
            return
        if self._quiet():
            assert self._timer is not None
            if not self._timer.armed:
                self._timer.arm()

    def _grace_elapsed(self) -> None:
        if self.done or self._in_flight:
            return
        if self._quiet():
            self._issue_next()
        # else: a foreground burst arrived during the grace window; the idle
        # listeners will re-arm the timer when the disks drain again.

    # ------------------------------------------------------------------
    # Batch pipeline: read from source, then write to every target.
    # ------------------------------------------------------------------
    def _issue_next(self) -> None:
        if self._in_flight or self.done:
            return
        if self._next_batch >= len(self._batches):
            self._finish()
            return
        offset, nbytes = self._batches[self._next_batch]
        self._next_batch += 1
        self._in_flight = True
        self.source.submit(
            DiskOp(
                OpKind.READ,
                offset // 512,
                nbytes,
                priority=Priority.BACKGROUND,
                on_complete=self._read_done,
                tag=(offset, nbytes),
            )
        )

    def _read_done(self, op: DiskOp) -> None:
        if self.aborted:
            return
        offset, nbytes = op.tag
        self._writes_outstanding = len(self.targets)
        for target in self.targets:
            target.submit(
                DiskOp(
                    OpKind.WRITE,
                    offset // 512,
                    nbytes,
                    priority=Priority.BACKGROUND,
                    on_complete=self._write_done,
                    tag=nbytes,
                )
            )

    def _write_done(self, op: DiskOp) -> None:
        self._writes_outstanding -= 1
        if self.aborted:
            return
        if self._writes_outstanding > 0:
            return
        self.bytes_moved += int(op.tag)
        self._in_flight = False
        if self._next_batch >= len(self._batches):
            self._finish()
        elif self.idle_gated:
            self._poke()
        else:
            self._issue_next()

    def _finish(self) -> None:
        if self.done:
            return
        self.finished_at = self.sim.now
        self._detach()
        if self.on_complete is not None:
            self.on_complete(self)

    def _detach(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        if self.idle_gated:
            for disk in self._gate_disks:
                disk.remove_idle_listener(self._on_disk_idle)
