"""RoLo-5: rotated parity logging for RAID5 (the paper's §VII future work).

In a parity array every disk holds live data, so RoLo's RAID10 energy
lever (sleeping mirrors) does not exist.  What *does* transfer is the
rotated-logging + decentralized-destaging structure, aimed at the classic
small-write problem:

* a partial-row write reads the old data, writes the new data, and appends
  the XOR **delta** to the rotating on-duty log region (a sequential
  append) — three I/Os instead of the baseline's four, and crucially no
  synchronous read-modify-write of the parity unit;
* parity units of dirtied rows are brought up to date later by an
  idle-gated background pump (read parity, XOR with accumulated deltas,
  write parity), exactly RoLo's decentralized destaging;
* when the on-duty log region fills, the logger rotates to the next
  disk's free space and the freshly on-duty rotation triggers the parity
  update round, after which the stale delta space is reclaimed.

Redundancy note: between the data write and the parity update, the row's
redundancy is carried by the logged delta (as in parity logging,
Stodolsky et al.), so single-disk fault tolerance is preserved throughout.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.core.logspace import LogRegion
from repro.core.raid5 import Raid5Config, Raid5Controller
from repro.core.rotation import RotationPolicy
from repro.disk.disk import Disk, DiskOp, OpKind, Priority
from repro.raid.request import IORequest
from repro.sim.engine import Simulator, Timer


class ParityUpdatePump:
    """Idle-gated background parity refresher.

    Serially walks a snapshot of dirty rows; for each row it waits (when
    ``idle_gated``) for the row's parity disk to be free of foreground
    work for a grace interval, then performs the parity read-modify-write
    at background priority.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: "Rolo5Controller",
        rows: List[int],
        idle_gated: bool,
        idle_grace_s: float,
        on_complete: Optional[Callable[["ParityUpdatePump"], None]] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.rows = sorted(rows)
        self.idle_gated = idle_gated
        self.on_complete = on_complete
        #: Span-layer identity: ops completed via the pump's bound methods
        #: attribute their interference to this name.
        self.name = "rolo5-parity-pump"
        self.started_at = sim.now
        self._index = 0
        self._in_flight = False
        self.rows_updated = 0
        self.finished_at = -1.0
        self._timer = Timer(sim, idle_grace_s, self._grace_elapsed)
        self._waiting_disk: Optional[Disk] = None

    @property
    def done(self) -> bool:
        return self.finished_at >= 0

    @property
    def remaining(self) -> int:
        return len(self.rows) - self._index + (1 if self._in_flight else 0)

    def start(self) -> None:
        self._advance()

    def _current_disk(self) -> Disk:
        row = self.rows[self._index]
        disk_index, _ = self.controller.layout.parity_offset(row)
        return self.controller.disks[disk_index]

    def _advance(self) -> None:
        if self.done or self._in_flight:
            return
        if self._index >= len(self.rows):
            self._finish()
            return
        disk = self._current_disk()
        if not self.idle_gated:
            self._issue(disk)
            return
        if disk.pending_foreground == 0:
            self._timer.arm()
        else:
            self._watch(disk)

    def _watch(self, disk: Disk) -> None:
        if self._waiting_disk is not None:
            self._waiting_disk.remove_idle_listener(self._disk_idle)
        self._waiting_disk = disk
        disk.add_idle_listener(self._disk_idle)

    def _disk_idle(self, _disk: Disk) -> None:
        if not self.done and not self._in_flight:
            self._timer.arm()

    def _grace_elapsed(self) -> None:
        if self.done or self._in_flight:
            return
        disk = self._current_disk()
        if disk.pending_foreground == 0:
            self._issue(disk)
        else:
            self._watch(disk)

    def _issue(self, disk: Disk) -> None:
        row = self.rows[self._index]
        self._index += 1
        self._in_flight = True
        _, offset = self.controller.layout.parity_offset(row)
        unit = self.controller.layout.stripe_unit

        def after_read(_op: DiskOp) -> None:
            disk.submit(
                DiskOp(
                    OpKind.WRITE,
                    offset // 512,
                    unit,
                    priority=Priority.BACKGROUND,
                    on_complete=self._row_done,
                )
            )

        # Span linkage: closures hide the pump from callback introspection.
        after_read._span_owner = self
        disk.submit(
            DiskOp(
                OpKind.READ,
                offset // 512,
                unit,
                priority=Priority.BACKGROUND,
                on_complete=after_read,
            )
        )

    def _row_done(self, _op: DiskOp) -> None:
        self._in_flight = False
        self.rows_updated += 1
        self._advance()

    def _finish(self) -> None:
        self.finished_at = self.sim.now
        self._timer.cancel()
        if self._waiting_disk is not None:
            self._waiting_disk.remove_idle_listener(self._disk_idle)
            self._waiting_disk = None
        if self.on_complete is not None:
            self.on_complete(self)


class Rolo5Controller(Raid5Controller):
    """RAID5 with rotated parity logging and decentralized parity updates."""

    scheme_name = "RoLo-5"

    def __init__(
        self,
        sim: Simulator,
        config: Raid5Config,
        tracer: object = None,
    ) -> None:
        super().__init__(sim, config, tracer=tracer)
        self.log_regions: List[LogRegion] = [
            LogRegion(
                f"D{i}-log",
                config.log_region_offset,
                config.free_space_bytes,
            )
            for i in range(config.n_disks)
        ]
        self._on_duty = 0
        self._epoch = 0
        self._dirty_rows: Set[int] = set()
        self._pending_rows: Set[int] = set()
        self._pump: Optional[ParityUpdatePump] = None
        self._deactivated = False
        self._draining = False
        self._policy = RotationPolicy(
            config.n_disks,
            config.rotate_threshold,
            lambda i: self.log_regions[i].occupancy,
        )

    # ------------------------------------------------------------------
    def dirty_units_total(self) -> int:
        total = len(self._dirty_rows) + len(self._pending_rows)
        if self._pump is not None and not self._pump.done:
            total += self._pump.remaining
        return total

    @property
    def on_duty_log(self) -> LogRegion:
        return self.log_regions[self._on_duty]

    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        if not request.is_write:
            super().submit(request)
            return
        unit = self.layout.stripe_unit
        note_parity_write = self._note_parity_write
        for row, row_off, row_len in self.layout.iter_row_extents(
            request.offset, request.nbytes
        ):
            base = row * self.layout.data_disks_per_row * unit
            segments = self.layout.map_extent(base + row_off, row_len)
            if self.layout.is_full_stripe(
                request.offset, request.nbytes, row
            ):
                # Full stripe: write everything in place; parity is fresh.
                parity_disk, parity_offset = self.layout.parity_offset(row)
                for seg in segments:
                    note_parity_write(self, seg)
                    self._write_direct(
                        self.disks[seg.disk], seg.disk_offset, seg.nbytes,
                        request,
                    )
                self._write_direct(
                    self.disks[parity_disk], parity_offset, unit, request
                )
                self._dirty_rows.discard(row)
                continue
            if self._deactivated or not self.on_duty_log.fits(row_len):
                # Fallback: synchronous parity RMW, as in the baseline.
                parity_disk, parity_offset = self.layout.parity_offset(row)
                for seg in segments:
                    note_parity_write(self, seg)
                    self._chain_rmw(
                        self.disks[seg.disk], seg.disk_offset, seg.nbytes,
                        request,
                    )
                self._chain_rmw(
                    self.disks[parity_disk], parity_offset, unit, request
                )
                self.parity_rmw_count += 1
                if self._deactivated:
                    self._try_reactivate()
                continue
            # Parity-logged small write: read old data + write new data on
            # the data disk(s), append the delta to the on-duty log.
            for seg in segments:
                note_parity_write(self, seg)
                self._chain_rmw(
                    self.disks[seg.disk], seg.disk_offset, seg.nbytes,
                    request,
                )
            offset = self.on_duty_log.append(row_len, {0: row_len}, self._epoch)
            self.metrics.logged_bytes += row_len
            request.add_waits()
            self.disks[self._on_duty].submit(
                DiskOp(
                    OpKind.WRITE,
                    offset // 512,
                    row_len,
                    priority=Priority.FOREGROUND,
                    sequential_hint=True,
                    on_complete=request.op_complete,
                )
            )
            self._dirty_rows.add(row)
        request.seal(self.sim.now)
        if self.on_duty_log.occupancy >= self.config.rotate_threshold:
            self._rotate()

    # ------------------------------------------------------------------
    def _rotate(self) -> None:
        candidate = self._policy.next_logger(
            self._on_duty, excluded=[self._on_duty]
        )
        if candidate is None:
            self._deactivated = True
            self.metrics.deactivations += 1
            return
        self._epoch += 1
        self.metrics.rotations += 1
        self._on_duty = candidate
        if self.tracer is not None:
            self.tracer.instant(
                "rotation",
                "hand-off",
                self.scheme_name,
                self.sim.now,
                to_disk=f"D{candidate}",
            )
        self._schedule_parity_round()

    def _schedule_parity_round(self) -> None:
        self._pending_rows |= self._dirty_rows
        self._dirty_rows = set()
        if self._pump is not None and not self._pump.done:
            return  # the running pump's completion will pick these up
        self._launch_pump()

    def _launch_pump(self) -> None:
        rows = sorted(self._pending_rows)
        self._pending_rows = set()
        epoch_limit = self._epoch + 1 if self._draining else self._epoch
        if not rows:
            self._reclaim(epoch_limit)
            return
        self._pump = ParityUpdatePump(
            self.sim,
            self,
            rows,
            idle_gated=not self._draining,
            idle_grace_s=self.config.idle_grace_s,
            on_complete=lambda pump, limit=epoch_limit: self._pump_done(
                pump, limit
            ),
        )
        self._pump.start()

    def _pump_done(self, pump: ParityUpdatePump, epoch_limit: int) -> None:
        self.metrics.destage_cycles += 1
        self.metrics.destaged_bytes += (
            pump.rows_updated * self.layout.stripe_unit
        )
        if self.tracer is not None:
            self.tracer.span(
                "destage",
                pump.name,
                self.scheme_name,
                pump.started_at,
                self.sim.now,
                rows=pump.rows_updated,
            )
        self._reclaim(epoch_limit)
        self._pump = None
        if self._pending_rows or (self._draining and self._dirty_rows):
            if self._draining:
                self._pending_rows |= self._dirty_rows
                self._dirty_rows = set()
            self._launch_pump()
        elif self._deactivated:
            self._try_reactivate()

    def _reclaim(self, epoch_limit: int) -> None:
        for region in self.log_regions:
            region.reclaim(0, epoch_limit)

    def _try_reactivate(self) -> None:
        if not self._deactivated:
            return
        if self.on_duty_log.occupancy < self.config.rotate_threshold:
            self._deactivated = False
            return
        candidate = self._policy.next_logger(
            self._on_duty, excluded=[self._on_duty]
        )
        if candidate is not None:
            self._on_duty = candidate
            self._deactivated = False

    def drain(self) -> None:
        self._draining = True
        self._epoch += 1
        if self._pump is not None and not self._pump.done:
            self._pending_rows |= self._dirty_rows
            self._dirty_rows = set()
            return
        self._pending_rows |= self._dirty_rows
        self._dirty_rows = set()
        self._launch_pump()
