"""RoLo-R: the reliability-oriented flavor (paper §III-B2).

Identical to RoLo-P except the on-duty logger is a mirrored *pair*: each
write lands in three places — in place on its target primary, and appended
to the log regions of both disks of the on-duty pair.  The extra copy costs
a few percent of response time (Table IV) but raises MTTDL above RAID10
(Fig. 9).
"""

from __future__ import annotations

from repro.core.rolo_common import RotatedLoggingController


class RoloRController(RotatedLoggingController):
    scheme_name = "RoLo-R"
    log_to_primary_too = True
