"""Logger rotation policy (paper §III-A).

The rotation policy answers one question: when the on-duty logger fills past
the rotate threshold, *which* logger goes on duty next?  The paper rotates
round-robin through the mirrored disks, skipping any whose stale space has
not yet been reclaimed enough to accept a new logging period.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional


class RotationPolicy:
    """Round-robin rotation over ``n`` candidate loggers.

    ``occupancy(i)`` must return the current log occupancy (0..1) of
    candidate ``i``; a candidate is eligible when its occupancy is below
    ``threshold``.  When no candidate is eligible the array must fall back
    to in-place mirroring (the paper's RoLo de-activation, §III-E) —
    :meth:`next_logger` then returns ``None``.
    """

    def __init__(
        self,
        n_candidates: int,
        threshold: float,
        occupancy: Callable[[int], float],
    ) -> None:
        if n_candidates < 2:
            raise ValueError("rotation needs at least two candidates")
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.n_candidates = n_candidates
        self.threshold = threshold
        self._occupancy = occupancy
        self.rotations = 0

    def next_logger(
        self, current: int, excluded: Iterable[int] = ()
    ) -> Optional[int]:
        """Pick the next on-duty logger after ``current``.

        Scans round-robin starting at ``current + 1``, skipping ``excluded``
        candidates (loggers already on duty); returns ``None`` when every
        other candidate is still above the threshold (RoLo must deactivate
        until reclamation catches up).
        """
        if not 0 <= current < self.n_candidates:
            raise ValueError(f"current logger {current} out of range")
        candidate = self.peek_next(current, excluded)
        if candidate is not None:
            self.rotations += 1
        return candidate

    def peek_next(
        self, current: int, excluded: Iterable[int] = ()
    ) -> Optional[int]:
        """Like :meth:`next_logger` but without committing the rotation.

        Used to *pre-wake* the next on-duty logger before the current one
        fills, so foreground writes never stall behind a spin-up.
        """
        if not 0 <= current < self.n_candidates:
            raise ValueError(f"current logger {current} out of range")
        skip = set(excluded)
        for step in range(1, self.n_candidates):
            candidate = (current + step) % self.n_candidates
            if candidate in skip:
                continue
            if self._occupancy(candidate) < self.threshold:
                return candidate
        return None
