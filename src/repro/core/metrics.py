"""Run metrics collected by the trace driver and controllers.

:class:`RunMetrics` carries everything the paper's tables and figures need:
response-time statistics, energy, power-state duty fractions by disk role,
spin counts (Table I), logging-cycle windows (Fig. 2), and scheme-specific
counters (rotations, destage volume, read hit rate).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, List, Optional

from repro.disk.disk import Disk
from repro.disk.power import PowerState
from repro.sim.stats import Histogram, StreamingStat


@dataclasses.dataclass
class CycleWindow:
    """One logging cycle: a logging period and its destaging period.

    For GRAID the two periods alternate (Fig. 1a); for RoLo the destage
    window may overlap the next logging period (Fig. 5a) — ``destage_end``
    is simply when the destage process finished.
    """

    logging_start: float
    destage_start: float = -1.0
    destage_end: float = -1.0
    energy_at_logging_start: float = 0.0
    energy_at_destage_start: float = 0.0
    energy_at_destage_end: float = 0.0

    @property
    def complete(self) -> bool:
        return self.destage_end >= 0

    @property
    def logging_interval(self) -> Optional[float]:
        """Length of the logging period, or ``None`` before destaging
        starts (``destage_start`` is still the ``-1.0`` sentinel)."""
        if self.destage_start < 0:
            return None
        return self.destage_start - self.logging_start

    @property
    def destage_interval(self) -> Optional[float]:
        """Length of the destaging period, or ``None`` until it finishes."""
        if self.destage_start < 0 or not self.complete:
            return None
        return self.destage_end - self.destage_start

    @property
    def logging_energy(self) -> Optional[float]:
        """Energy spent during the logging period, or ``None`` before
        destaging starts."""
        if self.destage_start < 0:
            return None
        return self.energy_at_destage_start - self.energy_at_logging_start

    @property
    def destage_energy(self) -> Optional[float]:
        """Energy spent during the destaging period, or ``None`` until it
        finishes."""
        if self.destage_start < 0 or not self.complete:
            return None
        return self.energy_at_destage_end - self.energy_at_destage_start


class RunMetrics:
    """Mutable metric sink for one simulation run."""

    def __init__(self) -> None:
        self.response_time = StreamingStat()
        self.read_response_time = StreamingStat()
        self.write_response_time = StreamingStat()
        self.response_histogram = Histogram.exponential(1e-4, 2.0, 30)
        self.requests = 0
        self.reads = 0
        self.writes = 0
        # Filled by finalize().
        self.duration_s = 0.0
        self.total_energy_j = 0.0
        self.spin_up_count = 0
        self.spin_down_count = 0
        self.energy_by_role: Dict[str, float] = {}
        self.state_time_by_role: Dict[str, Dict[PowerState, float]] = {}
        self.energy_by_state: Dict[PowerState, float] = {}
        # Scheme-specific counters (controllers fill what applies).
        self.rotations = 0
        self.destage_cycles = 0
        self.logged_bytes = 0
        self.destaged_bytes = 0
        self.read_hits = 0
        self.read_misses = 0
        self.cycles: List[CycleWindow] = []
        self.deactivations = 0
        # Optional observer ``(is_write, seconds)`` fired per response.
        # Not serialized; observe-only (the metrics registry hooks here).
        self.on_response = None

    # ------------------------------------------------------------------
    def record_response(self, is_write: bool, seconds: float) -> None:
        self.requests += 1
        self.response_time.add(seconds)
        self.response_histogram.add(seconds)
        if self.on_response is not None:
            self.on_response(is_write, seconds)
        if is_write:
            self.writes += 1
            self.write_response_time.add(seconds)
        else:
            self.reads += 1
            self.read_response_time.add(seconds)

    def finalize(
        self,
        now: float,
        disks_by_role: Dict[str, List[Disk]],
    ) -> None:
        """Close power accounting and aggregate per-role statistics."""
        self.duration_s = now
        self.total_energy_j = 0.0
        self.spin_up_count = 0
        self.spin_down_count = 0
        self.energy_by_role = {}
        self.state_time_by_role = {}
        self.energy_by_state = {s: 0.0 for s in PowerState}
        for role, disks in disks_by_role.items():
            role_energy = 0.0
            role_states: Dict[PowerState, float] = {
                s: 0.0 for s in PowerState
            }
            for disk in disks:
                disk.close()
                role_energy += disk.power.energy_joules
                self.spin_up_count += disk.power.spin_up_count
                self.spin_down_count += disk.power.spin_down_count
                for state, duration in disk.power.state_durations.items():
                    role_states[state] += duration
                    self.energy_by_state[state] += disk.power.energy_for(
                        state
                    )
            self.energy_by_role[role] = role_energy
            self.state_time_by_role[role] = role_states
            self.total_energy_j += role_energy

    def to_dict(self) -> Dict:
        """JSON-serializable dump of every reported value.

        The dump is exact (floats round-trip bit-for-bit through Python's
        JSON encoder), so cached results are indistinguishable from freshly
        computed ones — the property the parallel runner's determinism
        guarantee rests on.
        """
        return {
            "response_time": self.response_time.to_dict(),
            "read_response_time": self.read_response_time.to_dict(),
            "write_response_time": self.write_response_time.to_dict(),
            "response_histogram": self.response_histogram.to_dict(),
            "requests": self.requests,
            "reads": self.reads,
            "writes": self.writes,
            "duration_s": self.duration_s,
            "total_energy_j": self.total_energy_j,
            "spin_up_count": self.spin_up_count,
            "spin_down_count": self.spin_down_count,
            "energy_by_role": dict(self.energy_by_role),
            "state_time_by_role": {
                role: {state.value: t for state, t in states.items()}
                for role, states in self.state_time_by_role.items()
            },
            "energy_by_state": {
                state.value: e for state, e in self.energy_by_state.items()
            },
            "rotations": self.rotations,
            "destage_cycles": self.destage_cycles,
            "logged_bytes": self.logged_bytes,
            "destaged_bytes": self.destaged_bytes,
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "cycles": [dataclasses.asdict(c) for c in self.cycles],
            "deactivations": self.deactivations,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunMetrics":
        """Reconstruct a finalized metrics object from :meth:`to_dict`."""
        metrics = cls()
        metrics.response_time = StreamingStat.from_dict(
            data["response_time"]
        )
        metrics.read_response_time = StreamingStat.from_dict(
            data["read_response_time"]
        )
        metrics.write_response_time = StreamingStat.from_dict(
            data["write_response_time"]
        )
        metrics.response_histogram = Histogram.from_dict(
            data["response_histogram"]
        )
        for field in (
            "requests",
            "reads",
            "writes",
            "spin_up_count",
            "spin_down_count",
            "rotations",
            "destage_cycles",
            "logged_bytes",
            "destaged_bytes",
            "read_hits",
            "read_misses",
            "deactivations",
        ):
            setattr(metrics, field, int(data[field]))
        for field in ("duration_s", "total_energy_j"):
            setattr(metrics, field, float(data[field]))
        metrics.energy_by_role = {
            role: float(e) for role, e in data["energy_by_role"].items()
        }
        metrics.state_time_by_role = {
            role: {
                PowerState(state): float(t) for state, t in states.items()
            }
            for role, states in data["state_time_by_role"].items()
        }
        metrics.energy_by_state = {
            PowerState(state): float(e)
            for state, e in data["energy_by_state"].items()
        }
        metrics.cycles = [CycleWindow(**c) for c in data["cycles"]]
        return metrics

    def snapshot(self) -> "RunMetrics":
        """A frozen copy of the current values.

        Taken when the measurement window closes so that post-trace flush
        activity (``Controller.drain``) cannot leak into reported counters.
        Mutable members are copied too: a shallow ``copy.copy`` would share
        the :class:`StreamingStat`/:class:`Histogram` accumulators, the
        per-role dicts and the :class:`CycleWindow` objects, so responses
        recorded after the snapshot would retroactively alter it.
        """
        clone = copy.copy(self)
        clone.response_time = copy.deepcopy(self.response_time)
        clone.read_response_time = copy.deepcopy(self.read_response_time)
        clone.write_response_time = copy.deepcopy(self.write_response_time)
        clone.response_histogram = copy.deepcopy(self.response_histogram)
        clone.energy_by_role = dict(self.energy_by_role)
        clone.state_time_by_role = {
            role: dict(states)
            for role, states in self.state_time_by_role.items()
        }
        clone.energy_by_state = dict(self.energy_by_state)
        clone.cycles = [dataclasses.replace(c) for c in self.cycles]
        # The snapshot is a frozen result object; it must not keep firing
        # (or pickling) the live run's response observer.
        clone.on_response = None
        return clone

    # ------------------------------------------------------------------
    @property
    def spin_cycle_count(self) -> int:
        """Total disk spin up/down transitions — the Table I metric."""
        return self.spin_up_count + self.spin_down_count

    @property
    def mean_response_time_ms(self) -> float:
        return self.response_time.mean * 1e3

    @property
    def mean_power_w(self) -> float:
        return self.total_energy_j / self.duration_s if self.duration_s else 0.0

    @property
    def read_hit_rate(self) -> float:
        lookups = self.read_hits + self.read_misses
        return self.read_hits / lookups if lookups else 0.0

    def idle_fraction(self, role: str) -> float:
        """Fraction of a role's disk-time spent IDLE (Fig. 3 metric)."""
        states = self.state_time_by_role.get(role)
        if not states:
            return 0.0
        total = sum(states.values())
        return states[PowerState.IDLE] / total if total else 0.0

    def destage_interval_ratio(self) -> Optional[float]:
        """Mean fraction of each complete cycle spent destaging (Fig. 2c)."""
        return self._cycle_ratio(time=True)

    def destage_energy_ratio(self) -> Optional[float]:
        """Mean fraction of each cycle's energy spent destaging (Fig. 2d)."""
        return self._cycle_ratio(time=False)

    def _cycle_ratio(self, time: bool) -> Optional[float]:
        ratios = []
        for cycle in self.cycles:
            if not cycle.complete:
                continue
            if time:
                logging_part = cycle.logging_interval
                part = cycle.destage_interval
            else:
                logging_part = cycle.logging_energy
                part = cycle.destage_energy
            if logging_part is None or part is None:
                continue
            total = logging_part + part
            if total > 0:
                ratios.append(part / total)
        if not ratios:
            return None
        return sum(ratios) / len(ratios)

    def summary(self) -> str:
        """Human-readable one-run summary."""
        return (
            f"requests={self.requests} "
            f"mean_rt={self.mean_response_time_ms:.3f}ms "
            f"energy={self.total_energy_j / 1e3:.2f}kJ "
            f"mean_power={self.mean_power_w:.1f}W "
            f"spins={self.spin_cycle_count}"
        )
